//! Codelet conformance: the checked-in generated codelets dispatched by
//! `ddl_kernels::generated` must agree with this crate's symbolic DAG
//! interpreter — the oracle the generator validates against *before*
//! emission — on random inputs, at every generated size, in both
//! directions, and at arbitrary strides. A mismatch means the checked-in
//! `generated.rs` has drifted from the generator that claims to produce
//! it.

use ddl_codegen::{evaluate, generate_dft};
use ddl_kernels::generated::{generated_dft_leaf, GENERATED_SIZES};
use ddl_kernels::naive_dft;
use ddl_num::{relative_rms_error, Complex64, Direction};
use proptest::prelude::*;

/// Largest generated size; random input vectors are sized for it.
const MAX_GEN: usize = 32;

fn signal(vals: &[f64], n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new(vals[2 * i], vals[2 * i + 1]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn codelets_match_the_interpreter_and_the_naive_dft(
        vals in prop::collection::vec(-1.0f64..1.0, 2 * MAX_GEN),
        forward in any::<bool>(),
    ) {
        let dir = if forward { Direction::Forward } else { Direction::Inverse };
        for &n in GENERATED_SIZES {
            let input = signal(&vals, n);

            // The symbolic network, evaluated by the interpreter.
            let (graph, outputs) = generate_dft(n, dir);
            let want = evaluate(&graph, &outputs, &input);

            // The checked-in straight-line codelet.
            let mut got = vec![Complex64::ZERO; n];
            prop_assert!(
                generated_dft_leaf(n, dir, &input, 0, 1, &mut got, 0, 1),
                "no generated codelet for size {n}"
            );

            // Codelet vs interpreter: same arithmetic modulo scheduling,
            // so only rounding-order noise separates them.
            let err = relative_rms_error(&got, &want);
            prop_assert!(err < 1e-12, "size {n} {dir:?}: codelet vs interpreter err {err:e}");

            // Both vs the O(n^2) reference.
            let naive = naive_dft(&input, dir);
            let err = relative_rms_error(&got, &naive);
            prop_assert!(err < 1e-9, "size {n} {dir:?}: codelet vs naive err {err:e}");
        }
    }

    #[test]
    fn codelets_honor_arbitrary_bases_and_strides(
        vals in prop::collection::vec(-1.0f64..1.0, 2 * MAX_GEN),
        sb in 0usize..4,
        ss in 1usize..5,
        db in 0usize..4,
        ds in 1usize..5,
        forward in any::<bool>(),
    ) {
        let dir = if forward { Direction::Forward } else { Direction::Inverse };
        for &n in GENERATED_SIZES {
            let input = signal(&vals, n);

            // Contiguous reference run of the same codelet.
            let mut want = vec![Complex64::ZERO; n];
            prop_assert!(generated_dft_leaf(n, dir, &input, 0, 1, &mut want, 0, 1));

            // Strided run: the same points scattered through larger
            // buffers must produce the exact same values (bitwise — the
            // arithmetic is identical, only addressing differs).
            let mut src = vec![Complex64::new(f64::NAN, f64::NAN); sb + (n - 1) * ss + 1];
            for (i, v) in input.iter().enumerate() {
                src[sb + i * ss] = *v;
            }
            let mut dst = vec![Complex64::ZERO; db + (n - 1) * ds + 1];
            prop_assert!(generated_dft_leaf(n, dir, &src, sb, ss, &mut dst, db, ds));
            for i in 0..n {
                let got = dst[db + i * ds];
                prop_assert!(
                    got.re == want[i].re && got.im == want[i].im,
                    "size {n} {dir:?} out[{i}]: strided {got:?} != contiguous {:?}",
                    want[i]
                );
            }
        }
    }
}

/// Every size the dispatcher claims must actually be generated, and no
/// other size may dispatch.
#[test]
fn dispatcher_covers_exactly_the_generated_sizes() {
    for n in 1..=64usize {
        let input = vec![Complex64::ONE; n];
        let mut out = vec![Complex64::ZERO; n];
        let handled = generated_dft_leaf(n, Direction::Forward, &input, 0, 1, &mut out, 0, 1);
        assert_eq!(
            handled,
            GENERATED_SIZES.contains(&n),
            "dispatcher disagrees with GENERATED_SIZES at n={n}"
        );
    }
}

// ---------------------------------------------------------------------
// Mutation testing against the SIMD lowering.
//
// The static verifier (`ddl_analyze::verify_codelet`) and the runtime
// backends are two independent lines of defense against a corrupted
// codelet DAG. These tests seed the same mutations the verifier's own
// unit tests use — dropped store, duplicated store, poisoned constant,
// redirected store — and pin the safety property of the pair: a mutated
// DAG must either FAIL the verifier or produce output that DIVERGES
// from the SIMD lowering of the true network. If a mutant passes the
// verifier and still agrees with the SIMD backend, one of the two
// oracles has gone blind.

use ddl_analyze::{verify_codelet, AnalysisReport, CodeletDag};
use ddl_codegen::expr::CVal;

/// Evaluates a (possibly mutated) codelet DAG with emission semantics:
/// output starts zeroed, stores apply in emission order (so a dropped
/// store leaves zero and a duplicate overwrites with the same value) —
/// exactly what lowering the mutant to `dst[slot] = ...` lines yields.
fn eval_dag(dag: &CodeletDag, input: &[Complex64]) -> Vec<Complex64> {
    let outputs: Vec<CVal> = dag
        .stores
        .iter()
        .map(|s| CVal { re: s.re, im: s.im })
        .collect();
    let values = evaluate(&dag.graph, &outputs, input);
    let mut out = vec![Complex64::ZERO; dag.n];
    for (s, v) in dag.stores.iter().zip(values) {
        if s.slot < dag.n {
            out[s.slot] = v;
        }
    }
    out
}

/// The SIMD lowering of the true `n`-point network (portable path on
/// hosts without a vector unit — the contract is identical).
fn simd_reference(n: usize, dir: Direction, input: &[Complex64]) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; n];
    assert!(
        ddl_backend_simd::dft_leaf_strided_simd(n, dir, input, 0, 1, &mut out, 0, 1),
        "SIMD backend does not claim n={n}"
    );
    out
}

/// True when the mutant's output observably differs from the SIMD
/// lowering: anywhere beyond reassociation noise, or any non-finite
/// value (a poisoned constant must not launder into agreement).
fn diverges(mutant: &[Complex64], simd: &[Complex64]) -> bool {
    mutant
        .iter()
        .zip(simd)
        .any(|(m, s)| !m.re.is_finite() || !m.im.is_finite() || (*m - *s).abs() > 1e-9)
}

/// Asserts the safety property for one mutant.
fn assert_caught(dag: &CodeletDag, dir: Direction, what: &str) {
    let mut report = AnalysisReport::new();
    let verifier_rejects = !verify_codelet(dag, &mut report);

    // A deterministic non-pathological input: every DFT output depends
    // on every input with distinct coefficients, so any structural
    // mutation shifts at least one output.
    let input: Vec<Complex64> = (0..dag.n)
        .map(|i| Complex64::new(1.0 + i as f64, 0.5 - (i as f64) * 0.25))
        .collect();
    let mutant_out = eval_dag(dag, &input);
    let simd_out = simd_reference(dag.n, dir, &input);
    let runtime_diverges = diverges(&mutant_out, &simd_out);

    assert!(
        verifier_rejects || runtime_diverges,
        "{what} (n={}, {dir:?}): mutant passed the verifier AND agreed with the SIMD lowering",
        dag.n
    );
}

#[test]
fn unmutated_dags_agree_with_the_simd_lowering() {
    // Baseline for the harness itself: the true network must verify
    // clean and match the SIMD backend, or `assert_caught` would pass
    // vacuously for every mutant.
    for n in [4usize, 8, 16, 32, 64] {
        for dir in [Direction::Forward, Direction::Inverse] {
            let dag = CodeletDag::generate(n, dir);
            let mut report = AnalysisReport::new();
            assert!(verify_codelet(&dag, &mut report), "clean DAG rejected");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(1.0 + i as f64, 0.5 - (i as f64) * 0.25))
                .collect();
            assert!(
                !diverges(&eval_dag(&dag, &input), &simd_reference(n, dir, &input)),
                "clean n={n} {dir:?} DAG diverges from the SIMD lowering"
            );
        }
    }
}

#[test]
fn dropped_stores_never_silently_agree_with_simd() {
    for n in [8usize, 16, 32, 64] {
        for dir in [Direction::Forward, Direction::Inverse] {
            for slot in [0, 1, n / 2, n - 1] {
                let mut dag = CodeletDag::generate(n, dir);
                dag.drop_store(slot);
                assert_caught(&dag, dir, &format!("dropped store to slot {slot}"));
            }
        }
    }
}

#[test]
fn duplicated_stores_never_silently_agree_with_simd() {
    // A duplicate store is numerically invisible (same value twice), so
    // this mutant MUST be the verifier's catch — the runtime oracle
    // cannot see it. The disjunction still holds; this pins which arm.
    for n in [8usize, 32] {
        let mut dag = CodeletDag::generate(n, Direction::Forward);
        dag.duplicate_store(n / 2);
        assert_caught(&dag, Direction::Forward, "duplicated store");
        let mut report = AnalysisReport::new();
        assert!(
            !verify_codelet(&dag, &mut report),
            "duplicate store must be caught statically — runtime cannot"
        );
    }
}

#[test]
fn poisoned_constants_never_silently_agree_with_simd() {
    for n in [8usize, 16, 64] {
        for value in [f64::NAN, f64::INFINITY] {
            let mut dag = CodeletDag::generate(n, Direction::Forward);
            dag.poison_constant(2, value);
            assert_caught(
                &dag,
                Direction::Forward,
                &format!("constant poisoned to {value}"),
            );
        }
    }
}

#[test]
fn redirected_stores_never_silently_agree_with_simd() {
    // Swap two stores' destination slots: every slot still written
    // exactly once (structurally clean), but two outputs land in each
    // other's place — only the runtime comparison can catch this one.
    for n in [8usize, 16, 32, 64] {
        let mut dag = CodeletDag::generate(n, Direction::Forward);
        let (a, b) = (1, n - 2);
        for s in &mut dag.stores {
            if s.slot == a {
                s.slot = b;
            } else if s.slot == b {
                s.slot = a;
            }
        }
        assert_caught(&dag, Direction::Forward, "swapped store slots");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mutation x random size: whichever mutation the seed picks,
    /// the verifier-or-divergence property holds.
    #[test]
    fn random_mutations_are_always_caught(
        size_idx in 0usize..4,
        slot_frac in 0.0f64..1.0,
        mutation in 0usize..4,
        forward in any::<bool>(),
    ) {
        let n = [8usize, 16, 32, 64][size_idx];
        let dir = if forward { Direction::Forward } else { Direction::Inverse };
        let slot = ((slot_frac * n as f64) as usize).min(n - 1);
        let mut dag = CodeletDag::generate(n, dir);
        let what = match mutation {
            0 => { dag.drop_store(slot); "drop" }
            1 => { dag.duplicate_store(slot); "duplicate" }
            2 => { dag.poison_constant(slot, f64::NAN); "poison" }
            _ => {
                let other = (slot + n / 2) % n;
                for s in &mut dag.stores {
                    if s.slot == slot { s.slot = other; }
                    else if s.slot == other { s.slot = slot; }
                }
                "swap"
            }
        };
        assert_caught(&dag, dir, what);
    }
}
