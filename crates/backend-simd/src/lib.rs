//! Runtime-dispatched SIMD leaf kernels for the DFT executor.
//!
//! This crate lowers the same pow2 leaf sizes the scalar codelets in
//! `ddl-kernels` cover (n ≤ 64) to an iterative radix-2 DIT network with
//! precomputed bit-reversal and per-stage twiddle tables, then executes
//! the butterfly stream through one of three code paths picked at
//! dispatch time:
//!
//! - **AVX2+FMA** on x86_64 (two complex points per `__m256d`),
//! - **NEON** on aarch64 (one complex point per `float64x2_t`),
//! - a **portable chunked** safe-Rust loop everywhere else.
//!
//! All `unsafe` lives in the single audited [`arch`] module; this crate
//! root denies `unsafe_code` and `ddl_lint` pins the allow-list to
//! exactly `crates/backend-simd/src/arch.rs`. Feature detection happens
//! once (cached) via `is_x86_feature_detected!`, never per butterfly.
//!
//! Strided access is handled outside the kernels: callers hand in
//! `(base, stride)` views and the wrapper gathers into a stack buffer in
//! bit-reversed order (the permutation rides along with the gather for
//! free), runs the in-place contiguous network, and scatters back out.

#![deny(unsafe_code)]

use std::sync::OnceLock;

use ddl_num::{Complex64, Direction};

#[allow(unsafe_code)]
mod arch;

/// Largest leaf size the SIMD backend lowers, matching the scalar
/// codelet ceiling in `ddl-kernels`.
pub const MAX_SIMD_LEAF: usize = 64;

/// Whether the SIMD backend lowers an `n`-point leaf at all: powers of
/// two up to [`MAX_SIMD_LEAF`]. Other sizes fall to the scalar oracle.
pub fn supported_size(n: usize) -> bool {
    (1..=MAX_SIMD_LEAF).contains(&n) && n.is_power_of_two()
}

/// Smallest leaf where the vector network beats the straight-line scalar
/// codelets. Below this the bit-reversal gather and per-stage passes
/// cost more than the codelets' fully unrolled register schedules, so a
/// profit-aware dispatcher should route tiny leaves to the scalar
/// kernels even when a vector unit exists (measured on AVX2: ~0.2x at
/// n=8, ~0.65x at n=16, break-even at n=32, ~1.6x at n=64).
pub const MIN_PROFITABLE_LEAF: usize = 32;

/// Whether routing an `n`-point leaf through the vector network is
/// expected to be a *win* on this host — supported, at or above
/// [`MIN_PROFITABLE_LEAF`], and with a real vector unit present.
pub fn profitable_size(n: usize) -> bool {
    supported_size(n) && n >= MIN_PROFITABLE_LEAF && vector_unit_available()
}

/// The instruction set the dispatcher resolved on this host: `"avx2"`,
/// `"neon"`, or `"portable"`. Cached after the first probe.
pub fn active_isa() -> &'static str {
    static ISA: OnceLock<&'static str> = OnceLock::new();
    ISA.get_or_init(arch::detect_isa)
}

/// True when a vector unit (AVX2+FMA or NEON) is actually available at
/// runtime; the portable fallback still runs everywhere when not.
pub fn vector_unit_available() -> bool {
    active_isa() != "portable"
}

/// Bit-reversal permutation and per-stage twiddle tables for one leaf
/// size, shared by every code path so all three agree on the network.
struct SizeTables {
    n: usize,
    bitrev: Vec<usize>,
    /// Forward twiddles, stages concatenated: stage with half-length
    /// `h` contributes `h` factors `exp(-2πi·j/2h)` at offset `h - 1`.
    fwd: Vec<Complex64>,
    /// Inverse twiddles (conjugates of `fwd`, same layout).
    inv: Vec<Complex64>,
}

fn build_tables(n: usize) -> SizeTables {
    let bits = n.trailing_zeros();
    let mut bitrev = vec![0usize; n];
    for (i, slot) in bitrev.iter_mut().enumerate() {
        if bits > 0 {
            *slot = i.reverse_bits() >> (usize::BITS - bits);
        }
    }
    let mut fwd = Vec::with_capacity(n.saturating_sub(1));
    let mut inv = Vec::with_capacity(n.saturating_sub(1));
    let mut half = 1usize;
    while half < n {
        let len = half * 2;
        for j in 0..half {
            let theta = -2.0 * std::f64::consts::PI * j as f64 / len as f64;
            let w = Complex64::new(theta.cos(), theta.sin());
            fwd.push(w);
            inv.push(w.conj());
        }
        half = len;
    }
    SizeTables {
        n,
        bitrev,
        fwd,
        inv,
    }
}

/// Tables for every supported size, built once. Index is log2(n).
fn tables(n: usize) -> &'static SizeTables {
    static TABLES: OnceLock<Vec<SizeTables>> = OnceLock::new();
    let all = TABLES.get_or_init(|| {
        let mut v = Vec::new();
        let mut n = 1usize;
        while n <= MAX_SIMD_LEAF {
            v.push(build_tables(n));
            n *= 2;
        }
        v
    });
    &all[n.trailing_zeros() as usize]
}

/// Portable chunked radix-2 DIT over a bit-reversed in-place buffer.
/// Kept in safe Rust; this is both the fallback path and the reference
/// the arch kernels are conformance-tested against.
fn dft_inplace_portable(buf: &mut [Complex64], tw: &[Complex64]) {
    let n = buf.len();
    let mut half = 1usize;
    let mut tw_off = 0usize;
    while half < n {
        let len = half * 2;
        let mut b = 0;
        while b < n {
            for j in 0..half {
                let w = tw[tw_off + j];
                let hi = buf[b + j + half];
                let t = Complex64::new(hi.re * w.re - hi.im * w.im, hi.re * w.im + hi.im * w.re);
                let lo = buf[b + j];
                buf[b + j] = Complex64::new(lo.re + t.re, lo.im + t.im);
                buf[b + j + half] = Complex64::new(lo.re - t.re, lo.im - t.im);
            }
            b += len;
        }
        tw_off += half;
        half = len;
    }
}

/// Run the in-place network through the best available code path.
fn dft_inplace_dispatch(buf: &mut [Complex64], tw: &[Complex64]) {
    if !arch::dft_inplace_vector(buf, tw) {
        dft_inplace_portable(buf, tw);
    }
}

/// One strided `n`-point DFT leaf through the SIMD dispatcher:
/// gather (applying the bit-reversal), in-place network, scatter.
///
/// Returns `false` without touching `dst` when the size is outside the
/// supported set, so callers can fall back to the scalar kernels.
#[allow(clippy::too_many_arguments)]
pub fn dft_leaf_strided_simd(
    n: usize,
    dir: Direction,
    src: &[Complex64],
    src_base: usize,
    src_stride: usize,
    dst: &mut [Complex64],
    dst_base: usize,
    dst_stride: usize,
) -> bool {
    if !supported_size(n) {
        return false;
    }
    let t = tables(n);
    debug_assert_eq!(t.n, n);
    let mut buf = [Complex64::ZERO; MAX_SIMD_LEAF];
    let buf = &mut buf[..n];
    for (i, slot) in buf.iter_mut().enumerate() {
        *slot = src[src_base + t.bitrev[i] * src_stride];
    }
    let tw = match dir {
        Direction::Forward => &t.fwd,
        Direction::Inverse => &t.inv,
    };
    dft_inplace_dispatch(buf, tw);
    for (j, v) in buf.iter().enumerate() {
        dst[dst_base + j * dst_stride] = *v;
    }
    true
}

/// Vectorized twiddle pass: `buf[base + i] *= factors[i]` for every
/// factor, through the host's vector unit.
///
/// Returns `false` without touching `buf` when no vector unit exists
/// (or the view is out of bounds), so callers keep their scalar loop as
/// the fallback.
pub fn apply_twiddles_simd(buf: &mut [Complex64], base: usize, factors: &[Complex64]) -> bool {
    let Some(window) = buf.get_mut(base..) else {
        return false;
    };
    if window.len() < factors.len() {
        return false;
    }
    arch::twiddles_vector(window, factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = x.len();
        let sign = match dir {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                    let w = Complex64::new(theta.cos(), theta.sin());
                    acc += v * w;
                }
                acc
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let a = (i as f64 * 0.73).sin();
                let b = (i as f64 * 1.31).cos() * 0.5;
                Complex64::new(a, b)
            })
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(p, q)| ((p.re - q.re).powi(2) + (p.im - q.im).powi(2)).sqrt())
            .fold(0.0, f64::max)
    }

    #[test]
    fn supported_sizes_are_pow2_up_to_64() {
        for n in 0..200 {
            assert_eq!(
                supported_size(n),
                (1..=64).contains(&n) && n.is_power_of_two(),
                "n={n}"
            );
        }
    }

    #[test]
    fn all_sizes_match_naive_both_directions() {
        for log2 in 0..=6 {
            let n = 1usize << log2;
            let x = signal(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let want = naive_dft(&x, dir);
                let mut got = vec![Complex64::ZERO; n];
                assert!(dft_leaf_strided_simd(n, dir, &x, 0, 1, &mut got, 0, 1));
                assert!(
                    max_err(&got, &want) < 1e-11,
                    "n={n} dir={dir:?} err={}",
                    max_err(&got, &want)
                );
            }
        }
    }

    #[test]
    fn strided_and_offset_views_match_contiguous() {
        let n = 32;
        let x = signal(n);
        let mut contig = vec![Complex64::ZERO; n];
        assert!(dft_leaf_strided_simd(
            n,
            Direction::Forward,
            &x,
            0,
            1,
            &mut contig,
            0,
            1
        ));
        // Misaligned base (odd offset breaks 32-byte alignment) and a
        // non-unit stride on both sides.
        let stride = 3;
        let base = 1;
        let mut wide_src = vec![Complex64::ZERO; base + n * stride];
        for (i, &v) in x.iter().enumerate() {
            wide_src[base + i * stride] = v;
        }
        let mut wide_dst = vec![Complex64::ZERO; base + n * stride];
        assert!(dft_leaf_strided_simd(
            n,
            Direction::Forward,
            &wide_src,
            base,
            stride,
            &mut wide_dst,
            base,
            stride
        ));
        for k in 0..n {
            let got = wide_dst[base + k * stride];
            // The gathered path runs the same contiguous network, so the
            // result is bit-identical, not merely close.
            assert_eq!(got.re.to_bits(), contig[k].re.to_bits());
            assert_eq!(got.im.to_bits(), contig[k].im.to_bits());
        }
    }

    #[test]
    fn vector_and_portable_paths_agree_bitwise_on_this_host() {
        // Only meaningful where a vector unit exists; the portable path
        // is the reference either way.
        for log2 in 0..=6 {
            let n = 1usize << log2;
            let x = signal(n);
            let t = tables(n);
            let mut vec_buf: Vec<Complex64> = (0..n).map(|i| x[t.bitrev[i]]).collect();
            let mut ref_buf = vec_buf.clone();
            dft_inplace_dispatch(&mut vec_buf, &t.fwd);
            dft_inplace_portable(&mut ref_buf, &t.fwd);
            for (a, b) in vec_buf.iter().zip(&ref_buf) {
                assert!(
                    (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12,
                    "n={n} vector path diverged from portable: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn unsupported_sizes_are_refused() {
        let x = signal(12);
        let mut y = vec![Complex64::ZERO; 12];
        assert!(!dft_leaf_strided_simd(
            12,
            Direction::Forward,
            &x,
            0,
            1,
            &mut y,
            0,
            1
        ));
        assert!(y.iter().all(|v| v.re == 0.0 && v.im == 0.0));
    }

    #[test]
    fn twiddle_pass_matches_scalar_multiply() {
        for n in [1usize, 2, 5, 8, 31, 64, 100] {
            let factors = signal(n);
            let mut buf = signal(n + 3); // base offset of 3 below
            let mut want = buf.clone();
            for (i, &w) in factors.iter().enumerate() {
                want[3 + i] *= w;
            }
            if apply_twiddles_simd(&mut buf, 3, &factors) {
                assert!(
                    max_err(&buf, &want) < 1e-12,
                    "n={n} twiddle pass diverged: {}",
                    max_err(&buf, &want)
                );
            } else {
                assert_eq!(active_isa(), "portable");
            }
        }
    }

    #[test]
    fn twiddle_pass_refuses_short_buffers() {
        let factors = signal(8);
        let mut buf = signal(6);
        let before = buf.clone();
        assert!(!apply_twiddles_simd(&mut buf, 0, &factors));
        assert!(!apply_twiddles_simd(&mut buf, 100, &factors));
        assert_eq!(max_err(&buf, &before), 0.0, "refusal must not write");
    }

    #[test]
    fn isa_report_is_stable_and_known() {
        let isa = active_isa();
        assert!(matches!(isa, "avx2" | "neon" | "portable"));
        assert_eq!(isa, active_isa());
    }

    /// The shadow assertions at the safe/unsafe boundary must actually
    /// fire: a twiddle table that is too short for the buffer — the
    /// exact precondition the `ddl-cert` pointer proof assumes — has to
    /// panic in debug builds rather than reach an intrinsic.
    #[test]
    #[cfg(debug_assertions)]
    fn violated_kernel_precondition_panics_in_debug_builds() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut buf = signal(8);
        let short_tw = signal(3); // an 8-point network needs 7 factors
        let result = catch_unwind(AssertUnwindSafe(|| {
            arch::dft_inplace_vector(&mut buf, &short_tw);
        }));
        assert!(
            result.is_err(),
            "debug build accepted a 3-entry twiddle table for an 8-point buffer"
        );
        let mut odd = signal(6); // not a power of two
        let tw = signal(5);
        let result = catch_unwind(AssertUnwindSafe(|| {
            arch::dft_inplace_vector(&mut odd, &tw);
        }));
        assert!(result.is_err(), "debug build accepted a non-pow2 length");
    }
}
