//! The single audited `unsafe` module of the workspace.
//!
//! Everything `unsafe` in the SIMD backend lives here and nowhere else
//! (`ddl_lint` pins the allow-list to exactly this file). The safety
//! argument is local and small:
//!
//! - The `#[target_feature]` kernels are only reachable through
//!   [`dft_inplace_vector`], which gates them behind cached
//!   `is_x86_feature_detected!` probes, so the required ISA is proven
//!   present before the first vector instruction executes.
//! - All loads/stores go through unaligned intrinsics
//!   (`_mm256_loadu_pd` / `vld1q_f64`) over pointers derived from the
//!   caller's slices; index arithmetic mirrors the portable loop in
//!   `lib.rs`, whose bounds are `buf.len() = n` and `tw.len() = n - 1`
//!   with `b + j + half < n` and `tw_off + j < n - 1` by construction
//!   of the radix-2 schedule.
//! - `ddl_num::Complex64` is `#[repr(C)] { re: f64, im: f64 }`, so a
//!   `&[Complex64]` region reinterprets soundly as `2 * len` doubles.
//!
//! The kernels implement the same bit-reversed-input radix-2 DIT
//! network as `dft_inplace_portable`; the only permitted numerical
//! difference is FMA contraction in the butterfly multiply.

use ddl_num::Complex64;

/// Names the best vector path this build+host combination can take.
pub(crate) fn detect_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return "avx2";
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (asimd) is baseline on aarch64.
        return "neon";
    }
    #[allow(unreachable_code)]
    "portable"
}

/// Runs the in-place network through the host's vector unit. Returns
/// `false` when no suitable unit exists so the caller can take the
/// portable path instead; never touches `buf` in that case.
pub(crate) fn dft_inplace_vector(buf: &mut [Complex64], tw: &[Complex64]) -> bool {
    // Shadow assertions for the preconditions the `ddl-cert` pointer
    // verifier proves the unsafe kernels rely on: a power-of-two
    // length within the leaf cap, and a twiddle table with exactly one
    // factor per butterfly (`n - 1` across all levels). Debug builds
    // fail fast at the safe boundary instead of inside an intrinsic.
    debug_assert!(buf.len() <= 1 || buf.len().is_power_of_two());
    debug_assert!(buf.len() <= crate::MAX_SIMD_LEAF);
    debug_assert_eq!(tw.len(), buf.len().saturating_sub(1));
    #[cfg(target_arch = "x86_64")]
    {
        if crate::active_isa() == "avx2" {
            // SAFETY: the AVX2 and FMA target features were verified at
            // runtime by `detect_isa` (cached in `active_isa`).
            unsafe { x86::dft_inplace_avx2(buf, tw) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::dft_inplace_neon(buf, tw);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = (buf, tw);
        false
    }
}

/// Pointwise complex multiply `buf[i] *= factors[i]` through the vector
/// unit. Returns `false` (buffer untouched) when no unit exists.
pub(crate) fn twiddles_vector(buf: &mut [Complex64], factors: &[Complex64]) -> bool {
    debug_assert!(buf.len() >= factors.len());
    #[cfg(target_arch = "x86_64")]
    {
        if crate::active_isa() == "avx2" {
            // SAFETY: AVX2/FMA verified at runtime by `detect_isa`
            // (cached in `active_isa`); the length contract is asserted
            // above and upheld by the safe caller in `lib.rs`.
            unsafe { x86::apply_twiddles_avx2(buf, factors) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::apply_twiddles_neon(buf, factors);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = (buf, factors);
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Complex64;
    use std::arch::x86_64::*;

    /// Radix-2 DIT over bit-reversed input, two complex points per
    /// 256-bit vector, FMA butterflies. The first two stages (unit
    /// twiddles and `{1, ∓i}`) are fused into a single in-register pass
    /// over each block of four points; the remaining stages run the
    /// general twiddled loop four points per iteration.
    ///
    /// # Safety
    /// Caller must have verified the `avx2` and `fma` target features
    /// at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn dft_inplace_avx2(buf: &mut [Complex64], tw: &[Complex64]) {
        let n = buf.len();
        // `Complex64` is `#[repr(C)] { re, im }`: the buffer is exactly
        // `2 * n` contiguous doubles.
        let p = buf.as_mut_ptr() as *mut f64;
        let twp = tw.as_ptr() as *const f64;

        if n == 2 {
            let lo = buf[0];
            let hi = buf[1];
            buf[0] = Complex64::new(lo.re + hi.re, lo.im + hi.im);
            buf[1] = Complex64::new(lo.re - hi.re, lo.im - hi.im);
            return;
        }
        if n < 2 {
            return;
        }

        // Fused stages half=1 and half=2 (blocks of four points).
        //
        // Stage 1 on a vector v = [a, b] (two complex lanes):
        // [a+b, a-b] = fmadd(v, [1,1,-1,-1], swap128(v)).
        //
        // Stage 2 multiplies point 3 of each block by w1 = tw[2], which
        // is ∓i by construction of the table (second-stage twiddles are
        // exp(∓iπj/2), j<2); w1·z = (±z.im, ∓z.re) is a lane swap in
        // the high half plus the sign pair (-w1.im, w1.im).
        let s1 = _mm256_set_pd(-1.0, -1.0, 1.0, 1.0);
        let w1_im = tw[2].im;
        let s2 = _mm256_set_pd(w1_im, -w1_im, 1.0, 1.0);
        let mut b = 0;
        while b < n {
            let va = _mm256_loadu_pd(p.add(2 * b));
            let vb = _mm256_loadu_pd(p.add(2 * b + 4));
            // Stage 1 butterflies within each vector.
            let ua = _mm256_fmadd_pd(va, s1, _mm256_permute2f128_pd(va, va, 0x01));
            let ub = _mm256_fmadd_pd(vb, s1, _mm256_permute2f128_pd(vb, vb, 0x01));
            // Stage 2: hi' = [ub0, ub1 * w1] via high-half lane swap + sign.
            let t = _mm256_mul_pd(_mm256_permute_pd(ub, 0x6), s2);
            _mm256_storeu_pd(p.add(2 * b), _mm256_add_pd(ua, t));
            _mm256_storeu_pd(p.add(2 * b + 4), _mm256_sub_pd(ua, t));
            b += 4;
        }

        // General stages: half = 4, 8, ... with the full twiddle table,
        // four points (two independent butterfly pairs) per iteration.
        let mut half = 4usize;
        let mut tw_off = 3usize; // 1 + 2 factors consumed by the fused pass
        while half < n {
            let len = half * 2;
            let mut b = 0;
            while b < n {
                let mut j = 0;
                while j < half {
                    // Lanes hold [re0, im0, re1, im1].
                    let w_a = _mm256_loadu_pd(twp.add(2 * (tw_off + j)));
                    let w_b = _mm256_loadu_pd(twp.add(2 * (tw_off + j + 2)));
                    let lo_a = _mm256_loadu_pd(p.add(2 * (b + j)));
                    let lo_b = _mm256_loadu_pd(p.add(2 * (b + j + 2)));
                    let hi_a = _mm256_loadu_pd(p.add(2 * (b + j + half)));
                    let hi_b = _mm256_loadu_pd(p.add(2 * (b + j + half + 2)));
                    // even lanes: hi.re*w.re - hi.im*w.im
                    // odd  lanes: hi.im*w.re + hi.re*w.im
                    let t_a = _mm256_fmaddsub_pd(
                        hi_a,
                        _mm256_movedup_pd(w_a),
                        _mm256_mul_pd(_mm256_permute_pd(hi_a, 0x5), _mm256_permute_pd(w_a, 0xF)),
                    );
                    let t_b = _mm256_fmaddsub_pd(
                        hi_b,
                        _mm256_movedup_pd(w_b),
                        _mm256_mul_pd(_mm256_permute_pd(hi_b, 0x5), _mm256_permute_pd(w_b, 0xF)),
                    );
                    _mm256_storeu_pd(p.add(2 * (b + j)), _mm256_add_pd(lo_a, t_a));
                    _mm256_storeu_pd(p.add(2 * (b + j + 2)), _mm256_add_pd(lo_b, t_b));
                    _mm256_storeu_pd(p.add(2 * (b + j + half)), _mm256_sub_pd(lo_a, t_a));
                    _mm256_storeu_pd(p.add(2 * (b + j + half + 2)), _mm256_sub_pd(lo_b, t_b));
                    j += 4;
                }
                b += len;
            }
            tw_off += half;
            half = len;
        }
    }

    /// Pointwise complex multiply `buf[i] *= factors[i]`, two points per
    /// vector, with a scalar tail for odd lengths.
    ///
    /// # Safety
    /// Caller must have verified the `avx2` and `fma` target features
    /// at runtime, and `buf.len() >= factors.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn apply_twiddles_avx2(buf: &mut [Complex64], factors: &[Complex64]) {
        let n = factors.len();
        let p = buf.as_mut_ptr() as *mut f64;
        let fp = factors.as_ptr() as *const f64;
        let pairs = n / 2 * 2;
        let mut i = 0;
        while i < pairs {
            let z = _mm256_loadu_pd(p.add(2 * i));
            let w = _mm256_loadu_pd(fp.add(2 * i));
            let t = _mm256_fmaddsub_pd(
                z,
                _mm256_movedup_pd(w),
                _mm256_mul_pd(_mm256_permute_pd(z, 0x5), _mm256_permute_pd(w, 0xF)),
            );
            _mm256_storeu_pd(p.add(2 * i), t);
            i += 2;
        }
        if pairs < n {
            buf[pairs] *= factors[pairs];
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::Complex64;
    use std::arch::aarch64::*;

    /// Radix-2 DIT over bit-reversed input, one complex point per
    /// 128-bit vector. NEON is baseline on aarch64, so no runtime
    /// probe is needed and the entry point stays safe.
    pub(crate) fn dft_inplace_neon(buf: &mut [Complex64], tw: &[Complex64]) {
        let n = buf.len();
        let p = buf.as_mut_ptr() as *mut f64;
        let twp = tw.as_ptr() as *const f64;
        let sign: [f64; 2] = [-1.0, 1.0];
        // SAFETY: index arithmetic mirrors the portable loop
        // (`b + j + half < n`, `tw_off + j < n - 1`); `Complex64` is
        // `#[repr(C)]` so the region is `2 * n` doubles; NEON is a
        // baseline aarch64 feature.
        unsafe {
            let vsign = vld1q_f64(sign.as_ptr());
            let mut half = 1usize;
            let mut tw_off = 0usize;
            while half < n {
                let len = half * 2;
                let mut b = 0;
                while b < n {
                    for j in 0..half {
                        let w = vld1q_f64(twp.add(2 * (tw_off + j)));
                        let lo = vld1q_f64(p.add(2 * (b + j)));
                        let hi = vld1q_f64(p.add(2 * (b + j + half)));
                        let w_re = vdupq_laneq_f64(w, 0);
                        let w_im = vdupq_laneq_f64(w, 1);
                        let hi_sw = vextq_f64(hi, hi, 1);
                        // [-hi.im*w.im, hi.re*w.im] + [hi.re, hi.im]*w.re
                        let cross = vmulq_f64(vmulq_f64(hi_sw, w_im), vsign);
                        let t = vfmaq_f64(cross, hi, w_re);
                        vst1q_f64(p.add(2 * (b + j)), vaddq_f64(lo, t));
                        vst1q_f64(p.add(2 * (b + j + half)), vsubq_f64(lo, t));
                    }
                    b += len;
                }
                tw_off += half;
                half = len;
            }
        }
    }

    /// Pointwise complex multiply `buf[i] *= factors[i]`, one point per
    /// 128-bit vector.
    pub(crate) fn apply_twiddles_neon(buf: &mut [Complex64], factors: &[Complex64]) {
        let p = buf.as_mut_ptr() as *mut f64;
        let fp = factors.as_ptr() as *const f64;
        let sign: [f64; 2] = [-1.0, 1.0];
        // SAFETY: the caller guarantees `buf.len() >= factors.len()`;
        // `Complex64` is `#[repr(C)]` so both regions are contiguous
        // doubles; NEON is a baseline aarch64 feature.
        unsafe {
            let vsign = vld1q_f64(sign.as_ptr());
            for i in 0..factors.len() {
                let z = vld1q_f64(p.add(2 * i));
                let w = vld1q_f64(fp.add(2 * i));
                let w_re = vdupq_laneq_f64(w, 0);
                let w_im = vdupq_laneq_f64(w, 1);
                let z_sw = vextq_f64(z, z, 1);
                let cross = vmulq_f64(vmulq_f64(z_sw, w_im), vsign);
                vst1q_f64(p.add(2 * i), vfmaq_f64(cross, z, w_re));
            }
        }
    }
}
