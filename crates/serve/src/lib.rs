//! Fault-tolerant transform service over the `ddl-core` engine.
//!
//! The paper's planner/executor split naturally extends to a service:
//! plans are expensive to search and compile but cheap to share, so a
//! long-running process should plan once and execute many times on
//! behalf of clients. This crate provides that process: a [`Service`]
//! owning one shared [`Engine`](ddl_core::Engine) plus a pool of worker
//! threads behind a **bounded** admission queue, and a line-oriented
//! wire protocol reusing the workspace's factorization-tree grammar.
//!
//! # Wire protocol
//!
//! One request per line, one response line per request:
//!
//! ```text
//! plan dft 1024 ddl [backend=simd]      → ok plan dft n=1024 strategy=ddl cached=… backend=… tree=ct(…)
//! exec dft 1024 ddl [deadline_ms=50] [backend=simd]
//!                                       → ok exec dft n=1024 dc=1024 backend=… wall_ns=…
//! exec dft ct(16, ct(16, 16)) [deadline_ms=50]
//!                                       → ok exec dft n=4096 dc=4096 backend=… wall_ns=…
//! exec wht 256 sdl                      → ok exec wht n=256 dc=256 backend=… wall_ns=…
//! stats                                 → ok stats accepted=… shed=… …
//! telemetry                             → ok telemetry {"schema":"ddl-telemetry",…}
//! telemetry text                        → Prometheus-style text exposition
//! ```
//!
//! The optional trailing `backend=<scalar|interp|simd>` token selects
//! the DFT leaf execution backend (see [`ddl_core::backend`]); absent,
//! requests use the process default (`DDL_BACKEND` or `scalar`). It
//! combines with `deadline_ms=` in either order.
//!
//! Executions run over an all-ones synthetic input and report the DC
//! bin, so a client can verify the transform end to end without
//! shipping data. Failures are one `err <code>: <detail>` line; `code`
//! is stable (`overloaded`, `deadline`, `cancelled`, `parse`,
//! `worker-panic`, …).
//!
//! # Overload and fault policy
//!
//! * **Admission is bounded.** [`Service::submit`] either enqueues or
//!   fails *immediately* with [`DdlError::Overloaded`] — requests are
//!   never queued unboundedly and callers are never blocked waiting for
//!   queue space. Malformed requests are rejected at admission and
//!   consume no queue slot.
//! * **Worker panics are contained.** A panic while serving a request
//!   (including those injected via the `serve.worker.panic` fault
//!   point) turns into an `err worker-panic:` response for that request
//!   only; the worker thread survives and keeps serving.
//! * **Deadlines are honored at dequeue and report as typed errors.**
//! * **Every accepted request gets exactly one response** — the
//!   conservation invariant the chaos suite asserts:
//!   `accepted == completed + failed` once the queue drains.
//!
//! # Telemetry
//!
//! Every admitted request gets a [`RequestId`] and is timed against a
//! single monotonic clock captured at admission
//! ([`Deadline`](ddl_core::Deadline)): queue wait, planning and
//! execution all draw from the same budget. Latency lands in a labeled
//! [`HistogramSet`] — per wire op, transform kind, backend and outcome —
//! and a bounded [`FlightRecorder`] ring keeps each request's span
//! capsule. Panic containment, deadline expiry, shard quarantine and
//! queue shed each dump a `ddl-flight` JSONL line (when an output path
//! is configured via [`Service::set_flight_out`] or `DDL_FLIGHT_OUT`).
//! The `telemetry` wire op snapshots everything as a versioned
//! `ddl-telemetry` document whose conservation law — outcome histogram
//! sums exactly partition `accepted`/`shed` on a quiescent snapshot —
//! is machine-checked by `ddl_core::check_report`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ddl_core::engine::{PlanKey, TransformKind};
use ddl_core::histo::OUTCOME_OVERLOADED;
use ddl_core::{
    faultpoint, grammar, next_request_id, scheduler_totals, BackendKind, DdlError, Deadline,
    DftPlan, Engine, EngineConfig, FlightRecorder, HistogramSet, RequestCapsule, RequestId,
    Strategy, TelemetryReport, WhtPlan,
};
use ddl_num::{Complex64, Direction};

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads serving the queue. `0` is allowed: requests are
    /// then served inline by [`Service::handle`] (degraded mode, also
    /// what the service falls back to when every spawn fails).
    pub workers: usize,
    /// Admission queue capacity; submissions beyond it shed with
    /// [`DdlError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Engine (plan cache + planner) configuration.
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            engine: EngineConfig::default(),
        }
    }
}

/// One parsed wire request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Search (or fetch) a plan and cache it in the engine.
    Plan {
        /// Transform family.
        kind: TransformKind,
        /// Transform size.
        n: usize,
        /// Search strategy.
        strategy: Strategy,
        /// Leaf execution backend the compiled plan dispatches to.
        backend: BackendKind,
    },
    /// Execute over a synthetic all-ones input via an engine-cached plan.
    ExecPlanned {
        /// Transform family.
        kind: TransformKind,
        /// Transform size.
        n: usize,
        /// Search strategy.
        strategy: Strategy,
        /// Per-request deadline override.
        deadline: Option<Duration>,
        /// Leaf execution backend.
        backend: BackendKind,
    },
    /// Execute an explicit factorization-tree expression.
    ExecExpr {
        /// Transform family.
        kind: TransformKind,
        /// Tree expression in the workspace grammar.
        expr: String,
        /// Per-request deadline override.
        deadline: Option<Duration>,
        /// Leaf execution backend.
        backend: BackendKind,
    },
    /// Report service and engine counters.
    Stats,
    /// Snapshot the versioned telemetry document (`text` selects the
    /// Prometheus exposition instead of JSON).
    Telemetry {
        /// Render as Prometheus text instead of one JSON line.
        text: bool,
    },
}

/// `(op, kind, backend)` histogram labels for a request; `-` marks a
/// dimension the op does not have.
fn request_labels(request: &Request) -> (&'static str, String, String) {
    match request {
        Request::Plan { kind, backend, .. } => {
            ("plan", kind.label().into(), backend.label().into())
        }
        Request::ExecPlanned { kind, backend, .. } | Request::ExecExpr { kind, backend, .. } => {
            ("exec", kind.label().into(), backend.label().into())
        }
        Request::Stats => ("meta", "stats".into(), "-".into()),
        Request::Telemetry { .. } => ("meta", "telemetry".into(), "-".into()),
    }
}

fn parse_err(pos: usize, msg: impl Into<String>) -> DdlError {
    DdlError::Parse {
        pos,
        msg: msg.into(),
    }
}

fn parse_kind(tok: &str) -> Result<TransformKind, DdlError> {
    match tok {
        "dft" => Ok(TransformKind::Dft(Direction::Forward)),
        "idft" => Ok(TransformKind::Dft(Direction::Inverse)),
        "wht" => Ok(TransformKind::Wht),
        other => Err(parse_err(0, format!("unknown transform {other:?}"))),
    }
}

fn parse_strategy(tok: &str) -> Result<Strategy, DdlError> {
    match tok {
        "sdl" => Ok(Strategy::Sdl),
        "ddl" => Ok(Strategy::Ddl),
        other => Err(parse_err(0, format!("unknown strategy {other:?}"))),
    }
}

fn parse_backend(tok: &str) -> Result<BackendKind, DdlError> {
    BackendKind::parse(tok).ok_or_else(|| {
        parse_err(
            0,
            format!("unknown backend {tok:?} (want scalar|interp|simd)"),
        )
    })
}

/// Pops a trailing `backend=<scalar|interp|simd>` token, if present.
/// Absent, callers fall back to the process-default backend
/// ([`BackendKind::selected`]), keeping old clients byte-compatible.
fn pop_backend(toks: &mut Vec<&str>) -> Result<Option<BackendKind>, DdlError> {
    match toks.last() {
        Some(last) if last.starts_with("backend=") => {
            let backend = parse_backend(&last["backend=".len()..])?;
            toks.pop();
            Ok(Some(backend))
        }
        _ => Ok(None),
    }
}

/// Parses one wire line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, DdlError> {
    let line = line.trim();
    let mut toks: Vec<&str> = line.split_whitespace().collect();
    match toks.first().copied() {
        Some("stats") => Ok(Request::Stats),
        Some("telemetry") => match toks.as_slice() {
            ["telemetry"] => Ok(Request::Telemetry { text: false }),
            ["telemetry", "text"] => Ok(Request::Telemetry { text: true }),
            _ => Err(parse_err(0, "usage: telemetry [text]")),
        },
        Some("plan") => {
            let backend = pop_backend(&mut toks)?.unwrap_or_else(BackendKind::selected);
            if toks.len() != 4 {
                return Err(parse_err(
                    0,
                    "usage: plan <dft|wht> <n> <sdl|ddl> [backend=B]",
                ));
            }
            let kind = parse_kind(toks[1])?;
            let n: usize = toks[2]
                .parse()
                .map_err(|_| parse_err(0, format!("bad size {:?}", toks[2])))?;
            let strategy = parse_strategy(toks[3])?;
            Ok(Request::Plan {
                kind,
                n,
                strategy,
                backend,
            })
        }
        Some("exec") => {
            if toks.len() < 3 {
                return Err(parse_err(
                    0,
                    "usage: exec <dft|wht> (<n> <sdl|ddl> | <tree-expr>) \
                     [deadline_ms=K] [backend=B]",
                ));
            }
            let kind = parse_kind(toks[1])?;
            // `deadline_ms=` and `backend=` are both trailing options;
            // accept them in either order.
            let mut backend = pop_backend(&mut toks)?;
            let deadline = match toks.last() {
                Some(last) if last.starts_with("deadline_ms=") => {
                    let ms: u64 = last["deadline_ms=".len()..]
                        .parse()
                        .map_err(|_| parse_err(0, format!("bad deadline {last:?}")))?;
                    toks.pop();
                    Some(Duration::from_millis(ms))
                }
                _ => None,
            };
            if backend.is_none() {
                backend = pop_backend(&mut toks)?;
            }
            let backend = backend.unwrap_or_else(BackendKind::selected);
            let rest = &toks[2..];
            if rest.is_empty() {
                return Err(parse_err(0, "exec: missing size or tree expression"));
            }
            // `exec dft 1024 ddl` — planned form; anything else is a
            // tree expression (which may contain spaces: `ct(16, 16)`).
            if rest.len() == 2 {
                if let Ok(n) = rest[0].parse::<usize>() {
                    let strategy = parse_strategy(rest[1])?;
                    return Ok(Request::ExecPlanned {
                        kind,
                        n,
                        strategy,
                        deadline,
                        backend,
                    });
                }
            }
            let expr = rest.join(" ");
            // Validate at admission so malformed trees never consume a
            // queue slot.
            grammar::parse(&expr)?;
            Ok(Request::ExecExpr {
                kind,
                expr,
                deadline,
                backend,
            })
        }
        Some(other) => Err(parse_err(0, format!("unknown command {other:?}"))),
        None => Err(parse_err(0, "empty request")),
    }
}

/// Stable one-token code for an error's wire response.
pub fn error_code(e: &DdlError) -> &'static str {
    match e {
        DdlError::Overloaded { .. } => "overloaded",
        DdlError::DeadlineExceeded { .. } => "deadline",
        DdlError::Cancelled { .. } => "cancelled",
        DdlError::Parse { .. } => "parse",
        DdlError::WorkerPanic { .. } => "worker-panic",
        DdlError::InvalidSize { .. } => "invalid-size",
        DdlError::InvalidTree(_) => "invalid-tree",
        DdlError::ShapeMismatch { .. } => "shape",
        DdlError::Resource(_) => "resource",
        _ => "error",
    }
}

fn wire_err(e: &DdlError) -> String {
    format!("err {}: {e}", error_code(e))
}

/// Point-in-time service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted to the queue (or served inline).
    pub accepted: u64,
    /// Requests shed at admission (queue full or injected shed).
    pub shed: u64,
    /// Requests answered with an `ok` response.
    pub completed: u64,
    /// Requests answered with an `err` response after admission.
    pub failed: u64,
    /// Failed requests whose cause was a contained worker panic.
    pub worker_panics: u64,
    /// Failed requests whose cause was deadline expiry.
    pub deadline_expired: u64,
    /// Requests currently queued.
    pub queued: usize,
    /// Requests dequeued but not yet answered.
    pub in_flight: u64,
    /// Worker threads currently running.
    pub workers: usize,
}

struct Job {
    id: RequestId,
    /// The wire line, kept for the flight capsule's detail field.
    line: String,
    request: Request,
    /// The admission instant — the single monotonic anchor every phase
    /// (queue wait, plan, execute) and the deadline measure from.
    submitted: Instant,
    deadline: Option<Duration>,
    reply: SyncSender<String>,
}

/// Per-phase latency attribution for one request, filled in by
/// [`run_request`] as the phases run.
#[derive(Clone, Copy, Default)]
struct Phases {
    plan_ns: u64,
    execute_ns: u64,
    plan_cache_hit: Option<bool>,
}

struct ServiceInner {
    engine: Engine,
    config: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    workers_live: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    worker_panics: AtomicU64,
    deadline_expired: AtomicU64,
    /// Requests popped from the queue but not yet finished. Incremented
    /// while the queue lock is held (a request is never in neither
    /// place) and decremented only after its histogram sample lands, so
    /// `queued == 0 && in_flight == 0` implies the histograms cover
    /// every admitted request.
    in_flight: AtomicU64,
    histos: HistogramSet,
    flight: FlightRecorder,
}

/// A pending response for one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<String>,
    deadline: Option<Duration>,
}

impl Ticket {
    /// Waits for the response. Never blocks unboundedly: gives up after
    /// the request deadline plus grace (or 30 s without one) with an
    /// `err` line.
    pub fn wait(self) -> String {
        let limit = self
            .deadline
            .map(|d| d + Duration::from_secs(5))
            .unwrap_or(Duration::from_secs(30));
        match self.rx.recv_timeout(limit) {
            Ok(line) => line,
            Err(RecvTimeoutError::Timeout) => {
                wire_err(&DdlError::Resource("response timed out".into()))
            }
            Err(RecvTimeoutError::Disconnected) => wire_err(&DdlError::Resource(
                "worker dropped the response channel".into(),
            )),
        }
    }
}

fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking holder already reported its failure through its own
    // response; the queue data (plain jobs) cannot be mid-mutation in an
    // observable way, so poison recovery is safe and keeps serving.
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The service: one shared engine, a bounded queue, a worker pool.
/// Cloning shares the same service.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
    // Join handles live outside `inner` so clones stay cheap; only the
    // handle returned by `start` can join.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Service {
    /// Builds the service and spawns its worker pool. Spawn failures
    /// degrade: the service still works with fewer (or zero) workers,
    /// serving inline through [`Service::handle`].
    pub fn start(config: ServiceConfig) -> Service {
        let svc = Service::without_workers(config);
        let mut handles = Vec::new();
        for i in 0..config.workers {
            // `scheduler.spawn` injects spawn failure here too, so chaos
            // runs exercise the degraded (fewer-workers) path.
            if faultpoint::hit("scheduler.spawn") {
                continue;
            }
            let inner = Arc::clone(&svc.inner);
            let spawned = std::thread::Builder::new()
                .name(format!("ddl-serve-{i}"))
                .spawn(move || worker_loop(&inner));
            if let Ok(h) = spawned {
                svc.inner.workers_live.fetch_add(1, Ordering::Release);
                handles.push(h);
            }
        }
        *relock(&svc.workers) = handles;
        svc
    }

    /// Builds the service with no worker threads. Tests use this to
    /// drive the queue deterministically ([`Service::process_one`]);
    /// production reaches the same state when every spawn fails.
    pub fn without_workers(config: ServiceConfig) -> Service {
        Service {
            inner: Arc::new(ServiceInner {
                engine: Engine::new(config.engine),
                config,
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                workers_live: AtomicUsize::new(0),
                accepted: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                worker_panics: AtomicU64::new(0),
                deadline_expired: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                histos: HistogramSet::new(),
                flight: FlightRecorder::from_env(64),
            }),
            workers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The shared engine (plan cache).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Parses and admits one request line. Returns a [`Ticket`] for the
    /// response, or fails immediately — malformed lines with a parse
    /// error, a full queue with [`DdlError::Overloaded`]. Never blocks.
    pub fn submit(&self, line: &str) -> Result<Ticket, DdlError> {
        let admitted = Instant::now();
        let request = parse_request(line)?;
        // `stats` and `telemetry` are reads; answer inline without a
        // queue slot. Their counters and histogram sample land *before*
        // the response is built, so a telemetry snapshot always
        // accounts for the request that asked for it.
        match &request {
            Request::Stats | Request::Telemetry { .. } => {
                self.inner.accepted.fetch_add(1, Ordering::Relaxed);
                self.inner.completed.fetch_add(1, Ordering::Relaxed);
                let (op, kind, backend) = request_labels(&request);
                self.inner.histos.record(
                    op,
                    &kind,
                    &backend,
                    "ok",
                    admitted.elapsed().as_nanos() as u64,
                );
                let body = match request {
                    Request::Telemetry { text: true } => self.telemetry_text(),
                    Request::Telemetry { text: false } => self.telemetry_line(),
                    _ => self.stats_line(),
                };
                let (tx, rx) = mpsc::sync_channel(1);
                let _ = tx.send(body);
                return Ok(Ticket { rx, deadline: None });
            }
            _ => {}
        }
        let deadline = match &request {
            Request::ExecPlanned { deadline, .. } | Request::ExecExpr { deadline, .. } => {
                deadline.or(self.inner.config.default_deadline)
            }
            _ => self.inner.config.default_deadline,
        };
        let id = next_request_id();
        let labels = request_labels(&request);
        let (tx, rx) = mpsc::sync_channel(1);
        let shed_at = {
            let mut q = relock(&self.inner.queue);
            let capacity = self.inner.config.queue_capacity;
            if q.len() >= capacity || faultpoint::hit("serve.queue.full") {
                Some((q.len(), capacity))
            } else {
                q.push_back(Job {
                    id,
                    line: line.trim().to_string(),
                    request,
                    submitted: admitted,
                    deadline,
                    reply: tx,
                });
                None
            }
        };
        if let Some((queued, capacity)) = shed_at {
            // Shed accounting runs after the queue guard drops — the
            // flight recorder and histogram set take their own locks.
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            let (op, kind, backend) = labels;
            let capsule = RequestCapsule {
                id: id.get(),
                op: op.into(),
                kind,
                backend,
                outcome: OUTCOME_OVERLOADED.into(),
                detail: line.trim().to_string(),
                total_ns: admitted.elapsed().as_nanos() as u64,
                ..Default::default()
            }
            .truncate_detail();
            self.inner.flight.record(capsule.clone());
            let _ = self.inner.flight.dump("queue_shed", &capsule);
            self.inner.histos.record(
                op,
                &capsule.kind,
                &capsule.backend,
                OUTCOME_OVERLOADED,
                capsule.total_ns,
            );
            return Err(DdlError::Overloaded { queued, capacity });
        }
        self.inner.accepted.fetch_add(1, Ordering::Relaxed);
        self.inner.ready.notify_one();
        Ok(Ticket { rx, deadline })
    }

    /// Submits and waits: the one-call entry point connection handlers
    /// use. With zero live workers (degraded mode) the request is served
    /// inline on this thread.
    pub fn handle(&self, line: &str) -> String {
        match self.submit(line) {
            Ok(ticket) => {
                if self.inner.workers_live.load(Ordering::Acquire) == 0 {
                    self.process_one();
                }
                ticket.wait()
            }
            Err(e) => wire_err(&e),
        }
    }

    /// Dequeues and serves at most one job on the calling thread.
    /// Returns whether a job was served. Tests and degraded mode use
    /// this; worker threads run the same path in a loop.
    pub fn process_one(&self) -> bool {
        let job = {
            let mut q = relock(&self.inner.queue);
            let job = q.pop_front();
            if job.is_some() {
                // In flight while the queue lock is still held: the
                // request is never in neither place.
                self.inner.in_flight.fetch_add(1, Ordering::Relaxed);
            }
            job
        };
        match job {
            Some(job) => {
                serve_job(&self.inner, job);
                true
            }
            None => false,
        }
    }

    /// Signals workers to exit once the queue drains and joins them.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.ready.notify_all();
        let handles = std::mem::take(&mut *relock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.inner.accepted.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            worker_panics: self.inner.worker_panics.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            queued: relock(&self.inner.queue).len(),
            in_flight: self.inner.in_flight.load(Ordering::Acquire),
            workers: self.inner.workers_live.load(Ordering::Acquire),
        }
    }

    /// The `ok stats …` wire line.
    pub fn stats_line(&self) -> String {
        let s = self.stats();
        let e = self.inner.engine.stats();
        format!(
            "ok stats accepted={} shed={} completed={} failed={} worker_panics={} \
             deadline_expired={} queued={} workers={} plan_hits={} plan_misses={} \
             plans_compiled={} shards_quarantined={} sessions={}",
            s.accepted,
            s.shed,
            s.completed,
            s.failed,
            s.worker_panics,
            s.deadline_expired,
            s.queued,
            s.workers,
            e.plan_hits,
            e.plan_misses,
            e.plans_compiled,
            e.shards_quarantined,
            e.sessions
        )
    }

    /// A point-in-time `ddl-telemetry` snapshot.
    ///
    /// The `serve.snapshot_quiesced` counter is 1 exactly when the
    /// snapshot provably covers every admitted request: queue empty,
    /// nothing in flight, the accepted counter stable across the
    /// histogram read, and the outcome sums matching the admission
    /// counters. [`TelemetryReport::parse`] enforces exact conservation
    /// only on such snapshots (the inequalities always hold).
    pub fn telemetry(&self) -> TelemetryReport {
        let queued = relock(&self.inner.queue).len() as u64;
        let in_flight = self.inner.in_flight.load(Ordering::Acquire);
        let accepted_before = self.inner.accepted.load(Ordering::Relaxed);
        let entries = self.inner.histos.entries();
        let accepted = self.inner.accepted.load(Ordering::Relaxed);
        let shed = self.inner.shed.load(Ordering::Relaxed);
        let mut report = TelemetryReport {
            entries,
            counters: BTreeMap::new(),
        };
        let (admitted_sum, shed_sum) = report.outcome_totals();
        let quiesced = queued == 0
            && in_flight == 0
            && accepted_before == accepted
            && admitted_sum == accepted
            && shed_sum == shed;
        let e = self.inner.engine.stats();
        let sched = scheduler_totals();
        let c = &mut report.counters;
        c.insert("serve.accepted".into(), accepted);
        c.insert("serve.shed".into(), shed);
        c.insert(
            "serve.completed".into(),
            self.inner.completed.load(Ordering::Relaxed),
        );
        c.insert(
            "serve.failed".into(),
            self.inner.failed.load(Ordering::Relaxed),
        );
        c.insert(
            "serve.worker_panics".into(),
            self.inner.worker_panics.load(Ordering::Relaxed),
        );
        c.insert(
            "serve.deadline_expired".into(),
            self.inner.deadline_expired.load(Ordering::Relaxed),
        );
        c.insert("serve.queued".into(), queued);
        c.insert("serve.in_flight".into(), in_flight);
        c.insert(
            "serve.workers".into(),
            self.inner.workers_live.load(Ordering::Acquire) as u64,
        );
        c.insert("serve.snapshot_quiesced".into(), u64::from(quiesced));
        c.insert("engine.plan_hits".into(), e.plan_hits);
        c.insert("engine.plan_misses".into(), e.plan_misses);
        c.insert("engine.plans_compiled".into(), e.plans_compiled);
        c.insert("engine.shards_quarantined".into(), e.shards_quarantined);
        c.insert("engine.sessions".into(), e.sessions);
        c.insert("scheduler.batches".into(), sched.batches);
        c.insert("scheduler.steals".into(), sched.steals);
        c.insert("scheduler.deadline_expired".into(), sched.deadline_expired);
        c.insert("scheduler.cancelled".into(), sched.cancelled);
        c.insert("flight.capsules".into(), self.inner.flight.recorded());
        c.insert("flight.dumps".into(), self.inner.flight.dumps());
        report
    }

    /// The `ok telemetry <json>` wire line (one compact JSON document).
    pub fn telemetry_line(&self) -> String {
        format!("ok telemetry {}", self.telemetry().to_json().compact())
    }

    /// Prometheus-style text exposition of the current snapshot.
    pub fn telemetry_text(&self) -> String {
        self.telemetry().render_prometheus()
    }

    /// Routes flight-recorder dumps to `path` (`None` disables them).
    /// Overrides the `DDL_FLIGHT_OUT` environment default.
    pub fn set_flight_out(&self, path: Option<PathBuf>) {
        self.inner.flight.set_out(path);
    }

    /// Writes the current telemetry snapshot to `path` as pretty JSON.
    pub fn write_telemetry(&self, path: &Path) -> Result<(), DdlError> {
        let text = self.telemetry().to_json().pretty();
        std::fs::write(path, text)
            .map_err(|e| DdlError::Resource(format!("writing {}: {e}", path.display())))
    }
}

fn worker_loop(inner: &Arc<ServiceInner>) {
    loop {
        let job = {
            let mut q = relock(&inner.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    inner.in_flight.fetch_add(1, Ordering::Relaxed);
                    break Some(j);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _timeout) = inner
                    .ready
                    .wait_timeout(q, Duration::from_millis(25))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        match job {
            Some(job) => serve_job(inner, job),
            None => {
                inner.workers_live.fetch_sub(1, Ordering::Release);
                return;
            }
        }
    }
}

/// Serves one job: queue-wait deadline check against the admission
/// anchor, panic-contained execution, post-execution deadline re-check,
/// then exactly one pass through [`finish`].
fn serve_job(inner: &ServiceInner, job: Job) {
    let queue_ns = job.submitted.elapsed().as_nanos() as u64;
    let deadline = job
        .deadline
        .map(|limit| Deadline::from_admission(job.submitted, limit));
    // Queue-wait expiry measures against the admission anchor: budget
    // spent waiting is as gone as budget spent executing. The
    // `serve.dequeue.slow` fault point simulates a dequeue so late the
    // whole budget burned in the queue.
    let queue_expired = deadline.and_then(|d| {
        if faultpoint::hit("serve.dequeue.slow") {
            Some(d.limit().as_nanos() as u64)
        } else {
            d.expired()
        }
    });
    let mut phases = Phases::default();
    let mut quarantine_grew = false;
    let result = if let Some(late_ns) = queue_expired {
        Err(DdlError::DeadlineExceeded {
            context: "serve: queue wait",
            late_ns,
        })
    } else {
        let quarantined_before = inner.engine.stats().shards_quarantined;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_request(inner, &job.request, &mut phases)
        }));
        quarantine_grew = inner.engine.stats().shards_quarantined > quarantined_before;
        match outcome {
            // The same anchor is re-checked after execution: finishing
            // late is expiry even when every phase *started* in budget.
            Ok(Ok(line)) => match deadline.and_then(|d| d.expired()) {
                Some(late_ns) => Err(DdlError::DeadlineExceeded {
                    context: "serve: execute",
                    late_ns,
                }),
                None => Ok(line),
            },
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                let text = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(DdlError::WorkerPanic {
                    item: 0,
                    payload: text,
                })
            }
        }
    };
    finish(inner, job, result, phases, queue_ns, quarantine_grew);
}

/// The single exit path for a dequeued job: counters, flight capsule
/// (plus trigger dumps), histogram sample, reply — in that order. The
/// `in_flight` gauge drops only after the histogram sample lands, so a
/// quiescent telemetry snapshot can never miss a request it counted.
fn finish(
    inner: &ServiceInner,
    job: Job,
    result: Result<String, DdlError>,
    phases: Phases,
    queue_ns: u64,
    quarantine_grew: bool,
) {
    let (line, outcome) = match &result {
        Ok(line) => (line.clone(), "ok"),
        Err(e) => {
            let outcome = match e {
                DdlError::DeadlineExceeded { .. } => "deadline_expired",
                DdlError::WorkerPanic { .. } => "panicked",
                _ => "error",
            };
            (wire_err(e), outcome)
        }
    };
    match outcome {
        "ok" => {
            inner.completed.fetch_add(1, Ordering::Relaxed);
        }
        "deadline_expired" => {
            inner.failed.fetch_add(1, Ordering::Relaxed);
            inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }
        "panicked" => {
            inner.failed.fetch_add(1, Ordering::Relaxed);
            inner.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            inner.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    let total_ns = job.submitted.elapsed().as_nanos() as u64;
    let (op, kind, backend) = request_labels(&job.request);
    let capsule = RequestCapsule {
        id: job.id.get(),
        op: op.into(),
        kind,
        backend,
        outcome: outcome.into(),
        detail: job.line,
        queue_ns,
        plan_ns: phases.plan_ns,
        execute_ns: phases.execute_ns,
        total_ns,
        plan_cache_hit: phases.plan_cache_hit,
    }
    .truncate_detail();
    inner.flight.record(capsule.clone());
    match outcome {
        "panicked" => {
            let _ = inner.flight.dump("panic", &capsule);
        }
        "deadline_expired" => {
            let _ = inner.flight.dump("deadline", &capsule);
        }
        _ => {}
    }
    if quarantine_grew {
        let _ = inner.flight.dump("shard_quarantine", &capsule);
    }
    inner
        .histos
        .record(op, &capsule.kind, &capsule.backend, outcome, total_ns);
    // Release pairs with the telemetry snapshot's acquire read: once it
    // observes `in_flight == 0`, every histogram sample above is
    // visible to it.
    inner.in_flight.fetch_sub(1, Ordering::Release);
    let _ = job.reply.send(line);
}

fn run_request(
    inner: &ServiceInner,
    request: &Request,
    phases: &mut Phases,
) -> Result<String, DdlError> {
    faultpoint::maybe_panic("serve.worker.panic");
    match request {
        // Both answered at admission; a queue slot never sees them.
        Request::Stats | Request::Telemetry { .. } => Ok(String::new()),
        Request::Plan {
            kind,
            n,
            strategy,
            backend,
        } => {
            let key = PlanKey {
                kind: *kind,
                n: *n,
                strategy: *strategy,
                backend: *backend,
            };
            let plan_started = Instant::now();
            let (artifact, cached) = inner.engine.plan_observed(key)?;
            phases.plan_ns = plan_started.elapsed().as_nanos() as u64;
            phases.plan_cache_hit = Some(cached);
            let tree = match (kind, artifact.as_dft(), artifact.as_wht()) {
                (_, Some(p), _) => grammar::print_dft(p.tree()),
                (_, _, Some(p)) => grammar::print_wht(p.tree()),
                _ => String::new(),
            };
            Ok(format!(
                "ok plan {} n={n} strategy={} cached={} backend={} tree={tree}",
                kind.label(),
                strategy.label(),
                cached,
                backend.label()
            ))
        }
        Request::ExecPlanned {
            kind,
            n,
            strategy,
            backend,
            ..
        } => {
            let key = PlanKey {
                kind: *kind,
                n: *n,
                strategy: *strategy,
                backend: *backend,
            };
            let plan_started = Instant::now();
            let (artifact, cached) = inner.engine.plan_observed(key)?;
            phases.plan_ns = plan_started.elapsed().as_nanos() as u64;
            phases.plan_cache_hit = Some(cached);
            let started = Instant::now();
            let dc = match (artifact.as_dft(), artifact.as_wht()) {
                (Some(plan), _) => exec_dft_ones(plan)?,
                (_, Some(plan)) => exec_wht_ones(plan)?,
                _ => return Err(DdlError::Resource("unknown artifact kind".into())),
            };
            phases.execute_ns = started.elapsed().as_nanos() as u64;
            Ok(format!(
                "ok exec {} n={n} dc={dc} backend={} wall_ns={}",
                kind.label(),
                backend.label(),
                phases.execute_ns
            ))
        }
        Request::ExecExpr {
            kind,
            expr,
            backend,
            ..
        } => {
            // Parsing and compiling the explicit tree is this form's
            // plan phase; it never consults the engine cache.
            let plan_started = Instant::now();
            let tree = grammar::parse(expr)?;
            let n = tree.size();
            enum Compiled {
                Dft(DftPlan),
                Wht(WhtPlan),
            }
            let compiled = match kind {
                TransformKind::Dft(dir) => {
                    Compiled::Dft(DftPlan::with_backend(tree, *dir, *backend)?)
                }
                TransformKind::Wht => Compiled::Wht(WhtPlan::new(tree)?),
            };
            phases.plan_ns = plan_started.elapsed().as_nanos() as u64;
            let started = Instant::now();
            let dc = match &compiled {
                Compiled::Dft(plan) => exec_dft_ones(plan)?,
                Compiled::Wht(plan) => exec_wht_ones(plan)?,
            };
            phases.execute_ns = started.elapsed().as_nanos() as u64;
            Ok(format!(
                "ok exec {} n={n} dc={dc} backend={} wall_ns={}",
                kind.label(),
                backend.label(),
                phases.execute_ns
            ))
        }
    }
}

fn exec_dft_ones(plan: &DftPlan) -> Result<f64, DdlError> {
    let n = plan.n();
    let x = vec![Complex64::ONE; n];
    let mut y = vec![Complex64::ZERO; n];
    plan.try_execute(&x, &mut y)?;
    Ok(y[0].re)
}

fn exec_wht_ones(plan: &WhtPlan) -> Result<f64, DdlError> {
    let mut data = vec![1.0f64; plan.n()];
    plan.try_execute(&mut data)?;
    Ok(data[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddl_core::faultpoint::FaultMode;

    fn small(workers: usize, capacity: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            queue_capacity: capacity,
            default_deadline: None,
            engine: EngineConfig::default(),
        }
    }

    #[test]
    fn parse_covers_the_grammar() {
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(
            parse_request("plan dft 1024 ddl"),
            Ok(Request::Plan {
                kind: TransformKind::Dft(Direction::Forward),
                n: 1024,
                strategy: Strategy::Ddl,
                backend: BackendKind::selected(),
            })
        );
        assert_eq!(
            parse_request("exec wht 256 sdl deadline_ms=50"),
            Ok(Request::ExecPlanned {
                kind: TransformKind::Wht,
                n: 256,
                strategy: Strategy::Sdl,
                deadline: Some(Duration::from_millis(50)),
                backend: BackendKind::selected(),
            })
        );
        match parse_request("exec dft ct(16, 16)") {
            Ok(Request::ExecExpr { expr, .. }) => assert_eq!(expr, "ct(16, 16)"),
            other => panic!("want ExecExpr, got {other:?}"),
        }
        assert!(matches!(
            parse_request("exec dft ct(16,"),
            Err(DdlError::Parse { .. })
        ));
        // The trailing backend option composes with deadline_ms in
        // either order and is validated at parse time.
        assert_eq!(
            parse_request("plan dft 256 sdl backend=simd"),
            Ok(Request::Plan {
                kind: TransformKind::Dft(Direction::Forward),
                n: 256,
                strategy: Strategy::Sdl,
                backend: BackendKind::Simd,
            })
        );
        for line in [
            "exec dft 64 ddl deadline_ms=50 backend=interp",
            "exec dft 64 ddl backend=interp deadline_ms=50",
        ] {
            assert_eq!(
                parse_request(line),
                Ok(Request::ExecPlanned {
                    kind: TransformKind::Dft(Direction::Forward),
                    n: 64,
                    strategy: Strategy::Ddl,
                    deadline: Some(Duration::from_millis(50)),
                    backend: BackendKind::Interp,
                }),
                "line {line:?}"
            );
        }
        match parse_request("exec dft ct(8, 8) backend=simd") {
            Ok(Request::ExecExpr { expr, backend, .. }) => {
                assert_eq!(expr, "ct(8, 8)");
                assert_eq!(backend, BackendKind::Simd);
            }
            other => panic!("want ExecExpr, got {other:?}"),
        }
        assert!(matches!(
            parse_request("plan dft 256 sdl backend=avx2"),
            Err(DdlError::Parse { .. })
        ));
        assert!(matches!(
            parse_request("frobnicate"),
            Err(DdlError::Parse { .. })
        ));
        assert!(matches!(parse_request(""), Err(DdlError::Parse { .. })));
    }

    #[test]
    fn saturated_queue_sheds_with_typed_overload() {
        let svc = Service::without_workers(small(0, 2));
        let t1 = svc.submit("exec dft 64 sdl").expect("slot 1");
        let t2 = svc.submit("exec dft 64 sdl").expect("slot 2");
        match svc.submit("exec dft 64 sdl") {
            Err(DdlError::Overloaded { queued, capacity }) => {
                assert_eq!((queued, capacity), (2, 2));
            }
            other => panic!("want Overloaded, got {other:?}"),
        }
        let s = svc.stats();
        assert_eq!((s.accepted, s.shed, s.queued), (2, 1, 2));
        // Draining frees slots again.
        assert!(svc.process_one());
        assert!(svc.process_one());
        assert!(t1.wait().starts_with("ok exec dft n=64"));
        assert!(t2.wait().starts_with("ok exec dft n=64"));
        assert!(svc.submit("exec dft 64 sdl").is_ok());
    }

    #[test]
    fn expired_deadline_is_shed_at_dequeue() {
        let svc = Service::without_workers(small(0, 8));
        let t = svc
            .submit("exec dft 64 sdl deadline_ms=0")
            .expect("admitted");
        std::thread::sleep(Duration::from_millis(2));
        assert!(svc.process_one());
        let line = t.wait();
        assert!(line.starts_with("err deadline:"), "got {line}");
        let s = svc.stats();
        assert_eq!((s.failed, s.deadline_expired), (1, 1));
    }

    #[test]
    fn malformed_requests_never_take_a_queue_slot() {
        let svc = Service::without_workers(small(0, 1));
        assert!(svc.submit("exec dft ct(").is_err());
        assert!(svc.submit("plan dft ten ddl").is_err());
        assert_eq!(svc.stats().queued, 0);
        assert!(svc.submit("exec dft 32 sdl").is_ok());
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        let _x = faultpoint::exclusive();
        let svc = Service::without_workers(small(0, 8));
        {
            let _g = faultpoint::arm(3, &[("serve.worker.panic", FaultMode::Once(0))]);
            let t = svc.submit("exec dft 64 sdl").expect("admitted");
            assert!(svc.process_one());
            let line = t.wait();
            assert!(line.starts_with("err worker-panic:"), "got {line}");
        }
        // The service keeps serving after the contained panic.
        let t = svc.submit("exec dft 64 sdl").expect("admitted");
        assert!(svc.process_one());
        assert!(t.wait().starts_with("ok exec dft n=64"));
        let s = svc.stats();
        assert_eq!((s.worker_panics, s.completed), (1, 1));
        assert_eq!(s.accepted, s.completed + s.failed, "conservation");
    }

    #[test]
    fn injected_queue_full_sheds_even_when_empty() {
        let _x = faultpoint::exclusive();
        let svc = Service::without_workers(small(0, 8));
        let _g = faultpoint::arm(11, &[("serve.queue.full", FaultMode::Once(0))]);
        match svc.submit("exec dft 64 sdl") {
            Err(DdlError::Overloaded { queued, .. }) => assert_eq!(queued, 0),
            other => panic!("want Overloaded, got {other:?}"),
        }
        assert!(svc.submit("exec dft 64 sdl").is_ok());
    }

    #[test]
    fn worker_pool_serves_and_conserves() {
        let svc = Service::start(small(2, 32));
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| {
                let n = 32 << (i % 3);
                svc.submit(&format!("exec dft {n} ddl")).expect("admitted")
            })
            .collect();
        for t in tickets {
            let line = t.wait();
            assert!(line.starts_with("ok exec dft"), "got {line}");
        }
        svc.shutdown();
        let s = svc.stats();
        assert_eq!(s.accepted, 16);
        assert_eq!(s.completed, 16);
        assert_eq!(s.failed, 0);
        assert_eq!(s.accepted, s.completed + s.failed, "conservation");
        assert_eq!(s.workers, 0, "workers joined");
    }

    #[test]
    fn degraded_zero_worker_mode_serves_inline() {
        let svc = Service::without_workers(small(0, 8));
        let line = svc.handle("exec wht 128 sdl");
        assert!(line.starts_with("ok exec wht n=128 dc=128"), "got {line}");
        let line = svc.handle("stats");
        assert!(line.starts_with("ok stats "), "got {line}");
    }

    #[test]
    fn plan_command_caches_in_the_engine() {
        let svc = Service::without_workers(small(0, 8));
        let first = svc.handle("plan dft 256 ddl");
        assert!(first.contains("cached=false"), "got {first}");
        assert!(first.contains("tree="), "got {first}");
        let second = svc.handle("plan dft 256 ddl");
        assert!(second.contains("cached=true"), "got {second}");
    }

    #[test]
    fn exec_expr_runs_the_given_tree() {
        let svc = Service::without_workers(small(0, 8));
        let line = svc.handle("exec dft ct(16, ct(16, 16))");
        assert!(line.starts_with("ok exec dft n=4096 dc=4096"), "got {line}");
    }

    #[test]
    fn telemetry_parses_and_is_covered_by_the_grammar() {
        assert_eq!(
            parse_request("telemetry"),
            Ok(Request::Telemetry { text: false })
        );
        assert_eq!(
            parse_request("telemetry text"),
            Ok(Request::Telemetry { text: true })
        );
        assert!(matches!(
            parse_request("telemetry json"),
            Err(DdlError::Parse { .. })
        ));
    }

    #[test]
    fn telemetry_snapshot_conserves_outcomes_when_quiesced() {
        let svc = Service::without_workers(small(0, 8));
        for line in ["plan dft 64 sdl", "exec dft 64 sdl", "exec wht 32 sdl"] {
            assert!(svc.handle(line).starts_with("ok "), "line {line:?}");
        }
        let report = svc.telemetry();
        assert_eq!(report.counters.get("serve.snapshot_quiesced"), Some(&1));
        let (admitted, shed) = report.outcome_totals();
        assert_eq!(Some(&admitted), report.counters.get("serve.accepted"));
        assert_eq!(Some(&shed), report.counters.get("serve.shed"));
        // The wire line round-trips through the strict parser, which
        // re-enforces the quiesced conservation law.
        let line = svc.handle("telemetry");
        let json = line.strip_prefix("ok telemetry ").expect("wire prefix");
        let back = TelemetryReport::parse(json).expect("valid snapshot");
        assert_eq!(back.counters.get("serve.snapshot_quiesced"), Some(&1));
        // The text form exposes the same families.
        let text = svc.handle("telemetry text");
        assert!(text.contains("ddl_serve_accepted"), "got:\n{text}");
        assert!(text.contains("_bucket"), "got:\n{text}");
    }

    #[test]
    fn shed_requests_land_in_the_overloaded_histogram() {
        let _x = faultpoint::exclusive();
        let svc = Service::without_workers(small(0, 8));
        let _g = faultpoint::arm(17, &[("serve.queue.full", FaultMode::Once(0))]);
        assert!(svc.submit("exec dft 64 sdl").is_err());
        let report = svc.telemetry();
        let (admitted, shed) = report.outcome_totals();
        assert_eq!((admitted, shed), (0, 1));
        assert_eq!(report.counters.get("serve.shed"), Some(&1));
        assert_eq!(report.counters.get("serve.snapshot_quiesced"), Some(&1));
    }

    #[test]
    fn flight_capsules_attribute_phases_to_the_request() {
        let svc = Service::without_workers(small(0, 8));
        let dir = std::env::temp_dir().join(format!("ddl-serve-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("flight.jsonl");
        svc.set_flight_out(Some(out.clone()));
        {
            let _x = faultpoint::exclusive();
            let _g = faultpoint::arm(5, &[("serve.worker.panic", FaultMode::Once(0))]);
            let t = svc.submit("exec dft 64 sdl").expect("admitted");
            assert!(svc.process_one());
            assert!(t.wait().starts_with("err worker-panic:"));
        }
        let text = std::fs::read_to_string(&out).expect("dump written");
        let dump = ddl_core::FlightDump::parse(text.lines().next().expect("one line"))
            .expect("parseable dump");
        assert_eq!(dump.trigger, "panic");
        assert_eq!(dump.capsule.outcome, "panicked");
        assert!(dump.capsule.id > 0, "request id propagated");
        assert_eq!(dump.capsule.detail, "exec dft 64 sdl");
        assert!(
            dump.capsule.total_ns >= dump.capsule.queue_ns,
            "total covers the queue phase"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
