//! `ddl-serve` — line-oriented transform service over TCP or stdin.
//!
//! ```text
//! ddl-serve [--listen ADDR] [--oneshot] [--workers N] [--queue N]
//!           [--deadline-ms K] [--faults SEED:SPECS] [--wisdom PATH]
//!           [--telemetry-out PATH] [--telemetry-interval-ms K]
//!           [--flight-out PATH]
//! ```
//!
//! * `--listen ADDR`   serve newline-delimited requests over TCP
//!   (default `127.0.0.1:4890`); one response line per request line.
//! * `--oneshot`       read requests from stdin, answer on stdout, exit
//!   at EOF. Used by the CI smoke test and handy for piping.
//! * `--workers N`     worker threads (default 2; 0 = serve inline).
//! * `--queue N`       admission queue capacity (default 64); beyond it
//!   requests shed immediately with `err overloaded:`.
//! * `--deadline-ms K` default per-request deadline.
//! * `--faults S:SPECS` arm fault injection, e.g.
//!   `--faults 42:serve.worker.panic=p0.1;serve.queue.full=every@7`.
//! * `--wisdom PATH`   warm the plan cache from a wisdom file.
//! * `--telemetry-out PATH` write the `ddl-telemetry` snapshot to PATH
//!   periodically (see `--telemetry-interval-ms`, default 1000) and
//!   once more on clean shutdown — the final write is quiescent.
//! * `--flight-out PATH` route flight-recorder dumps (JSONL) to PATH;
//!   overrides the `DDL_FLIGHT_OUT` environment variable.
//!
//! Request grammar (see `ddl-serve` crate docs): `plan dft 1024 ddl`,
//! `exec dft 1024 ddl deadline_ms=50`, `exec dft ct(16, ct(16, 16))`,
//! `exec wht 256 sdl`, `stats`, `telemetry`, `telemetry text`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ddl_core::{faultpoint, EngineConfig, Wisdom};
use ddl_serve::{Service, ServiceConfig};

struct Args {
    listen: String,
    oneshot: bool,
    workers: usize,
    queue: usize,
    deadline: Option<Duration>,
    faults: Option<(u64, String)>,
    wisdom: Option<String>,
    telemetry_out: Option<PathBuf>,
    telemetry_interval: Duration,
    flight_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ddl-serve [--listen ADDR] [--oneshot] [--workers N] [--queue N] \
         [--deadline-ms K] [--faults SEED:SPECS] [--wisdom PATH] \
         [--telemetry-out PATH] [--telemetry-interval-ms K] [--flight-out PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:4890".to_string(),
        oneshot: false,
        workers: 2,
        queue: 64,
        deadline: None,
        faults: None,
        wisdom: None,
        telemetry_out: None,
        telemetry_interval: Duration::from_millis(1000),
        flight_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("ddl-serve: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--oneshot" => args.oneshot = true,
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                args.deadline = Some(Duration::from_millis(ms));
            }
            "--faults" => {
                let spec = value("--faults");
                let (seed, rules) = spec.split_once(':').unwrap_or_else(|| {
                    eprintln!("ddl-serve: --faults wants SEED:SPECS");
                    usage()
                });
                let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
                args.faults = Some((seed, rules.to_string()));
            }
            "--wisdom" => args.wisdom = Some(value("--wisdom")),
            "--telemetry-out" => args.telemetry_out = Some(PathBuf::from(value("--telemetry-out"))),
            "--telemetry-interval-ms" => {
                let ms: u64 = value("--telemetry-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.telemetry_interval = Duration::from_millis(ms.max(1));
            }
            "--flight-out" => args.flight_out = Some(PathBuf::from(value("--flight-out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ddl-serve: unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn serve_stream(svc: &Service, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("ddl-serve: [{peer}] clone failed: {e}");
            return;
        }
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = svc.handle(&line);
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    // Fault injection stays armed for the process lifetime: leak the
    // guard so it is not disarmed on drop.
    if let Some((seed, rules)) = &args.faults {
        match faultpoint::parse_specs(rules) {
            Ok(specs) => {
                std::mem::forget(faultpoint::arm_specs(*seed, &specs));
                eprintln!("ddl-serve: faults armed (seed {seed}): {rules}");
            }
            Err(e) => {
                eprintln!("ddl-serve: bad --faults: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let svc = Service::start(ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline: args.deadline,
        engine: EngineConfig::default(),
    });

    if let Some(path) = &args.flight_out {
        svc.set_flight_out(Some(path.clone()));
        eprintln!("ddl-serve: flight dumps -> {}", path.display());
    }

    // The periodic snapshot thread is a plain best-effort writer; the
    // final (quiescent) snapshot is written on the main path after the
    // serving loop ends.
    let telemetry_stop = Arc::new(AtomicBool::new(false));
    let telemetry_writer = args.telemetry_out.as_ref().map(|path| {
        let svc = svc.clone();
        let path = path.clone();
        let stop = Arc::clone(&telemetry_stop);
        let interval = args.telemetry_interval;
        std::thread::Builder::new()
            .name("ddl-serve-telemetry".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    if let Err(e) = svc.write_telemetry(&path) {
                        eprintln!("ddl-serve: telemetry write failed: {e}");
                    }
                }
            })
    });
    let finish_telemetry = |svc: &Service| {
        telemetry_stop.store(true, Ordering::Release);
        if let Some(Ok(h)) = telemetry_writer {
            let _ = h.join();
        }
        if let Some(path) = &args.telemetry_out {
            match svc.write_telemetry(path) {
                Ok(()) => eprintln!("ddl-serve: telemetry snapshot -> {}", path.display()),
                Err(e) => eprintln!("ddl-serve: telemetry write failed: {e}"),
            }
        }
    };

    if let Some(path) = &args.wisdom {
        match Wisdom::load(std::path::Path::new(path)) {
            Ok(wisdom) => {
                let cached = svc.engine().warm_from_wisdom(&wisdom);
                let quarantined = wisdom.quarantined().len();
                eprintln!(
                    "ddl-serve: warmed {cached} plan(s) from {path} \
                     ({quarantined} corrupt entr(ies) quarantined)"
                );
            }
            Err(e) => {
                // Degrade, don't die: a corrupt wisdom file costs the
                // warm cache, not the service.
                eprintln!("ddl-serve: wisdom load failed ({e}); starting cold");
            }
        }
    }

    if args.oneshot {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            println!("{}", svc.handle(&line));
        }
        svc.shutdown();
        // Workers are joined: this snapshot is the quiescent one the CI
        // conservation gate checks.
        finish_telemetry(&svc);
        return ExitCode::SUCCESS;
    }

    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ddl-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("ddl-serve: listening on {}", args.listen);
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let svc = svc.clone();
                // Connection threads are best-effort: a failed spawn
                // drops this connection but the listener keeps going.
                let spawned = std::thread::Builder::new()
                    .name("ddl-serve-conn".to_string())
                    .spawn(move || serve_stream(&svc, stream));
                if let Err(e) = spawned {
                    eprintln!("ddl-serve: connection thread spawn failed: {e}");
                }
            }
            Err(e) => eprintln!("ddl-serve: accept failed: {e}"),
        }
    }
    finish_telemetry(&svc);
    ExitCode::SUCCESS
}
