//! `ddl-serve` — line-oriented transform service over TCP or stdin.
//!
//! ```text
//! ddl-serve [--listen ADDR] [--oneshot] [--workers N] [--queue N]
//!           [--deadline-ms K] [--faults SEED:SPECS] [--wisdom PATH]
//! ```
//!
//! * `--listen ADDR`   serve newline-delimited requests over TCP
//!   (default `127.0.0.1:4890`); one response line per request line.
//! * `--oneshot`       read requests from stdin, answer on stdout, exit
//!   at EOF. Used by the CI smoke test and handy for piping.
//! * `--workers N`     worker threads (default 2; 0 = serve inline).
//! * `--queue N`       admission queue capacity (default 64); beyond it
//!   requests shed immediately with `err overloaded:`.
//! * `--deadline-ms K` default per-request deadline.
//! * `--faults S:SPECS` arm fault injection, e.g.
//!   `--faults 42:serve.worker.panic=p0.1;serve.queue.full=every@7`.
//! * `--wisdom PATH`   warm the plan cache from a wisdom file.
//!
//! Request grammar (see `ddl-serve` crate docs): `plan dft 1024 ddl`,
//! `exec dft 1024 ddl deadline_ms=50`, `exec dft ct(16, ct(16, 16))`,
//! `exec wht 256 sdl`, `stats`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use ddl_core::{faultpoint, EngineConfig, Wisdom};
use ddl_serve::{Service, ServiceConfig};

struct Args {
    listen: String,
    oneshot: bool,
    workers: usize,
    queue: usize,
    deadline: Option<Duration>,
    faults: Option<(u64, String)>,
    wisdom: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ddl-serve [--listen ADDR] [--oneshot] [--workers N] [--queue N] \
         [--deadline-ms K] [--faults SEED:SPECS] [--wisdom PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:4890".to_string(),
        oneshot: false,
        workers: 2,
        queue: 64,
        deadline: None,
        faults: None,
        wisdom: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("ddl-serve: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--oneshot" => args.oneshot = true,
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                args.deadline = Some(Duration::from_millis(ms));
            }
            "--faults" => {
                let spec = value("--faults");
                let (seed, rules) = spec.split_once(':').unwrap_or_else(|| {
                    eprintln!("ddl-serve: --faults wants SEED:SPECS");
                    usage()
                });
                let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
                args.faults = Some((seed, rules.to_string()));
            }
            "--wisdom" => args.wisdom = Some(value("--wisdom")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ddl-serve: unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn serve_stream(svc: &Service, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("ddl-serve: [{peer}] clone failed: {e}");
            return;
        }
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = svc.handle(&line);
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    // Fault injection stays armed for the process lifetime: leak the
    // guard so it is not disarmed on drop.
    if let Some((seed, rules)) = &args.faults {
        match faultpoint::parse_specs(rules) {
            Ok(specs) => {
                std::mem::forget(faultpoint::arm_specs(*seed, &specs));
                eprintln!("ddl-serve: faults armed (seed {seed}): {rules}");
            }
            Err(e) => {
                eprintln!("ddl-serve: bad --faults: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let svc = Service::start(ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline: args.deadline,
        engine: EngineConfig::default(),
    });

    if let Some(path) = &args.wisdom {
        match Wisdom::load(std::path::Path::new(path)) {
            Ok(wisdom) => {
                let cached = svc.engine().warm_from_wisdom(&wisdom);
                let quarantined = wisdom.quarantined().len();
                eprintln!(
                    "ddl-serve: warmed {cached} plan(s) from {path} \
                     ({quarantined} corrupt entr(ies) quarantined)"
                );
            }
            Err(e) => {
                // Degrade, don't die: a corrupt wisdom file costs the
                // warm cache, not the service.
                eprintln!("ddl-serve: wisdom load failed ({e}); starting cold");
            }
        }
    }

    if args.oneshot {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            println!("{}", svc.handle(&line));
        }
        svc.shutdown();
        return ExitCode::SUCCESS;
    }

    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ddl-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("ddl-serve: listening on {}", args.listen);
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let svc = svc.clone();
                // Connection threads are best-effort: a failed spawn
                // drops this connection but the listener keeps going.
                let spawned = std::thread::Builder::new()
                    .name("ddl-serve-conn".to_string())
                    .spawn(move || serve_stream(&svc, stream));
                if let Err(e) = spawned {
                    eprintln!("ddl-serve: connection thread spawn failed: {e}");
                }
            }
            Err(e) => eprintln!("ddl-serve: accept failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}
