//! Host introspection — the analogue of the paper's platform tables.

/// Cache description: `(level, size_bytes, line_bytes, associativity)`.
pub type CacheDesc = (u32, usize, usize, usize);

/// Reads the CPU model name from `/proc/cpuinfo` (Linux) or reports
/// "unknown".
pub fn cpu_model() -> String {
    if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, name)) = rest.split_once(':') {
                    return name.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

/// Enumerates data caches from sysfs; falls back to a typical geometry if
/// unavailable.
pub fn caches() -> Vec<CacheDesc> {
    let mut out = Vec::new();
    for index in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let read = |f: &str| std::fs::read_to_string(format!("{base}/{f}"));
        let Ok(cache_type) = read("type") else { break };
        if cache_type.trim() == "Instruction" {
            continue;
        }
        let level: u32 = read("level")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        let size = read("size")
            .ok()
            .and_then(|s| parse_size(s.trim()))
            .unwrap_or(0);
        let line: usize = read("coherency_line_size")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(64);
        let ways: usize = read("ways_of_associativity")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(8);
        out.push((level, size, line, ways));
    }
    if out.is_empty() {
        // fallback: a generic modern hierarchy
        out.push((1, 32 * 1024, 64, 8));
        out.push((2, 1024 * 1024, 64, 16));
    }
    out
}

/// Output of `rustc --version` (or "unknown"): part of the benchmark
/// environment header, since codegen changes shift every timing.
pub fn rustc_version() -> String {
    command_line("rustc", &["--version"])
}

/// Short git commit of the working tree (or "unknown"): lets a stored
/// benchmark report be traced back to the code it measured.
pub fn git_sha() -> String {
    command_line("git", &["rev-parse", "--short", "HEAD"])
}

/// First line of a command's stdout, or "unknown" when the command is
/// missing or fails (benchmarks must run on hosts without a toolchain).
fn command_line(program: &str, args: &[&str]) -> String {
    let out = match std::process::Command::new(program).args(args).output() {
        Ok(out) if out.status.success() => out,
        _ => return "unknown".to_string(),
    };
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .unwrap_or("unknown")
        .to_string()
}

/// Parses "48K" / "2048K" / "36M" sysfs cache size strings.
pub fn parse_size(s: &str) -> Option<usize> {
    if let Some(k) = s.strip_suffix('K') {
        k.parse::<usize>().ok().map(|v| v * 1024)
    } else if let Some(m) = s.strip_suffix('M') {
        m.parse::<usize>().ok().map(|v| v * 1024 * 1024)
    } else {
        s.parse().ok()
    }
}

/// The L2 capacity in points of `point_bytes` each, defaulting to 2 MiB
/// when undiscoverable. Used as the planner's DDL threshold on this host.
pub fn l2_points(point_bytes: usize) -> usize {
    let l2 = caches()
        .into_iter()
        .filter(|&(level, ..)| level == 2)
        .map(|(_, size, ..)| size)
        .max()
        .unwrap_or(2 * 1024 * 1024);
    l2 / point_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_size("12345"), Some(12345));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn caches_reports_something() {
        let c = caches();
        assert!(!c.is_empty());
        for (level, size, line, _) in c {
            assert!(level >= 1);
            assert!(size > 0);
            assert!(line.is_power_of_two());
        }
    }

    #[test]
    fn toolchain_probes_never_panic() {
        // Either a real answer or the documented fallback — never empty.
        assert!(!rustc_version().is_empty());
        assert!(!git_sha().is_empty());
        assert_eq!(command_line("ddl-no-such-binary", &[]), "unknown");
    }

    #[test]
    fn l2_points_is_positive() {
        assert!(l2_points(16) > 0);
        assert_eq!(l2_points(8), 2 * l2_points(16));
    }
}
