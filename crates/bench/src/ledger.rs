//! The longitudinal performance ledger: `results/trajectory.jsonl`.
//!
//! Single-run `BENCH_*.json` reports answer "how fast is this commit";
//! the ROADMAP's trajectory question — "has the repo gotten slower since
//! PR N" — needs runs to *accumulate*. This module implements that as an
//! append-only JSONL file: one [`LedgerEntry`] per suite run, each a
//! single compact line carrying the environment fingerprint (git sha,
//! rustc, cpu), the per-case medians, and a per-node attribution summary
//! for the pinned simulation sizes. CI appends an entry every run and
//! then validates the whole file with [`check_ledger`], which flags
//! consecutive same-environment entries whose medians regressed beyond
//! tolerance.
//!
//! JSONL (not a JSON array) is deliberate: appending is an O(1) write
//! that never rewrites history, concurrent readers see a prefix of valid
//! lines, and the file diffs line-per-run under version control.

use crate::suite::BenchReport;
use ddl_core::json::{self, Json};
use ddl_num::DdlError;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Schema identifier stamped into every ledger line.
pub const TRAJECTORY_SCHEMA: &str = "ddl-trajectory";
/// Current ledger schema version; readers refuse newer lines.
///
/// v2 (additive): attribution digests may carry `tlb_miss_rate` and
/// `case3_leaves_page` from hierarchy-attributed runs. v1 lines (no
/// such keys) still parse; both fields stay `None`.
pub const TRAJECTORY_VERSION: u64 = 2;

fn ledger_err(detail: String) -> DdlError {
    DdlError::Metrics { detail }
}

/// Attribution digest for one pinned simulated run: enough to watch the
/// Case III population drift across commits without storing whole trees.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributionSummary {
    /// `dft` | `wht`.
    pub transform: String,
    /// Transform size.
    pub n: usize,
    /// Planner strategy (`sdl` | `ddl`).
    pub strategy: String,
    /// Whole-run simulated miss rate.
    pub miss_rate: f64,
    /// Whole-run simulated misses.
    pub misses: u64,
    /// Whole-run accesses.
    pub accesses: u64,
    /// Classified leaves in the attributed tree.
    pub leaves: u64,
    /// Leaves empirically classified Case III.
    pub case3_leaves: u64,
    /// Whole-run d-TLB miss rate, when the run carried a hierarchy
    /// attribution (ledger v2; absent on v1 lines).
    pub tlb_miss_rate: Option<f64>,
    /// Leaves classified Case III at *page* geometry — the TLB viewed
    /// as a cache with page-sized lines (ledger v2; absent on v1).
    pub case3_leaves_page: Option<u64>,
}

/// One run of the suite, as a single ledger line.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerEntry {
    /// Run label (`--label`).
    pub label: String,
    /// Quick-mode flag; quick and full entries are never compared.
    pub quick: bool,
    /// Git commit of the working tree, or "unknown".
    pub git_sha: String,
    /// Toolchain fingerprint.
    pub rustc: String,
    /// CPU model; entries from different CPUs are never compared.
    pub cpu: String,
    /// Case id -> median nanoseconds, from the suite report.
    pub cases: BTreeMap<String, f64>,
    /// Attribution digests for the pinned simulation sizes.
    pub attribution: Vec<AttributionSummary>,
}

impl LedgerEntry {
    /// Builds an entry from a suite report plus attribution digests.
    pub fn from_report(report: &BenchReport, attribution: Vec<AttributionSummary>) -> LedgerEntry {
        LedgerEntry {
            label: report.label.clone(),
            quick: report.quick,
            git_sha: report.env.git_sha.clone(),
            rustc: report.env.rustc.clone(),
            cpu: report.env.cpu.clone(),
            cases: report
                .cases
                .iter()
                .map(|c| (c.id.clone(), c.median_ns))
                .collect(),
            attribution,
        }
    }

    /// Serializes as one compact JSON value (one JSONL line, sans
    /// newline).
    pub fn to_line(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Json::Str(TRAJECTORY_SCHEMA.into()));
        m.insert("version".into(), Json::Num(TRAJECTORY_VERSION as f64));
        m.insert("label".into(), Json::Str(self.label.clone()));
        m.insert("quick".into(), Json::Bool(self.quick));
        m.insert("git_sha".into(), Json::Str(self.git_sha.clone()));
        m.insert("rustc".into(), Json::Str(self.rustc.clone()));
        m.insert("cpu".into(), Json::Str(self.cpu.clone()));
        m.insert(
            "cases".into(),
            Json::Obj(
                self.cases
                    .iter()
                    .map(|(id, ns)| (id.clone(), Json::Num(*ns)))
                    .collect(),
            ),
        );
        m.insert(
            "attribution".into(),
            Json::Arr(
                self.attribution
                    .iter()
                    .map(|a| {
                        let mut am = BTreeMap::new();
                        am.insert("transform".into(), Json::Str(a.transform.clone()));
                        am.insert("n".into(), Json::Num(a.n as f64));
                        am.insert("strategy".into(), Json::Str(a.strategy.clone()));
                        am.insert("miss_rate".into(), Json::Num(a.miss_rate));
                        am.insert("misses".into(), Json::Num(a.misses as f64));
                        am.insert("accesses".into(), Json::Num(a.accesses as f64));
                        am.insert("leaves".into(), Json::Num(a.leaves as f64));
                        am.insert("case3_leaves".into(), Json::Num(a.case3_leaves as f64));
                        if let Some(t) = a.tlb_miss_rate {
                            am.insert("tlb_miss_rate".into(), Json::Num(t));
                        }
                        if let Some(c) = a.case3_leaves_page {
                            am.insert("case3_leaves_page".into(), Json::Num(c as f64));
                        }
                        Json::Obj(am)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m).compact()
    }

    /// Parses one ledger line.
    pub fn parse_line(text: &str) -> Result<LedgerEntry, DdlError> {
        let doc = json::parse(text).map_err(|e| ledger_err(format!("ledger line: {e}")))?;
        let m = doc
            .as_obj()
            .ok_or_else(|| ledger_err("ledger line: not an object".into()))?;
        match m.get("schema").and_then(Json::as_str) {
            Some(s) if s == TRAJECTORY_SCHEMA => {}
            Some(s) => {
                return Err(ledger_err(format!(
                    "ledger line: expected schema {TRAJECTORY_SCHEMA:?}, got {s:?}"
                )))
            }
            None => return Err(ledger_err("ledger line: missing schema".into())),
        }
        match m.get("version").and_then(Json::as_u64) {
            Some(v) if v <= TRAJECTORY_VERSION => {}
            Some(v) => {
                return Err(ledger_err(format!(
                    "ledger line: version {v} is newer than supported {TRAJECTORY_VERSION}"
                )))
            }
            None => return Err(ledger_err("ledger line: missing version".into())),
        }
        let str_field = |key: &str| -> Result<String, DdlError> {
            m.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ledger_err(format!("ledger line: missing or non-string {key}")))
        };
        let quick = match m.get("quick") {
            Some(Json::Bool(b)) => *b,
            _ => {
                return Err(ledger_err(
                    "ledger line: missing or non-boolean quick".into(),
                ))
            }
        };
        let cases = match m.get("cases") {
            Some(Json::Obj(obj)) => {
                let mut cases = BTreeMap::new();
                for (id, v) in obj {
                    let ns = v
                        .as_f64()
                        .filter(|x| x.is_finite() && *x >= 0.0)
                        .ok_or_else(|| ledger_err(format!("ledger line: case {id}: bad median")))?;
                    cases.insert(id.clone(), ns);
                }
                cases
            }
            _ => return Err(ledger_err("ledger line: missing cases object".into())),
        };
        let mut attribution = Vec::new();
        match m.get("attribution") {
            Some(Json::Arr(items)) => {
                for (i, item) in items.iter().enumerate() {
                    let am = item.as_obj().ok_or_else(|| {
                        ledger_err(format!("ledger line: attribution[{i}]: not an object"))
                    })?;
                    let path = format!("attribution[{i}]");
                    let s = |key: &str| -> Result<String, DdlError> {
                        am.get(key)
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| ledger_err(format!("ledger line: {path}.{key}: bad")))
                    };
                    let u = |key: &str| -> Result<u64, DdlError> {
                        am.get(key)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| ledger_err(format!("ledger line: {path}.{key}: bad")))
                    };
                    attribution.push(AttributionSummary {
                        transform: s("transform")?,
                        n: u("n")? as usize,
                        strategy: s("strategy")?,
                        miss_rate: am
                            .get("miss_rate")
                            .and_then(Json::as_f64)
                            .filter(|x| x.is_finite() && *x >= 0.0)
                            .ok_or_else(|| {
                                ledger_err(format!("ledger line: {path}.miss_rate: bad"))
                            })?,
                        misses: u("misses")?,
                        accesses: u("accesses")?,
                        leaves: u("leaves")?,
                        case3_leaves: u("case3_leaves")?,
                        // v2 additive fields: absent on v1 lines, and a
                        // present-but-bad value is an error, not a None.
                        tlb_miss_rate: match am.get("tlb_miss_rate") {
                            None => None,
                            Some(v) => Some(
                                v.as_f64()
                                    .filter(|x| x.is_finite() && *x >= 0.0)
                                    .ok_or_else(|| {
                                        ledger_err(format!(
                                            "ledger line: {path}.tlb_miss_rate: bad"
                                        ))
                                    })?,
                            ),
                        },
                        case3_leaves_page: match am.get("case3_leaves_page") {
                            None => None,
                            Some(v) => Some(v.as_u64().ok_or_else(|| {
                                ledger_err(format!("ledger line: {path}.case3_leaves_page: bad"))
                            })?),
                        },
                    });
                }
            }
            Some(_) => return Err(ledger_err("ledger line: attribution: not an array".into())),
            None => {}
        }
        Ok(LedgerEntry {
            label: str_field("label")?,
            quick,
            git_sha: str_field("git_sha")?,
            rustc: str_field("rustc")?,
            cpu: str_field("cpu")?,
            cases,
            attribution,
        })
    }
}

/// Appends one entry to the ledger at `path` (creating parent
/// directories and the file as needed). The write is a single
/// line-plus-newline append: existing entries are never rewritten.
pub fn append_entry(path: &Path, entry: &LedgerEntry) -> Result<(), DdlError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ledger_err(format!("creating {}: {e}", parent.display())))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| ledger_err(format!("opening {}: {e}", path.display())))?;
    writeln!(file, "{}", entry.to_line())
        .map_err(|e| ledger_err(format!("appending to {}: {e}", path.display())))
}

/// Reads every entry of a ledger file. Blank lines are skipped; a
/// malformed line fails with its 1-based line number (an append-only
/// ledger that went bad must be noticed, not truncated silently).
pub fn read_ledger(path: &Path) -> Result<Vec<LedgerEntry>, DdlError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ledger_err(format!("reading {}: {e}", path.display())))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries.push(LedgerEntry::parse_line(line).map_err(|e| {
            ledger_err(format!(
                "{} line {}: {}",
                path.display(),
                i + 1,
                match e {
                    DdlError::Metrics { detail } => detail,
                    other => other.to_string(),
                }
            ))
        })?);
    }
    Ok(entries)
}

/// One case that regressed between two consecutive comparable entries.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerRegression {
    /// Git sha (or label) of the earlier entry.
    pub from: String,
    /// Git sha (or label) of the later entry.
    pub to: String,
    /// Case id.
    pub id: String,
    /// Earlier median nanoseconds.
    pub prev_ns: f64,
    /// Later median nanoseconds.
    pub cur_ns: f64,
    /// `cur / prev`.
    pub ratio: f64,
    /// Host-drift factor of the pair (median ratio across shared
    /// cases, clamped to >= 1) that was divided out before flagging.
    pub drift: f64,
}

/// Outcome of [`check_ledger`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LedgerCheck {
    /// Entries read.
    pub entries: usize,
    /// Consecutive pairs actually compared (same quick mode and CPU).
    pub compared: usize,
    /// Consecutive pairs skipped for environment/mode mismatch.
    pub skipped: usize,
    /// Regressions beyond tolerance across compared pairs.
    pub regressions: Vec<LedgerRegression>,
}

impl LedgerCheck {
    /// True when no compared pair regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Minimum shared cases a pair needs before the median ratio is a
/// trustworthy host-drift estimate; below this, drift is assumed 1.
const DRIFT_MIN_CASES: usize = 5;

fn case_ratio(prev_ns: f64, cur_ns: f64) -> f64 {
    if prev_ns > 0.0 {
        cur_ns / prev_ns
    } else if cur_ns > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// Host-drift factor for one compared pair: the median `cur/prev`
/// ratio across shared cases. Two ledger entries can carry the same
/// CPU model string yet come from machines (or machine states —
/// shared tenancy, thermal state) with very different effective
/// throughput; a code regression moves *one* case, a slower host
/// moves *all* of them, and the median separates the two. Clamped to
/// >= 1 so a faster host never hides a case that failed to keep up.
fn drift_factor(prev: &LedgerEntry, cur: &LedgerEntry) -> f64 {
    let mut ratios: Vec<f64> = prev
        .cases
        .iter()
        .filter_map(|(id, &p)| cur.cases.get(id).map(|&c| case_ratio(p, c)))
        .filter(|r| r.is_finite())
        .collect();
    if ratios.len() < DRIFT_MIN_CASES {
        return 1.0;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let mid = ratios.len() / 2;
    let median = if ratios.len().is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    median.max(1.0)
}

/// Walks consecutive entry pairs and flags any case whose median grew
/// beyond `prev * drift * (1 + tolerance)`, where `drift` is the
/// pair's [host-drift factor](drift_factor). Pairs with mismatched
/// quick mode or CPU are skipped (counted, not compared):
/// cross-environment deltas are not regressions.
pub fn check_ledger(entries: &[LedgerEntry], tolerance: f64) -> LedgerCheck {
    let mut out = LedgerCheck {
        entries: entries.len(),
        ..LedgerCheck::default()
    };
    for pair in entries.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        if prev.quick != cur.quick || prev.cpu != cur.cpu {
            out.skipped += 1;
            continue;
        }
        out.compared += 1;
        let drift = drift_factor(prev, cur);
        for (id, &prev_ns) in &prev.cases {
            let Some(&cur_ns) = cur.cases.get(id) else {
                continue;
            };
            let ratio = case_ratio(prev_ns, cur_ns);
            if ratio / drift > 1.0 + tolerance {
                out.regressions.push(LedgerRegression {
                    from: ref_name(prev),
                    to: ref_name(cur),
                    id: id.clone(),
                    prev_ns,
                    cur_ns,
                    ratio,
                    drift,
                });
            }
        }
    }
    out
}

fn ref_name(entry: &LedgerEntry) -> String {
    if entry.git_sha != "unknown" && !entry.git_sha.is_empty() {
        entry.git_sha.clone()
    } else {
        entry.label.clone()
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Renders the ledger as a human-readable trend report: a run legend,
/// then one markdown table row per case with one column per run and a
/// `last/first` trend ratio. Runs whose environment differs from the
/// first run (quick mode or CPU) mark their trend with `*`, since the
/// ratio then mixes code and host effects.
pub fn render_report(entries: &[LedgerEntry]) -> String {
    let mut out = String::from("# Performance trajectory\n\n");
    if entries.is_empty() {
        out.push_str("(ledger is empty)\n");
        return out;
    }
    let mut ids: Vec<&String> = entries
        .iter()
        .flat_map(|e| e.cases.keys())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    ids.sort();
    out.push_str(&format!(
        "{} run(s), {} case(s).\n\n| run | ref | mode | cpu |\n|---|---|---|---|\n",
        entries.len(),
        ids.len()
    ));
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "| r{} | {} | {} | {} |\n",
            i + 1,
            ref_name(e),
            if e.quick { "quick" } else { "full" },
            e.cpu
        ));
    }
    out.push_str("\n| case |");
    for i in 1..=entries.len() {
        out.push_str(&format!(" r{i} |"));
    }
    out.push_str(" last/first |\n|---|");
    out.push_str(&"---|".repeat(entries.len() + 1));
    out.push('\n');
    let mut starred = false;
    for id in ids {
        out.push_str(&format!("| {id} |"));
        let present: Vec<(usize, f64)> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.cases.get(id).map(|&ns| (i, ns)))
            .collect();
        for e in entries {
            match e.cases.get(id) {
                Some(&ns) => out.push_str(&format!(" {} |", fmt_ns(ns))),
                None => out.push_str(" — |"),
            }
        }
        match (present.first(), present.last()) {
            (Some(&(fi, first)), Some(&(li, last))) if fi != li && first > 0.0 => {
                let comparable =
                    entries[fi].quick == entries[li].quick && entries[fi].cpu == entries[li].cpu;
                starred |= !comparable;
                out.push_str(&format!(
                    " {:.2}x{} |\n",
                    last / first,
                    if comparable { "" } else { "*" }
                ));
            }
            _ => out.push_str(" — |\n"),
        }
    }
    if starred {
        out.push_str(
            "\n\\* endpoints ran under different environments (quick mode \
             or CPU differ); the ratio mixes code and host effects.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, quick: bool, cpu: &str, medians: &[(&str, f64)]) -> LedgerEntry {
        LedgerEntry {
            label: label.into(),
            quick,
            git_sha: format!("sha-{label}"),
            rustc: "rustc test".into(),
            cpu: cpu.into(),
            cases: medians
                .iter()
                .map(|&(id, ns)| (id.to_string(), ns))
                .collect(),
            attribution: vec![AttributionSummary {
                transform: "dft".into(),
                n: 1024,
                strategy: "ddl".into(),
                miss_rate: 0.05,
                misses: 100,
                accesses: 2000,
                leaves: 3,
                case3_leaves: 0,
                tlb_miss_rate: Some(0.002),
                case3_leaves_page: Some(0),
            }],
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ddl-ledger-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn entry_round_trips_as_one_line() {
        let e = entry("a", true, "cpu0", &[("dft-ddl-n16", 123.5)]);
        let line = e.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(LedgerEntry::parse_line(&line).unwrap(), e);
    }

    #[test]
    fn v1_lines_without_hierarchy_fields_still_parse() {
        // A pre-v2 line (version 1, no tlb/page keys) must keep
        // parsing, with the additive fields absent.
        let mut e = entry("a", true, "cpu0", &[("dft-ddl-n16", 123.5)]);
        e.attribution[0].tlb_miss_rate = None;
        e.attribution[0].case3_leaves_page = None;
        let line = e.to_line().replace("\"version\":2", "\"version\":1");
        assert_ne!(line, e.to_line(), "version rewrite did not apply");
        let back = LedgerEntry::parse_line(&line).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.attribution[0].tlb_miss_rate, None);
        assert_eq!(back.attribution[0].case3_leaves_page, None);
    }

    #[test]
    fn newer_versions_are_refused() {
        let e = entry("a", true, "cpu0", &[("dft-ddl-n16", 123.5)]);
        let line = e.to_line().replace("\"version\":2", "\"version\":3");
        assert_ne!(line, e.to_line(), "version rewrite did not apply");
        let err = LedgerEntry::parse_line(&line).unwrap_err().to_string();
        assert!(err.contains("newer than supported"), "wrong error: {err}");
    }

    #[test]
    fn bad_hierarchy_fields_are_errors_not_none() {
        let e = entry("a", true, "cpu0", &[("dft-ddl-n16", 123.5)]);
        let line = e
            .to_line()
            .replace("\"tlb_miss_rate\":0.002", "\"tlb_miss_rate\":-1");
        assert_ne!(line, e.to_line(), "garble did not apply");
        let err = LedgerEntry::parse_line(&line).unwrap_err().to_string();
        assert!(err.contains("tlb_miss_rate"), "wrong error: {err}");
    }

    #[test]
    fn append_then_read_preserves_order() {
        let path = temp_path("order");
        let _ = std::fs::remove_file(&path);
        let a = entry("a", true, "cpu0", &[("c", 100.0)]);
        let b = entry("b", true, "cpu0", &[("c", 110.0)]);
        append_entry(&path, &a).unwrap();
        append_entry(&path, &b).unwrap();
        let back = read_ledger(&path).unwrap();
        assert_eq!(back, vec![a, b]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let path = temp_path("bad");
        std::fs::write(
            &path,
            format!("{}\nnot json\n", entry("a", true, "c", &[]).to_line()),
        )
        .unwrap();
        let err = read_ledger(&path).unwrap_err().to_string();
        assert!(err.contains("line 2"), "no line number in: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_regression_fails_the_check() {
        let entries = vec![
            entry("a", true, "cpu0", &[("dft", 100.0), ("wht", 50.0)]),
            entry("b", true, "cpu0", &[("dft", 1000.0), ("wht", 55.0)]),
        ];
        let check = check_ledger(&entries, 0.5);
        assert_eq!(check.compared, 1);
        assert!(!check.passed());
        assert_eq!(check.regressions.len(), 1);
        let r = &check.regressions[0];
        assert_eq!(r.id, "dft");
        assert!((r.ratio - 10.0).abs() < 1e-12);
        assert_eq!(r.from, "sha-a");
        assert_eq!(r.to, "sha-b");
    }

    #[test]
    fn stable_medians_pass() {
        let entries = vec![
            entry("a", true, "cpu0", &[("dft", 100.0)]),
            entry("b", true, "cpu0", &[("dft", 120.0)]),
            entry("c", true, "cpu0", &[("dft", 95.0)]),
        ];
        let check = check_ledger(&entries, 0.5);
        assert!(check.passed());
        assert_eq!(check.compared, 2);
    }

    #[test]
    fn mismatched_mode_or_cpu_is_skipped_not_compared() {
        let entries = vec![
            entry("a", true, "cpu0", &[("dft", 100.0)]),
            entry("b", false, "cpu0", &[("dft", 10000.0)]),
            entry("c", false, "cpu1", &[("dft", 100000.0)]),
        ];
        let check = check_ledger(&entries, 0.5);
        assert!(check.passed(), "cross-mode/cpu deltas are not regressions");
        assert_eq!(check.compared, 0);
        assert_eq!(check.skipped, 2);
    }

    #[test]
    fn uniform_host_drift_is_not_a_regression() {
        // Every case ~1.8x slower (same CPU model string, slower
        // machine state): the median ratio absorbs it.
        let ids = ["a", "b", "c", "d", "e", "f"];
        let prev: Vec<(&str, f64)> = ids.iter().map(|&id| (id, 1000.0)).collect();
        let cur: Vec<(&str, f64)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, 1700.0 + 50.0 * i as f64))
            .collect();
        let entries = vec![
            entry("a", true, "cpu0", &prev),
            entry("b", true, "cpu0", &cur),
        ];
        let check = check_ledger(&entries, 0.5);
        assert!(check.passed(), "{:?}", check.regressions);
        assert_eq!(check.compared, 1);
    }

    #[test]
    fn single_case_regression_survives_drift_normalization() {
        // Host 1.2x slower overall, but one case blew up 5x: the
        // drift factor must not launder it.
        let prev = vec![
            ("a", 1000.0),
            ("b", 1000.0),
            ("c", 1000.0),
            ("d", 1000.0),
            ("e", 1000.0),
            ("bad", 1000.0),
        ];
        let cur = vec![
            ("a", 1200.0),
            ("b", 1150.0),
            ("c", 1250.0),
            ("d", 1200.0),
            ("e", 1180.0),
            ("bad", 5000.0),
        ];
        let entries = vec![
            entry("a", true, "cpu0", &prev),
            entry("b", true, "cpu0", &cur),
        ];
        let check = check_ledger(&entries, 0.5);
        assert_eq!(check.regressions.len(), 1, "{:?}", check.regressions);
        let r = &check.regressions[0];
        assert_eq!(r.id, "bad");
        assert!((r.ratio - 5.0).abs() < 1e-12);
        assert!(r.drift > 1.1 && r.drift < 1.3, "drift {}", r.drift);
    }

    #[test]
    fn faster_host_never_hides_a_lagging_case() {
        // Everything got 2x faster except one case that got 2x slower;
        // drift clamps at 1 so the laggard is still flagged.
        let prev = vec![
            ("a", 1000.0),
            ("b", 1000.0),
            ("c", 1000.0),
            ("d", 1000.0),
            ("e", 1000.0),
            ("bad", 1000.0),
        ];
        let cur = vec![
            ("a", 500.0),
            ("b", 500.0),
            ("c", 500.0),
            ("d", 500.0),
            ("e", 500.0),
            ("bad", 2000.0),
        ];
        let entries = vec![
            entry("a", true, "cpu0", &prev),
            entry("b", true, "cpu0", &cur),
        ];
        let check = check_ledger(&entries, 0.5);
        assert_eq!(check.regressions.len(), 1);
        assert_eq!(check.regressions[0].id, "bad");
        assert_eq!(check.regressions[0].drift, 1.0);
    }

    #[test]
    fn rendered_report_tracks_the_committed_fixture() {
        let fixture =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/trajectory_3.jsonl");
        let entries = read_ledger(&fixture).unwrap();
        assert_eq!(entries.len(), 3, "fixture is three runs");
        let report = render_report(&entries);
        assert!(report.starts_with("# Performance trajectory"));
        assert!(report.contains("3 run(s), 3 case(s)."));
        // Legend rows carry the git refs of all three runs.
        for sha in ["aaaa111", "bbbb222", "cccc333"] {
            assert!(report.contains(sha), "missing {sha} in:\n{report}");
        }
        // The improving case trends below 1x, the regressing one above.
        assert!(
            report.contains("| dft-ddl-n1024 | 820.0 ns | 790.0 ns | 780.0 ns | 0.95x |"),
            "unexpected trend row in:\n{report}"
        );
        assert!(
            report.contains("| wht-ddl-n256 | 310.0 ns | 305.0 ns | 1.40 us | 4.52x |"),
            "unexpected trend row in:\n{report}"
        );
        // Same environment throughout: no mixed-environment footnote.
        assert!(!report.contains('*'), "unexpected footnote in:\n{report}");
    }

    #[test]
    fn rendered_report_marks_cross_environment_trends() {
        let entries = vec![
            entry("a", true, "cpu0", &[("dft", 100.0)]),
            entry("b", false, "cpu1", &[("dft", 200.0), ("solo", 5.0)]),
        ];
        let report = render_report(&entries);
        assert!(report.contains("| dft | 100.0 ns | 200.0 ns | 2.00x* |"));
        // A case present in only one run has no trend, and a missing
        // cell renders as a dash.
        assert!(report.contains("| solo | — | 5.0 ns | — |"));
        assert!(report.contains("different environments"));
        assert!(render_report(&[]).contains("(ledger is empty)"));
    }

    #[test]
    fn single_entry_trivially_passes() {
        let check = check_ledger(&[entry("a", true, "cpu0", &[("dft", 1.0)])], 0.5);
        assert!(check.passed());
        assert_eq!(check.entries, 1);
        assert_eq!(check.compared, 0);
    }
}
