//! The pinned benchmark suite behind the `bench_suite` binary: a fixed
//! set of transform cases measured with noise controls (warm-up run,
//! median-of-k repeats), stamped with an environment header, and
//! serialized under the versioned `ddl-bench` schema so successive runs
//! form a comparable performance trajectory.
//!
//! A report can be compared against a stored baseline with [`compare`]:
//! per-case median ratios beyond the noise tolerance are flagged as
//! regressions (or improvements), and cases present on only one side are
//! reported rather than silently dropped.

use crate::host;
use ddl_core::json::{self, Json};
use ddl_core::planner::{try_plan_dft, try_plan_wht, PlannerConfig, Strategy};
use ddl_core::wisdom::Wisdom;
use ddl_core::{try_execute_dft_batch, BackendKind, DftPlan, WhtPlan};
use ddl_num::{Complex64, DdlError, Direction};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Schema identifier stamped into every benchmark report.
pub const BENCH_SCHEMA: &str = "ddl-bench";
/// Current schema version; bump on breaking layout changes.
pub const BENCH_VERSION: u64 = 1;

/// Transform size of the batch-engine and wisdom-hit cases.
const SERVICE_CASE_N: usize = 1 << 12;
/// Signals per batch in the batch-engine case.
const BATCH_SIGNALS: usize = 8;
/// Worker threads in the batch-engine case.
const BATCH_THREADS: usize = 2;

/// Environment header identifying the host a report was measured on —
/// the analogue of the paper's platform tables, so trajectories are only
/// compared within a matching environment.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEnv {
    /// CPU model string from `/proc/cpuinfo` (or "unknown").
    pub cpu: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// `rustc --version` of the toolchain that built the suite.
    pub rustc: String,
    /// Git commit the working tree was at, or "unknown".
    pub git_sha: String,
    /// Data-cache geometry: `(level, size_bytes, line_bytes, ways)`.
    pub caches: Vec<host::CacheDesc>,
}

/// Collects the environment header from the running host.
pub fn collect_env() -> BenchEnv {
    BenchEnv {
        cpu: host::cpu_model(),
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        rustc: host::rustc_version(),
        git_sha: host::git_sha(),
        caches: host::caches(),
    }
}

/// One measured case: `repeats` timed executions (after one warm-up),
/// summarized as median / min / max nanoseconds per execution.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCase {
    /// Stable identifier baselines are matched on, e.g. `dft-ddl-n4096`
    /// (scalar) or `dft-ddl-n4096-simd` (non-default backend).
    pub id: String,
    /// `dft` | `wht` | `dft-batch` | `wisdom`.
    pub transform: String,
    /// `sdl` | `ddl`.
    pub strategy: String,
    /// Execution backend the case ran on: `scalar` | `interp` | `simd`.
    /// Additive in schema version 1; absent in older reports (= scalar).
    pub backend: String,
    /// Transform size in points.
    pub n: usize,
    /// Measured repetitions behind the summary statistics.
    pub repeats: u32,
    /// Median wall-clock nanoseconds over the repeats.
    pub median_ns: f64,
    /// Fastest repeat.
    pub min_ns: f64,
    /// Slowest repeat.
    pub max_ns: f64,
}

/// A full suite run: label, mode, environment header and measured cases.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Free-form run label (`--label`), e.g. a branch name or date.
    pub label: String,
    /// Whether this was a `--quick` run (smaller sizes, fewer repeats);
    /// quick and full reports are not comparable.
    pub quick: bool,
    /// Host environment the numbers were measured on.
    pub env: BenchEnv,
    /// Measured cases in suite order.
    pub cases: Vec<BenchCase>,
}

/// Suite parameters.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Run label recorded in the report.
    pub label: String,
    /// Quick mode: CI-sized subset of sizes and repeats.
    pub quick: bool,
    /// Timed repetitions per case (median-of-k noise control).
    pub repeats: u32,
}

impl SuiteConfig {
    /// Config with the default repeat count for the mode.
    pub fn new(label: &str, quick: bool) -> Self {
        SuiteConfig {
            label: label.to_string(),
            quick,
            repeats: default_repeats(quick),
        }
    }
}

/// Default median-of-k repeat count: 3 in quick mode, 7 in full mode.
pub fn default_repeats(quick: bool) -> u32 {
    if quick {
        3
    } else {
        7
    }
}

/// The pinned size sweep (log2): `4..=20` stepping by 2 in full mode, a
/// three-point subset in quick mode. Both cover the paper's in-cache /
/// out-of-cache transition on typical hosts.
pub fn suite_log_sizes(quick: bool) -> Vec<u32> {
    if quick {
        vec![4, 8, 12]
    } else {
        (4..=20).step_by(2).collect()
    }
}

/// Largest size the interpreter backend is benchmarked at in full mode:
/// evaluating the expression network is orders slower than compiled
/// leaves, so the big out-of-cache sizes would dominate suite wall time
/// without adding information.
const INTERP_MAX_N: usize = 1 << 12;

/// Runs the pinned suite: every `(transform, strategy, size)` triple
/// from [`suite_log_sizes`] on the scalar backend, the DDL DFT column
/// repeated on the `simd` and `interp` backends (interpreter capped at
/// [`INTERP_MAX_N`]), plus one batch-engine case and one wisdom-hit
/// case. Plans use the analytical model so the *measured* quantity is
/// execution, not planner noise.
pub fn run_suite(cfg: &SuiteConfig) -> Result<BenchReport, DdlError> {
    let mut cases = Vec::new();
    for &log in &suite_log_sizes(cfg.quick) {
        let n = 1usize << log;
        for strategy in [Strategy::Sdl, Strategy::Ddl] {
            cases.push(dft_case(n, strategy, BackendKind::Scalar, cfg.repeats)?);
            cases.push(wht_case(n, strategy, cfg.repeats)?);
        }
        cases.push(dft_case(n, Strategy::Ddl, BackendKind::Simd, cfg.repeats)?);
        if n <= INTERP_MAX_N {
            cases.push(dft_case(
                n,
                Strategy::Ddl,
                BackendKind::Interp,
                cfg.repeats,
            )?);
        }
    }
    cases.push(batch_case(cfg.repeats)?);
    cases.push(wisdom_case(cfg.repeats)?);
    Ok(BenchReport {
        label: cfg.label.clone(),
        quick: cfg.quick,
        env: collect_env(),
        cases,
    })
}

fn planner_cfg(strategy: Strategy) -> PlannerConfig {
    match strategy {
        Strategy::Sdl => PlannerConfig::sdl_analytical(),
        Strategy::Ddl => PlannerConfig::ddl_analytical(),
    }
}

/// Deterministic non-constant input so executions touch real data.
fn dft_input(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i % 7) as f64, (i % 5) as f64 * -0.5))
        .collect()
}

fn wht_input(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i % 17) as f64 - 8.0).collect()
}

/// One warm-up call, then `repeats` timed calls; returns
/// `(median, min, max)` nanoseconds.
fn time_median_ns<F>(repeats: u32, mut f: F) -> Result<(f64, f64, f64), DdlError>
where
    F: FnMut() -> Result<(), DdlError>,
{
    f()?; // warm-up: page in buffers, twiddles and code
    let reps = repeats.max(1);
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = Instant::now();
        f()?;
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    Ok(summary(&mut samples))
}

/// Sorts in place and returns `(median, min, max)`; zeros when empty.
fn summary(samples: &mut [f64]) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let min = samples.first().copied().unwrap_or(0.0);
    let max = samples.last().copied().unwrap_or(0.0);
    let median = match samples.len() {
        0 => 0.0,
        len if len % 2 == 1 => samples[len / 2],
        len => (samples[len / 2 - 1] + samples[len / 2]) / 2.0,
    };
    (median, min, max)
}

/// Measures one DFT case on an explicit execution backend. Scalar keeps
/// the historical un-suffixed case id so stored baselines keep matching;
/// other backends suffix the id with their label.
pub fn dft_case(
    n: usize,
    strategy: Strategy,
    backend: BackendKind,
    repeats: u32,
) -> Result<BenchCase, DdlError> {
    let outcome = try_plan_dft(n, &planner_cfg(strategy))?;
    let plan = DftPlan::with_backend(outcome.tree, Direction::Forward, backend)?;
    let input = dft_input(n);
    let mut output = vec![Complex64::ZERO; n];
    let (median_ns, min_ns, max_ns) =
        time_median_ns(repeats, || plan.try_execute(&input, &mut output))?;
    let id = match backend {
        BackendKind::Scalar => format!("dft-{}-n{n}", strategy.label()),
        other => format!("dft-{}-n{n}-{}", strategy.label(), other.label()),
    };
    Ok(BenchCase {
        id,
        transform: "dft".into(),
        strategy: strategy.label().into(),
        backend: backend.label().into(),
        n,
        repeats,
        median_ns,
        min_ns,
        max_ns,
    })
}

fn wht_case(n: usize, strategy: Strategy, repeats: u32) -> Result<BenchCase, DdlError> {
    let outcome = try_plan_wht(n, &planner_cfg(strategy))?;
    let plan = WhtPlan::new(outcome.tree)?;
    let base = wht_input(n);
    let mut data = base.clone();
    let (median_ns, min_ns, max_ns) = time_median_ns(repeats, || {
        // In-place transform: restore the input so every repeat runs the
        // same numbers (the copy is timed, uniformly across repeats).
        data.copy_from_slice(&base);
        plan.try_execute(&mut data)
    })?;
    Ok(BenchCase {
        id: format!("wht-{}-n{n}", strategy.label()),
        transform: "wht".into(),
        strategy: strategy.label().into(),
        backend: BackendKind::Scalar.label().into(),
        n,
        repeats,
        median_ns,
        min_ns,
        max_ns,
    })
}

/// Batch engine: [`BATCH_SIGNALS`] independent DFTs over
/// [`BATCH_THREADS`] workers — covers queueing plus panic containment
/// overhead, the extension path the per-plan cases miss.
fn batch_case(repeats: u32) -> Result<BenchCase, DdlError> {
    let n = SERVICE_CASE_N;
    let outcome = try_plan_dft(n, &planner_cfg(Strategy::Ddl))?;
    let plan = DftPlan::new(outcome.tree, Direction::Forward)?;
    let inputs = dft_input(n * BATCH_SIGNALS);
    let mut outputs = vec![Complex64::ZERO; n * BATCH_SIGNALS];
    let (median_ns, min_ns, max_ns) = time_median_ns(repeats, || {
        try_execute_dft_batch(&plan, &inputs, &mut outputs, BATCH_THREADS).map(|_| ())
    })?;
    Ok(BenchCase {
        id: format!("dft-batch-n{n}-s{BATCH_SIGNALS}-t{BATCH_THREADS}"),
        transform: "dft-batch".into(),
        strategy: Strategy::Ddl.label().into(),
        backend: BackendKind::Scalar.label().into(),
        n,
        repeats,
        median_ns,
        min_ns,
        max_ns,
    })
}

/// Wisdom hit path: recall of an already-planned tree, the latency every
/// warm-start consumer pays instead of a search.
fn wisdom_case(repeats: u32) -> Result<BenchCase, DdlError> {
    let n = SERVICE_CASE_N;
    let cfg = planner_cfg(Strategy::Ddl);
    let mut wisdom = Wisdom::default();
    wisdom.get_or_plan_dft(n, &cfg)?; // populate: miss + plan
    let (median_ns, min_ns, max_ns) =
        time_median_ns(repeats, || wisdom.get_or_plan_dft(n, &cfg).map(|_| ()))?;
    Ok(BenchCase {
        id: format!("wisdom-hit-dft-n{n}"),
        transform: "wisdom".into(),
        strategy: Strategy::Ddl.label().into(),
        backend: BackendKind::Scalar.label().into(),
        n,
        repeats,
        median_ns,
        min_ns,
        max_ns,
    })
}

// --- serialization ---------------------------------------------------

fn bench_err(detail: String) -> DdlError {
    DdlError::Metrics { detail }
}

impl BenchEnv {
    fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("cpu".into(), Json::Str(self.cpu.clone()));
        m.insert("os".into(), Json::Str(self.os.clone()));
        m.insert("arch".into(), Json::Str(self.arch.clone()));
        m.insert("rustc".into(), Json::Str(self.rustc.clone()));
        m.insert("git_sha".into(), Json::Str(self.git_sha.clone()));
        m.insert(
            "caches".into(),
            Json::Arr(
                self.caches
                    .iter()
                    .map(|&(level, size, line, ways)| {
                        let mut c = BTreeMap::new();
                        c.insert("level".into(), Json::Num(level as f64));
                        c.insert("size_bytes".into(), Json::Num(size as f64));
                        c.insert("line_bytes".into(), Json::Num(line as f64));
                        c.insert("ways".into(), Json::Num(ways as f64));
                        Json::Obj(c)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m)
    }

    fn from_json(v: &Json, path: &str) -> Result<BenchEnv, DdlError> {
        let m = obj(v, path)?;
        let mut caches = Vec::new();
        if let Some(arr) = m.get("caches") {
            let items = match arr {
                Json::Arr(items) => items,
                _ => return Err(bench_err(format!("{path}.caches: not an array"))),
            };
            for (i, c) in items.iter().enumerate() {
                let cpath = format!("{path}.caches[{i}]");
                let cm = obj(c, &cpath)?;
                caches.push((
                    get_u64(cm, &cpath, "level")? as u32,
                    get_u64(cm, &cpath, "size_bytes")? as usize,
                    get_u64(cm, &cpath, "line_bytes")? as usize,
                    get_u64(cm, &cpath, "ways")? as usize,
                ));
            }
        }
        Ok(BenchEnv {
            cpu: get_str(m, path, "cpu")?,
            os: get_str(m, path, "os")?,
            arch: get_str(m, path, "arch")?,
            rustc: get_str(m, path, "rustc")?,
            git_sha: get_str(m, path, "git_sha")?,
            caches,
        })
    }
}

impl BenchCase {
    fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("id".into(), Json::Str(self.id.clone()));
        m.insert("transform".into(), Json::Str(self.transform.clone()));
        m.insert("strategy".into(), Json::Str(self.strategy.clone()));
        m.insert("backend".into(), Json::Str(self.backend.clone()));
        m.insert("n".into(), Json::Num(self.n as f64));
        m.insert("repeats".into(), Json::Num(self.repeats as f64));
        m.insert("median_ns".into(), Json::Num(self.median_ns));
        m.insert("min_ns".into(), Json::Num(self.min_ns));
        m.insert("max_ns".into(), Json::Num(self.max_ns));
        Json::Obj(m)
    }

    fn from_json(v: &Json, path: &str) -> Result<BenchCase, DdlError> {
        let m = obj(v, path)?;
        // `backend` is additive (execution backends landed after v1
        // reports existed): absent means the only backend of that era.
        let backend = m
            .get("backend")
            .and_then(Json::as_str)
            .unwrap_or("scalar")
            .to_string();
        if !matches!(backend.as_str(), "scalar" | "interp" | "simd") {
            return Err(bench_err(format!(
                "{path}.backend: unknown backend \"{backend}\" (want scalar|interp|simd)"
            )));
        }
        let case = BenchCase {
            id: get_str(m, path, "id")?,
            transform: get_str(m, path, "transform")?,
            strategy: get_str(m, path, "strategy")?,
            backend,
            n: get_u64(m, path, "n")? as usize,
            repeats: get_u64(m, path, "repeats")? as u32,
            median_ns: get_f64(m, path, "median_ns")?,
            min_ns: get_f64(m, path, "min_ns")?,
            max_ns: get_f64(m, path, "max_ns")?,
        };
        for (key, val) in [
            ("median_ns", case.median_ns),
            ("min_ns", case.min_ns),
            ("max_ns", case.max_ns),
        ] {
            if !val.is_finite() || val < 0.0 {
                return Err(bench_err(format!(
                    "{path}.{key}: not a finite non-negative number"
                )));
            }
        }
        Ok(case)
    }
}

impl BenchReport {
    /// Serializes under the `ddl-bench` schema.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert("schema".into(), Json::Str(BENCH_SCHEMA.into()));
        top.insert("version".into(), Json::Num(BENCH_VERSION as f64));
        top.insert("label".into(), Json::Str(self.label.clone()));
        top.insert("quick".into(), Json::Bool(self.quick));
        top.insert("env".into(), self.env.to_json());
        top.insert(
            "cases".into(),
            Json::Arr(self.cases.iter().map(BenchCase::to_json).collect()),
        );
        Json::Obj(top)
    }

    /// Pretty-printed JSON text of [`BenchReport::to_json`].
    pub fn to_pretty_json(&self) -> String {
        self.to_json().pretty()
    }

    /// Parses and validates a report, reporting violations with the JSON
    /// path of the offending field (e.g. `$.cases[3].median_ns`).
    pub fn parse(text: &str) -> Result<BenchReport, DdlError> {
        let v = json::parse(text).map_err(|e| bench_err(format!("$: {e}")))?;
        let top = obj(&v, "$")?;
        match top.get("schema").and_then(Json::as_str) {
            Some(s) if s == BENCH_SCHEMA => {}
            Some(s) => {
                return Err(bench_err(format!(
                    "$.schema: expected \"{BENCH_SCHEMA}\", got \"{s}\""
                )))
            }
            None => return Err(bench_err("$.schema: missing or non-string".into())),
        }
        match top.get("version").and_then(Json::as_u64) {
            Some(v) if v == BENCH_VERSION => {}
            Some(v) => {
                return Err(bench_err(format!(
                    "$.version: unsupported version {v} (expected {BENCH_VERSION})"
                )))
            }
            None => return Err(bench_err("$.version: missing or non-integer".into())),
        }
        let label = get_str(top, "$", "label")?;
        let quick = get_bool(top, "$", "quick")?;
        let env = BenchEnv::from_json(
            top.get("env")
                .ok_or_else(|| bench_err("$.env: missing".into()))?,
            "$.env",
        )?;
        let items = match top.get("cases") {
            Some(Json::Arr(items)) => items,
            _ => return Err(bench_err("$.cases: missing or non-array".into())),
        };
        let mut cases = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            cases.push(BenchCase::from_json(item, &format!("$.cases[{i}]"))?);
        }
        Ok(BenchReport {
            label,
            quick,
            env,
            cases,
        })
    }

    /// Writes the pretty JSON to `path`.
    pub fn write(&self, path: &Path) -> Result<(), DdlError> {
        std::fs::write(path, self.to_pretty_json())
            .map_err(|e| bench_err(format!("cannot write {}: {e}", path.display())))
    }
}

// --- baseline comparison ---------------------------------------------

/// Default relative tolerance for median comparisons: quick CI runners
/// are noisy, so a generous band avoids false gates.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// One case whose median moved beyond the tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseDelta {
    /// Case identifier.
    pub id: String,
    /// Baseline median nanoseconds.
    pub baseline_ns: f64,
    /// Current median nanoseconds.
    pub current_ns: f64,
    /// `current / baseline` (infinite if the baseline median is zero).
    pub ratio: f64,
}

/// Outcome of [`compare`]: per-case verdicts plus coverage drift.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Cases slower than `baseline * (1 + tolerance)`.
    pub regressions: Vec<CaseDelta>,
    /// Cases faster than `baseline * (1 - tolerance)`.
    pub improvements: Vec<CaseDelta>,
    /// Case ids present in the baseline but absent from the current run.
    pub missing: Vec<String>,
    /// Case ids present in the current run but absent from the baseline.
    pub added: Vec<String>,
}

impl Comparison {
    /// A comparison passes when nothing regressed and no baseline case
    /// disappeared (new cases are fine — the suite grew).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares `current` against `baseline` by case id. A case regresses
/// when its median exceeds the baseline median by more than `tolerance`
/// (relative); symmetric for improvements.
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Comparison {
    let mut out = Comparison::default();
    let current_by_id: BTreeMap<&str, &BenchCase> =
        current.cases.iter().map(|c| (c.id.as_str(), c)).collect();
    for base in &baseline.cases {
        let Some(cur) = current_by_id.get(base.id.as_str()) else {
            out.missing.push(base.id.clone());
            continue;
        };
        let ratio = if base.median_ns > 0.0 {
            cur.median_ns / base.median_ns
        } else if cur.median_ns > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let delta = CaseDelta {
            id: base.id.clone(),
            baseline_ns: base.median_ns,
            current_ns: cur.median_ns,
            ratio,
        };
        if ratio > 1.0 + tolerance {
            out.regressions.push(delta);
        } else if ratio < 1.0 - tolerance {
            out.improvements.push(delta);
        }
    }
    let baseline_ids: std::collections::BTreeSet<&str> =
        baseline.cases.iter().map(|c| c.id.as_str()).collect();
    for cur in &current.cases {
        if !baseline_ids.contains(cur.id.as_str()) {
            out.added.push(cur.id.clone());
        }
    }
    out
}

// --- decoding helpers (local: ddl-core's are crate-private) -----------

fn obj<'a>(v: &'a Json, path: &str) -> Result<&'a BTreeMap<String, Json>, DdlError> {
    v.as_obj()
        .ok_or_else(|| bench_err(format!("{path}: not an object")))
}

fn get_str(m: &BTreeMap<String, Json>, path: &str, key: &str) -> Result<String, DdlError> {
    m.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bench_err(format!("{path}.{key}: missing or non-string")))
}

fn get_u64(m: &BTreeMap<String, Json>, path: &str, key: &str) -> Result<u64, DdlError> {
    m.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bench_err(format!("{path}.{key}: missing or non-integer")))
}

fn get_f64(m: &BTreeMap<String, Json>, path: &str, key: &str) -> Result<f64, DdlError> {
    m.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bench_err(format!("{path}.{key}: missing or non-number")))
}

fn get_bool(m: &BTreeMap<String, Json>, path: &str, key: &str) -> Result<bool, DdlError> {
    match m.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(bench_err(format!("{path}.{key}: missing or non-boolean"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(id: &str, median: f64) -> BenchCase {
        BenchCase {
            id: id.into(),
            transform: "dft".into(),
            strategy: "ddl".into(),
            backend: "scalar".into(),
            n: 64,
            repeats: 3,
            median_ns: median,
            min_ns: median * 0.9,
            max_ns: median * 1.1,
        }
    }

    fn report(cases: Vec<BenchCase>) -> BenchReport {
        BenchReport {
            label: "test".into(),
            quick: true,
            env: collect_env(),
            cases,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(vec![case("dft-ddl-n64", 1234.5), case("wht-sdl-n64", 99.0)]);
        let parsed = BenchReport::parse(&r.to_pretty_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn schema_violations_name_the_path() {
        let r = report(vec![case("dft-ddl-n64", 10.0)]);
        let good = r.to_pretty_json();
        for (needle, bad) in [
            ("$.schema", good.replace("\"ddl-bench\"", "\"other\"")),
            (
                "$.version",
                good.replace("\"version\": 1", "\"version\": 9"),
            ),
            ("$.label", good.replace("\"label\"", "\"labell\"")),
            (
                "$.cases[0].median_ns",
                good.replace("\"median_ns\": 10", "\"median_ns\": -10"),
            ),
            (
                "$.cases[0].repeats",
                good.replace("\"repeats\": 3", "\"repeats\": \"three\""),
            ),
        ] {
            let err = BenchReport::parse(&bad).unwrap_err().to_string();
            assert!(err.contains(needle), "wanted {needle} in: {err}");
        }
    }

    #[test]
    fn summary_handles_odd_even_and_empty() {
        assert_eq!(summary(&mut []), (0.0, 0.0, 0.0));
        assert_eq!(summary(&mut [5.0, 1.0, 3.0]), (3.0, 1.0, 5.0));
        assert_eq!(summary(&mut [4.0, 2.0]), (3.0, 2.0, 4.0));
    }

    #[test]
    fn compare_flags_regressions_and_coverage_drift() {
        let base = report(vec![case("a", 100.0), case("b", 100.0), case("gone", 1.0)]);
        let cur = report(vec![case("a", 200.0), case("b", 40.0), case("new", 1.0)]);
        let cmp = compare(&cur, &base, 0.5);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "a");
        assert!((cmp.regressions[0].ratio - 2.0).abs() < 1e-12);
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].id, "b");
        assert_eq!(cmp.missing, vec!["gone".to_string()]);
        assert_eq!(cmp.added, vec!["new".to_string()]);
        assert!(!cmp.passed());
    }

    #[test]
    fn removed_cases_fail_even_without_regressions() {
        // Every surviving case is stable or faster; only the coverage
        // shrank. A silently vanished case is still a failed comparison —
        // a deleted benchmark would otherwise hide its own regression.
        let base = report(vec![case("a", 100.0), case("gone", 50.0)]);
        let cur = report(vec![case("a", 90.0)]);
        let cmp = compare(&cur, &base, 0.5);
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.missing, vec!["gone".to_string()]);
        assert!(!cmp.passed());
    }

    #[test]
    fn self_comparison_passes() {
        let r = report(vec![case("a", 100.0), case("b", 0.0)]);
        let cmp = compare(&r, &r, 0.1);
        assert!(cmp.passed());
        assert!(cmp.regressions.is_empty() && cmp.improvements.is_empty());
        assert!(cmp.missing.is_empty() && cmp.added.is_empty());
    }

    #[test]
    fn quick_suite_runs_end_to_end() {
        let cfg = SuiteConfig {
            label: "unit".into(),
            quick: true,
            repeats: 1,
        };
        let report = run_suite(&cfg).unwrap();
        assert!(report.quick);
        // 3 sizes x (2 transforms x 2 strategies + simd + interp)
        // + batch + wisdom
        assert_eq!(report.cases.len(), 20);
        assert!(report.cases.iter().all(|c| c.median_ns > 0.0));
        assert!(report
            .cases
            .iter()
            .any(|c| c.transform == "dft-batch" || c.transform == "wisdom"));
        for backend in ["scalar", "interp", "simd"] {
            assert!(
                report.cases.iter().any(|c| c.backend == backend),
                "suite must cover the {backend} backend"
            );
        }
        // Backend-tagged ids stay distinct from the scalar baseline ids.
        assert!(report.cases.iter().any(|c| c.id == "dft-ddl-n256"));
        assert!(report.cases.iter().any(|c| c.id == "dft-ddl-n256-simd"));
        assert!(report.cases.iter().any(|c| c.id == "dft-ddl-n256-interp"));
        let parsed = BenchReport::parse(&report.to_pretty_json()).unwrap();
        assert_eq!(parsed.cases.len(), report.cases.len());
    }

    #[test]
    fn backend_field_is_additive_in_the_schema() {
        let r = report(vec![case("dft-ddl-n64", 10.0)]);
        let text = r.to_pretty_json();
        assert!(text.contains("\"backend\": \"scalar\""), "always written");
        // A pre-backend report (field absent) still parses as scalar.
        let legacy = text.replace("      \"backend\": \"scalar\",\n", "");
        assert!(!legacy.contains("backend"), "field removed: {legacy}");
        let parsed = BenchReport::parse(&legacy).unwrap();
        assert_eq!(parsed.cases[0].backend, "scalar");
        // An unknown backend label is a schema violation, with the path.
        let bad = text.replace("\"backend\": \"scalar\"", "\"backend\": \"avx512\"");
        let err = BenchReport::parse(&bad).unwrap_err().to_string();
        assert!(err.contains("$.cases[0].backend"), "got: {err}");
    }
}
