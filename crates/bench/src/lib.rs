//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one experiment (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for results):
//!
//! | binary      | paper artifact |
//! |-------------|----------------|
//! | `table1`    | Table I — alternate factorization trees, measured vs estimated |
//! | `fig9`      | Fig. 9 — miss rate vs FFT size (DDL vs SDL) |
//! | `table2`    | Table II — cache accesses and misses per size |
//! | `fig10`     | Fig. 10 — miss rate vs cache line size |
//! | `platform`  | Tables III/IV — host parameters |
//! | `fig11_fft` | Figs. 11–14 — FFT pseudo-MFLOPS, SDL vs DDL vs FFTW-proxy |
//! | `fig15_wht` | Fig. 15 — WHT time per point, SDL vs DDL |
//! | `table5`    | Table V — optimal WHT factorizations per size |
//! | `table6`    | Table VI — optimal FFT factorizations per size |
//!
//! Beyond the paper, `obs_smoke` emits and validates the `ddl-metrics`
//! observability report, and `bench_suite` (backed by [`suite`]) runs
//! the pinned performance-trajectory suite with baseline comparison,
//! cost-model calibration, Chrome-trace export, per-node cache-miss
//! attribution (L1/L2/d-TLB, distilled into the per-plan [`scorecard`])
//! and the longitudinal [`ledger`].
//!
//! This library provides the pieces they share: measured planning with a
//! wisdom cache (so one planning pass serves every binary), timing
//! wrappers, and host introspection.

#![forbid(unsafe_code)]

use ddl_core::planner::{plan_dft, plan_wht, PlannerConfig, Strategy};
use ddl_core::tree::Tree;
use ddl_core::wisdom::Wisdom;
use std::path::PathBuf;

pub mod host;
pub mod ledger;
pub mod scorecard;
pub mod suite;

/// Default size sweep for the performance figures: `2^10 .. 2^22`.
///
/// The paper sweeps to `2^24`/`2^25` on machines with multi-GB memory;
/// `2^22` (64 MB of complex points, ~320 MB peak with scratch) keeps the
/// sweep tractable on one laptop-class host while still exceeding every
/// cache level of interest.
pub fn default_log_sizes() -> Vec<u32> {
    (10..=22).collect()
}

/// Where shared planning results are cached between binaries.
pub fn wisdom_path() -> PathBuf {
    let dir = std::env::var_os("DDL_WISDOM_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    dir.join("ddl-wisdom.json")
}

/// Plans (or recalls) a tree for `(transform, n, strategy)` with the given
/// config, backed by the wisdom file.
pub fn plan_cached(transform: &str, n: usize, cfg: &PlannerConfig) -> Tree {
    let path = wisdom_path();
    // Degrade gracefully on a corrupt or unreadable wisdom file: warn and
    // re-plan rather than abort the whole sweep.
    let mut wisdom = match Wisdom::load(&path) {
        Ok(w) => {
            for q in w.quarantined() {
                eprintln!(
                    "warning: quarantined wisdom entry {:?} in {}: {}",
                    q.key,
                    path.display(),
                    q.error
                );
            }
            w
        }
        Err(e) => {
            eprintln!(
                "warning: could not load wisdom from {}: {e}; re-planning",
                path.display()
            );
            Wisdom::default()
        }
    };
    if let Some((tree, _)) = wisdom.get(transform, n, cfg.strategy) {
        return tree;
    }
    let outcome = match transform {
        "dft" => plan_dft(n, cfg),
        "wht" => plan_wht(n, cfg),
        other => die(&format!("unknown transform {other}")),
    };
    wisdom.put(
        transform,
        n,
        cfg.strategy,
        &outcome.tree,
        outcome.cost,
        &format!("{:?}", cfg.backend),
    );
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Err(e) = wisdom.save(&path) {
        eprintln!("warning: could not save wisdom to {}: {e}", path.display());
    }
    outcome.tree
}

/// Arguments shared by the sweep binaries.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Largest transform size as a power of two (`--max-log-n <k>`).
    pub max_log: u32,
    /// `--quick` shrinks measurement floors for a fast smoke run.
    pub quick: bool,
    /// `--metrics-out <path>`: where to write a `ddl-metrics` JSON report
    /// (defaults to the `DDL_METRICS_OUT` environment variable; `None`
    /// disables export).
    pub metrics_out: Option<PathBuf>,
}

/// Prints a usage error and exits: the sweep binaries have no caller to
/// recover into, and a clean diagnostic beats an unwind.
pub fn die(msg: &str) -> ! {
    eprintln!("ddl-bench: {msg}");
    std::process::exit(2);
}

/// Parses `--max-log-n <k>`-style arguments shared by the sweep binaries.
pub fn parse_sweep_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        max_log: 22,
        quick: false,
        metrics_out: ddl_core::obs::env_metrics_out(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-log-n" => {
                parsed.max_log = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-log-n needs an integer"));
            }
            "--quick" => parsed.quick = true,
            "--metrics-out" => {
                parsed.metrics_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-out needs a path")),
                ));
            }
            other => die(&format!(
                "unknown argument {other} (expected --max-log-n <k> | --quick | --metrics-out <path>)"
            )),
        }
    }
    parsed
}

/// Writes a metrics report, creating parent directories and reporting
/// failure as a warning rather than aborting the benchmark that produced
/// the data.
pub fn write_metrics_report(report: &ddl_core::MetricsReport, path: &std::path::Path) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match report.write(path) {
        Ok(()) => eprintln!("metrics report written to {}", path.display()),
        Err(e) => eprintln!(
            "warning: could not write metrics report to {}: {e}",
            path.display()
        ),
    }
}

/// Measurement floor in seconds for the sweep binaries.
pub fn measure_floor(quick: bool) -> f64 {
    if quick {
        0.02
    } else {
        0.2
    }
}

/// A measured-backend planner config tuned for sweep use.
pub fn measured_cfg(strategy: Strategy, quick: bool) -> PlannerConfig {
    use ddl_core::planner::CostBackend;
    let base = match strategy {
        Strategy::Sdl => PlannerConfig::sdl_measured(),
        Strategy::Ddl => PlannerConfig::ddl_measured(),
    };
    PlannerConfig {
        backend: CostBackend::Measured {
            min_secs: if quick { 5e-4 } else { 2e-3 },
            min_reps: 2,
        },
        // Planning thresholds use the host L2 (the innermost cache whose
        // capacity the working set plausibly exceeds on this machine).
        cache_points: host::l2_points(16),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_cover_the_cache_crossover() {
        let sizes = default_log_sizes();
        assert!(sizes.contains(&15));
        assert!(*sizes.last().unwrap() >= 20);
    }

    #[test]
    fn plan_cached_round_trips_through_wisdom() {
        std::env::set_var(
            "DDL_WISDOM_DIR",
            std::env::temp_dir().join(format!("ddl-bench-test-{}", std::process::id())),
        );
        let cfg = PlannerConfig::ddl_analytical();
        let a = plan_cached("dft", 1 << 12, &cfg);
        let b = plan_cached("dft", 1 << 12, &cfg); // wisdom hit
        assert_eq!(a, b);
        std::fs::remove_dir_all(std::env::var_os("DDL_WISDOM_DIR").unwrap()).ok();
        std::env::remove_var("DDL_WISDOM_DIR");
    }

    #[test]
    fn measure_floor_scales_with_quick() {
        assert!(measure_floor(true) < measure_floor(false));
    }
}
