//! Performance-trajectory harness: runs the pinned benchmark suite,
//! writes a versioned `ddl-bench` report, and optionally compares it
//! against a stored baseline, emits a cost-model calibration report and
//! a Chrome trace of one instrumented run.
//!
//! Modes:
//!
//! * **run** (default) — executes the suite (see [`ddl_bench::suite`])
//!   and writes `BENCH_<label>.json`. With `--baseline <path>` the run
//!   is compared case-by-case against the stored report: regressions
//!   beyond `--tolerance` (or a vanished case) exit non-zero.
//! * **`--check <path>`** (repeatable) — validates a previously emitted
//!   artifact: `ddl-bench`, `ddl-calibration` and `ddl-metrics` reports
//!   are auto-detected by their `schema` field, Chrome traces by their
//!   `traceEvents` key. Violations print the offending JSON path and
//!   exit non-zero.
//! * **`--compare <current> <baseline>`** — compares two stored reports
//!   without re-running the suite.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin bench_suite -- --quick --label ci \
//!     --out target/BENCH_ci.json --calibrate-out target/calibration.json \
//!     --trace-out target/trace.json
//! cargo run --release -p ddl-bench --bin bench_suite -- --check target/BENCH_ci.json
//! cargo run --release -p ddl-bench --bin bench_suite -- \
//!     --compare target/BENCH_ci.json results/bench_baseline.json
//! ```

use ddl_bench::suite::{
    compare, default_repeats, run_suite, BenchReport, Comparison, SuiteConfig, DEFAULT_TOLERANCE,
};
use ddl_core::json::{self, Json};
use ddl_core::planner::{try_plan_dft_with, PlannerConfig};
use ddl_core::{
    calibrate_dft, calibrate_wht, validate_chrome_trace, write_chrome_trace, CalibrationConfig,
    CalibrationReport, DftPlan, MetricsReport, Recorder,
};
use ddl_num::{Complex64, Direction};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Sizes the calibration report always covers (the acceptance pair: one
/// in-cache, one out-of-cache on paper-default geometry).
const CALIBRATION_LOGS: [u32; 2] = [10, 16];
/// Size of the traced run behind `--trace-out`.
const TRACE_N: usize = 1 << 10;

struct Args {
    quick: bool,
    label: String,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
    repeats: Option<u32>,
    check: Vec<PathBuf>,
    compare: Option<(PathBuf, PathBuf)>,
    calibrate_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn die(msg: &str) -> ! {
    eprintln!("bench_suite: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        label: "local".into(),
        out: None,
        baseline: None,
        tolerance: DEFAULT_TOLERANCE,
        repeats: None,
        check: Vec::new(),
        compare: None,
        calibrate_out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    let next_path = |args: &mut dyn Iterator<Item = String>, flag: &str| -> PathBuf {
        PathBuf::from(
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a path"))),
        )
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--label" => {
                parsed.label = args.next().unwrap_or_else(|| die("--label needs a value"));
            }
            "--out" => parsed.out = Some(next_path(&mut args, "--out")),
            "--baseline" => parsed.baseline = Some(next_path(&mut args, "--baseline")),
            "--tolerance" => {
                parsed.tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| die("--tolerance needs a non-negative number"));
            }
            "--repeats" => {
                parsed.repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r| *r >= 1)
                        .unwrap_or_else(|| die("--repeats needs a positive integer")),
                );
            }
            "--check" => parsed.check.push(next_path(&mut args, "--check")),
            "--compare" => {
                let cur = next_path(&mut args, "--compare");
                let base = next_path(&mut args, "--compare");
                parsed.compare = Some((cur, base));
            }
            "--calibrate-out" => {
                parsed.calibrate_out = Some(next_path(&mut args, "--calibrate-out"));
            }
            "--trace-out" => parsed.trace_out = Some(next_path(&mut args, "--trace-out")),
            other => die(&format!(
                "unknown argument {other} (expected --quick | --label <s> | --out <path> | \
                 --baseline <path> | --tolerance <f> | --repeats <k> | --check <path> | \
                 --compare <current> <baseline> | --calibrate-out <path> | --trace-out <path>)"
            )),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();

    if !args.check.is_empty() {
        let mut code = ExitCode::SUCCESS;
        for path in &args.check {
            match check_artifact(path) {
                Ok(summary) => println!("ok: {}: {summary}", path.display()),
                Err(msg) => {
                    eprintln!("check failed: {}: {msg}", path.display());
                    code = ExitCode::from(1);
                }
            }
        }
        return code;
    }

    if let Some((current, baseline)) = &args.compare {
        let cur = match load_report(current) {
            Ok(r) => r,
            Err(msg) => die(&msg),
        };
        let base = match load_report(baseline) {
            Ok(r) => r,
            Err(msg) => die(&msg),
        };
        return report_comparison(&compare(&cur, &base, args.tolerance), args.tolerance);
    }

    // --- run mode ---
    let cfg = SuiteConfig {
        label: args.label.clone(),
        quick: args.quick,
        repeats: args.repeats.unwrap_or_else(|| default_repeats(args.quick)),
    };
    eprintln!(
        "running {} suite ({} repeats per case)...",
        if cfg.quick { "quick" } else { "full" },
        cfg.repeats
    );
    let report = match run_suite(&cfg) {
        Ok(r) => r,
        Err(e) => die(&format!("suite failed: {e}")),
    };
    for case in &report.cases {
        println!(
            "{:<28} median {:>12.0} ns  (min {:.0}, max {:.0})",
            case.id, case.median_ns, case.min_ns, case.max_ns
        );
    }

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("target/BENCH_{}.json", args.label)));
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Err(e) = report.write(&out) {
        die(&format!("{e}"));
    }
    eprintln!("bench report written to {}", out.display());

    if let Some(path) = &args.calibrate_out {
        if let Err(e) = emit_calibration(&args.label, path) {
            die(&format!("calibration failed: {e}"));
        }
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = emit_trace(path) {
            die(&format!("trace export failed: {e}"));
        }
    }

    if let Some(baseline) = &args.baseline {
        let base = match load_report(baseline) {
            Ok(r) => r,
            Err(msg) => die(&msg),
        };
        return report_comparison(&compare(&report, &base, args.tolerance), args.tolerance);
    }
    ExitCode::SUCCESS
}

/// Calibrates DFT and WHT at the pinned sizes and writes the report.
fn emit_calibration(label: &str, path: &Path) -> Result<(), ddl_num::DdlError> {
    let cal = CalibrationConfig::paper_default();
    let cfg = PlannerConfig::ddl_analytical();
    let mut report = CalibrationReport {
        label: label.to_string(),
        cases: Vec::new(),
    };
    for log in CALIBRATION_LOGS {
        let n = 1usize << log;
        report.cases.push(calibrate_dft(n, &cfg, &cal)?);
        report.cases.push(calibrate_wht(n, &cfg, &cal)?);
    }
    for case in &report.cases {
        let total = case.total.rel_error() * 100.0;
        println!(
            "calibration {:<4} n={:<7} total err {total:>+7.1}%  (leaf {:+.1}%, twiddle {:+.1}%, reorg {:+.1}%)",
            case.transform,
            case.n,
            case.leaf.rel_error() * 100.0,
            case.twiddle.rel_error() * 100.0,
            case.reorg.rel_error() * 100.0,
        );
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    report.write(path)?;
    eprintln!("calibration report written to {}", path.display());
    Ok(())
}

/// Plans and profiles one instrumented DFT, exporting the recorded
/// span/stage timeline as a Chrome trace-event document.
fn emit_trace(path: &Path) -> Result<(), ddl_num::DdlError> {
    let mut recorder = Recorder::new();
    let cfg = PlannerConfig::ddl_analytical();
    let outcome = try_plan_dft_with(TRACE_N, &cfg, &mut recorder)?;
    let plan = DftPlan::new(outcome.tree, Direction::Forward)?;
    let input: Vec<Complex64> = (0..TRACE_N)
        .map(|i| Complex64::new((i % 7) as f64, (i % 3) as f64 * 0.5))
        .collect();
    let mut output = vec![Complex64::ZERO; TRACE_N];
    plan.try_profile_with(&input, &mut output, &mut recorder)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    write_chrome_trace(&recorder, path)?;
    // Round-trip self-check: what we just wrote must validate.
    let text = std::fs::read_to_string(path).map_err(|e| ddl_num::DdlError::Metrics {
        detail: format!("cannot re-read {}: {e}", path.display()),
    })?;
    let summary = validate_chrome_trace(&text)?;
    eprintln!(
        "trace written to {} ({} events, {} spans, depth {})",
        path.display(),
        summary.events,
        summary.begins,
        summary.max_depth
    );
    Ok(())
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Prints a comparison and converts it to the process exit code.
fn report_comparison(cmp: &Comparison, tolerance: f64) -> ExitCode {
    for r in &cmp.regressions {
        println!(
            "REGRESSION {:<28} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%)",
            r.id,
            r.baseline_ns,
            r.current_ns,
            (r.ratio - 1.0) * 100.0
        );
    }
    for i in &cmp.improvements {
        println!(
            "improved   {:<28} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%)",
            i.id,
            i.baseline_ns,
            i.current_ns,
            (i.ratio - 1.0) * 100.0
        );
    }
    for id in &cmp.missing {
        println!("MISSING    {id} (present in baseline, absent from current run)");
    }
    for id in &cmp.added {
        println!("added      {id} (not in baseline)");
    }
    if cmp.passed() {
        println!(
            "baseline comparison passed (tolerance {:.0}%, {} improvements, {} new cases)",
            tolerance * 100.0,
            cmp.improvements.len(),
            cmp.added.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "baseline comparison FAILED: {} regressions, {} missing cases (tolerance {:.0}%)",
            cmp.regressions.len(),
            cmp.missing.len(),
            tolerance * 100.0
        );
        ExitCode::from(1)
    }
}

/// Validates one artifact, auto-detecting its schema; returns a short
/// human summary or the path-bearing error message.
fn check_artifact(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("$: {e}"))?;
    let top = doc.as_obj().ok_or("$: top level is not an object")?;
    if top.contains_key("traceEvents") {
        let s = validate_chrome_trace(&text).map_err(|e| e.to_string())?;
        return Ok(format!(
            "ddl-trace: {} events ({} begin/end pairs, {} completes, depth {}, {} dropped)",
            s.events, s.begins, s.completes, s.max_depth, s.events_dropped
        ));
    }
    match top.get("schema").and_then(Json::as_str) {
        Some("ddl-bench") => {
            let r = BenchReport::parse(&text).map_err(|e| e.to_string())?;
            Ok(format!(
                "ddl-bench: label {:?}, {} cases, {} mode, host {}",
                r.label,
                r.cases.len(),
                if r.quick { "quick" } else { "full" },
                r.env.cpu
            ))
        }
        Some("ddl-calibration") => {
            let r = CalibrationReport::parse(&text).map_err(|e| e.to_string())?;
            Ok(format!(
                "ddl-calibration: label {:?}, {} cases",
                r.label,
                r.cases.len()
            ))
        }
        Some("ddl-metrics") => {
            let r = MetricsReport::parse(&text).map_err(|e| e.to_string())?;
            Ok(format!(
                "ddl-metrics: {} planner runs, {} executions, {} batches",
                r.planner.len(),
                r.executions.len(),
                r.batches.len()
            ))
        }
        Some(other) => Err(format!("$.schema: unknown schema {other:?}")),
        None => Err("$.schema: missing or non-string (and no traceEvents key)".into()),
    }
}
