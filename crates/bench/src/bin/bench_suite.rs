//! Performance-trajectory harness: runs the pinned benchmark suite,
//! writes a versioned `ddl-bench` report, and optionally compares it
//! against a stored baseline, emits cost-model calibration, per-node
//! cache-miss attribution and a Chrome trace of one instrumented run,
//! and maintains the longitudinal trajectory ledger.
//!
//! Modes:
//!
//! * **run** (default) — executes the suite (see [`ddl_bench::suite`])
//!   and writes `BENCH_<label>.json`. With `--baseline <path>` the run
//!   is compared case-by-case against the stored report: regressions
//!   beyond `--tolerance` (or a vanished case) exit non-zero. With
//!   `--ledger <path>` the run (plus an attribution digest for the
//!   pinned sizes) is appended as one line to the JSONL ledger. With
//!   `--hierarchy-out <path>` the attribution runs (which simulate
//!   L1, L2 and the d-TLB simultaneously) are distilled into the
//!   per-plan `ddl-scorecard` table.
//! * **`--check <path>`** (repeatable) — validates a previously emitted
//!   artifact through `ddl_core::check_report`: `ddl-metrics`,
//!   `ddl-calibration`, `ddl-attribution`, `ddl-telemetry` and
//!   `ddl-flight` reports (JSONL artifacts line by line) and Chrome
//!   traces are dispatched by the shared validator; the `ddl-bench` and
//!   `ddl-scorecard` schemas this crate owns are layered on its
//!   `Unknown` passthrough.
//!   Violations print the offending JSON path and exit non-zero.
//! * **`--compare <current> <baseline>`** — compares two stored reports
//!   without re-running the suite.
//! * **`--ledger-check <path>`** — validates every line of a trajectory
//!   ledger and exits non-zero if any consecutive same-environment pair
//!   regressed beyond `--tolerance`.
//! * **`--ledger-report <path>`** — renders the trajectory ledger as a
//!   per-case markdown trend table on stdout (no gating).
//! * **`--simd-check`** — measures the scalar and SIMD backends on the
//!   DDL DFT at the acceptance size (2^16) and exits non-zero when the
//!   SIMD median speedup is below the pinned floor while a vector unit
//!   is active. CI treats a failure as a soft gate (warning) because
//!   shared runners throttle; the number is still printed and archived.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin bench_suite -- --quick --label ci \
//!     --out target/BENCH_ci.json --calibrate-out target/calibration.json \
//!     --trace-out target/trace.json --attribution-out target/attribution.json \
//!     --ledger results/trajectory.jsonl
//! cargo run --release -p ddl-bench --bin bench_suite -- --check target/BENCH_ci.json
//! cargo run --release -p ddl-bench --bin bench_suite -- \
//!     --compare target/BENCH_ci.json results/bench_baseline.json
//! cargo run --release -p ddl-bench --bin bench_suite -- \
//!     --ledger-check results/trajectory.jsonl
//! ```

use ddl_analyze::{annotate_static, crosscheck};
use ddl_bench::ledger::{
    append_entry, check_ledger, read_ledger, render_report, AttributionSummary, LedgerEntry,
};
use ddl_bench::scorecard::Scorecard;
use ddl_bench::suite::{
    compare, default_repeats, dft_case, run_suite, BenchReport, Comparison, SuiteConfig,
    DEFAULT_TOLERANCE,
};
use ddl_cachesim::{CacheConfig, HierarchyConfig};
use ddl_core::attrib::{
    attribute_dft_hier, attribute_rfft_hier, attribute_wht_hier, AttributionReport, AttributionRun,
};
use ddl_core::planner::{plan_dft, plan_wht, try_plan_dft_with, PlannerConfig, Strategy};
use ddl_core::{
    calibrate_dft, calibrate_wht, check_report, simd_active_isa, validate_chrome_trace,
    write_chrome_trace, BackendKind, CalibrationConfig, CalibrationReport, CheckedReport, DftPlan,
    Recorder, RfftPlan, WhtPlan,
};
use ddl_num::{Complex64, Direction};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Sizes the calibration report always covers (the acceptance pair: one
/// in-cache, one out-of-cache on paper-default geometry).
const CALIBRATION_LOGS: [u32; 2] = [10, 16];
/// Sizes the attribution report and ledger digest always cover: the same
/// in-cache/out-of-cache pair as calibration, so the three artifacts
/// describe the same runs.
const ATTRIBUTION_LOGS: [u32; 2] = [10, 16];
/// Cache line size (bytes) for the attribution simulations.
const ATTRIBUTION_LINE_BYTES: usize = 64;
/// Size of the traced run behind `--trace-out`.
const TRACE_N: usize = 1 << 10;
/// Transform size of the `--simd-check` acceptance measurement.
const SIMD_CHECK_N: usize = 1 << 16;
/// Minimum scalar/SIMD median speedup `--simd-check` accepts when a
/// vector unit is active (the PR's acceptance floor).
const SIMD_CHECK_FLOOR: f64 = 1.5;
/// Repeats for the `--simd-check` medians: more than the full suite's
/// default because a single ratio gates on it.
const SIMD_CHECK_REPEATS: u32 = 9;

struct Args {
    quick: bool,
    label: String,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
    repeats: Option<u32>,
    check: Vec<PathBuf>,
    compare: Option<(PathBuf, PathBuf)>,
    calibrate_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    attribution_out: Option<PathBuf>,
    hierarchy_out: Option<PathBuf>,
    ledger: Option<PathBuf>,
    ledger_check: Option<PathBuf>,
    ledger_report: Option<PathBuf>,
    simd_check: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("bench_suite: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        quick: false,
        label: "local".into(),
        out: None,
        baseline: None,
        tolerance: DEFAULT_TOLERANCE,
        repeats: None,
        check: Vec::new(),
        compare: None,
        calibrate_out: None,
        trace_out: None,
        attribution_out: None,
        hierarchy_out: None,
        ledger: None,
        ledger_check: None,
        ledger_report: None,
        simd_check: false,
    };
    let mut args = std::env::args().skip(1);
    let next_path = |args: &mut dyn Iterator<Item = String>, flag: &str| -> PathBuf {
        PathBuf::from(
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a path"))),
        )
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--label" => {
                parsed.label = args.next().unwrap_or_else(|| die("--label needs a value"));
            }
            "--out" => parsed.out = Some(next_path(&mut args, "--out")),
            "--baseline" => parsed.baseline = Some(next_path(&mut args, "--baseline")),
            "--tolerance" => {
                parsed.tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| die("--tolerance needs a non-negative number"));
            }
            "--repeats" => {
                parsed.repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r| *r >= 1)
                        .unwrap_or_else(|| die("--repeats needs a positive integer")),
                );
            }
            "--check" => parsed.check.push(next_path(&mut args, "--check")),
            "--compare" => {
                let cur = next_path(&mut args, "--compare");
                let base = next_path(&mut args, "--compare");
                parsed.compare = Some((cur, base));
            }
            "--calibrate-out" => {
                parsed.calibrate_out = Some(next_path(&mut args, "--calibrate-out"));
            }
            "--trace-out" => parsed.trace_out = Some(next_path(&mut args, "--trace-out")),
            "--attribution-out" => {
                parsed.attribution_out = Some(next_path(&mut args, "--attribution-out"));
            }
            "--hierarchy-out" => {
                parsed.hierarchy_out = Some(next_path(&mut args, "--hierarchy-out"));
            }
            "--ledger" => parsed.ledger = Some(next_path(&mut args, "--ledger")),
            "--ledger-check" => {
                parsed.ledger_check = Some(next_path(&mut args, "--ledger-check"));
            }
            "--ledger-report" => {
                parsed.ledger_report = Some(next_path(&mut args, "--ledger-report"));
            }
            "--simd-check" => parsed.simd_check = true,
            other => die(&format!(
                "unknown argument {other} (expected --quick | --label <s> | --out <path> | \
                 --baseline <path> | --tolerance <f> | --repeats <k> | --check <path> | \
                 --compare <current> <baseline> | --calibrate-out <path> | --trace-out <path> | \
                 --attribution-out <path> | --hierarchy-out <path> | --ledger <path> | \
                 --ledger-check <path> | --ledger-report <path> | --simd-check)"
            )),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();

    if !args.check.is_empty() {
        let mut code = ExitCode::SUCCESS;
        for path in &args.check {
            match check_artifact(path) {
                Ok(summary) => println!("ok: {}: {summary}", path.display()),
                Err(msg) => {
                    eprintln!("check failed: {}: {msg}", path.display());
                    code = ExitCode::from(1);
                }
            }
        }
        return code;
    }

    if let Some((current, baseline)) = &args.compare {
        let cur = match load_report(current) {
            Ok(r) => r,
            Err(msg) => die(&msg),
        };
        let base = match load_report(baseline) {
            Ok(r) => r,
            Err(msg) => die(&msg),
        };
        warn_mode_mismatch(&cur, &base);
        return report_comparison(&compare(&cur, &base, args.tolerance), args.tolerance);
    }

    if let Some(path) = &args.ledger_check {
        return run_ledger_check(path, args.tolerance);
    }

    if let Some(path) = &args.ledger_report {
        let entries = match read_ledger(path) {
            Ok(e) => e,
            Err(e) => die(&format!("{e}")),
        };
        print!("{}", render_report(&entries));
        return ExitCode::SUCCESS;
    }

    if args.simd_check {
        return run_simd_check(args.repeats.unwrap_or(SIMD_CHECK_REPEATS));
    }

    // --- run mode ---
    let cfg = SuiteConfig {
        label: args.label.clone(),
        quick: args.quick,
        repeats: args.repeats.unwrap_or_else(|| default_repeats(args.quick)),
    };
    eprintln!(
        "running {} suite ({} repeats per case)...",
        if cfg.quick { "quick" } else { "full" },
        cfg.repeats
    );
    let report = match run_suite(&cfg) {
        Ok(r) => r,
        Err(e) => die(&format!("suite failed: {e}")),
    };
    for case in &report.cases {
        println!(
            "{:<28} median {:>12.0} ns  (min {:.0}, max {:.0})",
            case.id, case.median_ns, case.min_ns, case.max_ns
        );
    }

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("target/BENCH_{}.json", args.label)));
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Err(e) = report.write(&out) {
        die(&format!("{e}"));
    }
    eprintln!("bench report written to {}", out.display());

    if let Some(path) = &args.calibrate_out {
        if let Err(e) = emit_calibration(&args.label, path) {
            die(&format!("calibration failed: {e}"));
        }
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = emit_trace(path) {
            die(&format!("trace export failed: {e}"));
        }
    }

    // Attribution runs feed the standalone report, the hierarchy
    // scorecard and the ledger digest; compute them once when any
    // consumer is enabled.
    if args.attribution_out.is_some() || args.hierarchy_out.is_some() || args.ledger.is_some() {
        let (attribution, summaries) = match attribution_runs(&args.label) {
            Ok(pair) => pair,
            Err(e) => die(&format!("attribution failed: {e}")),
        };
        if let Some(path) = &args.attribution_out {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).ok();
            }
            if let Err(e) = attribution.write(path) {
                die(&format!("attribution report: {e}"));
            }
            eprintln!(
                "attribution report written to {} ({} runs)",
                path.display(),
                attribution.runs.len()
            );
        }
        if let Some(path) = &args.hierarchy_out {
            let card = match Scorecard::from_report(&attribution) {
                Ok(c) => c,
                Err(e) => die(&format!("hierarchy scorecard: {e}")),
            };
            if let Err(e) = card.write(path) {
                die(&format!("hierarchy scorecard: {e}"));
            }
            print!("{}", card.render());
            eprintln!(
                "hierarchy scorecard written to {} ({} rows)",
                path.display(),
                card.rows.len()
            );
        }
        if let Some(path) = &args.ledger {
            let entry = LedgerEntry::from_report(&report, summaries);
            if let Err(e) = append_entry(path, &entry) {
                die(&format!("ledger append: {e}"));
            }
            eprintln!(
                "ledger entry appended to {} ({} cases, {} attribution digests)",
                path.display(),
                entry.cases.len(),
                entry.attribution.len()
            );
        }
    }

    if let Some(baseline) = &args.baseline {
        let base = match load_report(baseline) {
            Ok(r) => r,
            Err(msg) => die(&msg),
        };
        warn_mode_mismatch(&report, &base);
        return report_comparison(&compare(&report, &base, args.tolerance), args.tolerance);
    }
    ExitCode::SUCCESS
}

/// Comparing a quick run against a full baseline (or vice versa) is
/// usually a CI misconfiguration: the case sets only partially overlap
/// and the repeat counts differ. Warn, but still compare — `--compare`
/// stays usable for ad-hoc questions.
fn warn_mode_mismatch(current: &BenchReport, baseline: &BenchReport) {
    if current.quick != baseline.quick {
        eprintln!(
            "warning: comparing a {} run against a {} baseline; case sets will only \
             partially overlap",
            if current.quick { "quick" } else { "full" },
            if baseline.quick { "quick" } else { "full" },
        );
    }
}

/// Attributes cache misses per plan node for the pinned transform sizes
/// (both strategies), simultaneously at L1/L2/d-TLB via the hierarchy
/// attributor, prints any three-way classification disagreements, and
/// returns the full report plus the per-run ledger digests. The real
/// FFT pipeline rides along under the DDL strategy so its pack/dft/
/// untangle stages get the same per-node scorecard.
fn attribution_runs(
    label: &str,
) -> Result<(AttributionReport, Vec<AttributionSummary>), ddl_num::DdlError> {
    let cache = CacheConfig::paper_default(ATTRIBUTION_LINE_BYTES);
    let hier = HierarchyConfig::typical(cache);
    let mut report = AttributionReport {
        label: label.to_string(),
        runs: Vec::new(),
    };
    let mut summaries = Vec::new();
    for log in ATTRIBUTION_LOGS {
        let n = 1usize << log;
        for strategy in [Strategy::Sdl, Strategy::Ddl] {
            let cfg = match strategy {
                Strategy::Sdl => PlannerConfig::sdl_analytical(),
                Strategy::Ddl => PlannerConfig::ddl_analytical(),
            };
            let strategy_name = match strategy {
                Strategy::Sdl => "sdl",
                Strategy::Ddl => "ddl",
            };
            let dft = DftPlan::new(plan_dft(n, &cfg).tree, Direction::Forward)?;
            let wht = WhtPlan::new(plan_wht(n, &cfg).tree)?;
            let mut runs = vec![
                attribute_dft_hier(&dft, 1, cache, hier)?,
                attribute_wht_hier(&wht, 1, cache, hier)?,
            ];
            if strategy == Strategy::Ddl {
                let rfft = RfftPlan::plan(n, &cfg)?;
                runs.push(attribute_rfft_hier(&rfft, cache, hier)?);
            }
            for mut run in runs {
                run.strategy = Some(strategy_name.to_string());
                annotate_static(&mut run);
                for d in crosscheck(&run) {
                    eprintln!(
                        "attribution disagreement ({} n={} {}): {d}",
                        run.transform, run.n, strategy_name
                    );
                }
                summaries.push(summarize_run(&run, strategy_name));
                report.runs.push(run);
            }
        }
    }
    for s in &summaries {
        println!(
            "attribution {:<4} n={:<7} {:<4} miss rate {:>6.3}%  tlb {:>6.3}%  ({} of {} leaves Case III)",
            s.transform,
            s.n,
            s.strategy,
            s.miss_rate * 100.0,
            s.tlb_miss_rate.unwrap_or(0.0) * 100.0,
            s.case3_leaves,
            s.leaves
        );
    }
    Ok((report, summaries))
}

fn summarize_run(run: &AttributionRun, strategy: &str) -> AttributionSummary {
    let (leaves, case3_leaves) = run.case3_leaf_counts();
    AttributionSummary {
        transform: run.transform.clone(),
        n: run.n,
        strategy: strategy.to_string(),
        miss_rate: run.totals.miss_rate(),
        misses: run.totals.misses,
        accesses: run.totals.accesses,
        leaves,
        case3_leaves,
        tlb_miss_rate: run.tlb_miss_rate(),
        case3_leaves_page: run.case3_leaf_counts_page().map(|(_, c)| c),
    }
}

/// Measures scalar vs SIMD medians on the DDL DFT at [`SIMD_CHECK_N`]
/// and gates on [`SIMD_CHECK_FLOOR`]. On hosts without a vector unit
/// (the portable fallback is active) the ratio is printed but never
/// gates: there is nothing to accept.
fn run_simd_check(repeats: u32) -> ExitCode {
    use ddl_core::planner::Strategy;
    let isa = simd_active_isa();
    let scalar = match dft_case(SIMD_CHECK_N, Strategy::Ddl, BackendKind::Scalar, repeats) {
        Ok(c) => c,
        Err(e) => die(&format!("simd-check scalar case failed: {e}")),
    };
    let simd = match dft_case(SIMD_CHECK_N, Strategy::Ddl, BackendKind::Simd, repeats) {
        Ok(c) => c,
        Err(e) => die(&format!("simd-check simd case failed: {e}")),
    };
    let speedup = if simd.median_ns > 0.0 {
        scalar.median_ns / simd.median_ns
    } else {
        f64::INFINITY
    };
    println!(
        "simd-check n={SIMD_CHECK_N} isa={isa} scalar {:>12.0} ns  simd {:>12.0} ns  speedup {speedup:.2}x (floor {SIMD_CHECK_FLOOR:.1}x)",
        scalar.median_ns, simd.median_ns
    );
    if isa == "portable" {
        println!("simd-check skipped: no vector unit on this host (portable fallback)");
        return ExitCode::SUCCESS;
    }
    if speedup >= SIMD_CHECK_FLOOR {
        println!("simd-check passed");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simd-check FAILED: speedup {speedup:.2}x below the {SIMD_CHECK_FLOOR:.1}x floor"
        );
        ExitCode::from(1)
    }
}

/// Reads and validates a trajectory ledger; regressions between
/// consecutive comparable entries fail the process.
fn run_ledger_check(path: &Path, tolerance: f64) -> ExitCode {
    let entries = match read_ledger(path) {
        Ok(e) => e,
        Err(e) => die(&format!("{e}")),
    };
    let check = check_ledger(&entries, tolerance);
    for r in &check.regressions {
        println!(
            "LEDGER REGRESSION {:<28} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%, host drift {:.2}x)  [{} -> {}]",
            r.id,
            r.prev_ns,
            r.cur_ns,
            (r.ratio - 1.0) * 100.0,
            r.drift,
            r.from,
            r.to
        );
    }
    println!(
        "ledger {}: {} entries, {} pairs compared, {} skipped (environment change)",
        path.display(),
        check.entries,
        check.compared,
        check.skipped
    );
    if check.passed() {
        println!("ledger check passed (tolerance {:.0}%)", tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ledger check FAILED: {} regressions (tolerance {:.0}%)",
            check.regressions.len(),
            tolerance * 100.0
        );
        ExitCode::from(1)
    }
}

/// Calibrates DFT and WHT at the pinned sizes and writes the report.
fn emit_calibration(label: &str, path: &Path) -> Result<(), ddl_num::DdlError> {
    let cal = CalibrationConfig::paper_default();
    let cfg = PlannerConfig::ddl_analytical();
    let mut report = CalibrationReport {
        label: label.to_string(),
        cases: Vec::new(),
    };
    for log in CALIBRATION_LOGS {
        let n = 1usize << log;
        report.cases.push(calibrate_dft(n, &cfg, &cal)?);
        report.cases.push(calibrate_wht(n, &cfg, &cal)?);
    }
    for case in &report.cases {
        let total = case.total.rel_error() * 100.0;
        println!(
            "calibration {:<4} n={:<7} total err {total:>+7.1}%  (leaf {:+.1}%, twiddle {:+.1}%, reorg {:+.1}%)",
            case.transform,
            case.n,
            case.leaf.rel_error() * 100.0,
            case.twiddle.rel_error() * 100.0,
            case.reorg.rel_error() * 100.0,
        );
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    report.write(path)?;
    eprintln!("calibration report written to {}", path.display());
    Ok(())
}

/// Plans and profiles one instrumented DFT, exporting the recorded
/// span/stage timeline as a Chrome trace-event document.
fn emit_trace(path: &Path) -> Result<(), ddl_num::DdlError> {
    let mut recorder = Recorder::new();
    let cfg = PlannerConfig::ddl_analytical();
    let outcome = try_plan_dft_with(TRACE_N, &cfg, &mut recorder)?;
    let plan = DftPlan::new(outcome.tree, Direction::Forward)?;
    let input: Vec<Complex64> = (0..TRACE_N)
        .map(|i| Complex64::new((i % 7) as f64, (i % 3) as f64 * 0.5))
        .collect();
    let mut output = vec![Complex64::ZERO; TRACE_N];
    plan.try_profile_with(&input, &mut output, &mut recorder)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    write_chrome_trace(&recorder, path)?;
    // Round-trip self-check: what we just wrote must validate.
    let text = std::fs::read_to_string(path).map_err(|e| ddl_num::DdlError::Metrics {
        detail: format!("cannot re-read {}: {e}", path.display()),
    })?;
    let summary = validate_chrome_trace(&text)?;
    eprintln!(
        "trace written to {} ({} events, {} spans, depth {})",
        path.display(),
        summary.events,
        summary.begins,
        summary.max_depth
    );
    Ok(())
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Prints a comparison and converts it to the process exit code.
fn report_comparison(cmp: &Comparison, tolerance: f64) -> ExitCode {
    for r in &cmp.regressions {
        println!(
            "REGRESSION {:<28} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%)",
            r.id,
            r.baseline_ns,
            r.current_ns,
            (r.ratio - 1.0) * 100.0
        );
    }
    for i in &cmp.improvements {
        println!(
            "improved   {:<28} {:>12.0} ns -> {:>12.0} ns  ({:+.1}%)",
            i.id,
            i.baseline_ns,
            i.current_ns,
            (i.ratio - 1.0) * 100.0
        );
    }
    for id in &cmp.missing {
        println!("MISSING    {id} (present in baseline, absent from current run)");
    }
    for id in &cmp.added {
        println!("added      {id} (not in baseline)");
    }
    if cmp.passed() {
        println!(
            "baseline comparison passed (tolerance {:.0}%, {} improvements, {} new cases)",
            tolerance * 100.0,
            cmp.improvements.len(),
            cmp.added.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "baseline comparison FAILED: {} regressions, {} missing cases (tolerance {:.0}%)",
            cmp.regressions.len(),
            cmp.missing.len(),
            tolerance * 100.0
        );
        ExitCode::from(1)
    }
}

/// Validates one artifact through the shared `ddl-core` dispatcher
/// (which validates `.jsonl` artifacts line by line), layering the
/// `ddl-bench` schema (which core does not own) on the `Unknown`
/// passthrough; returns a short human summary or the path-bearing
/// error message.
fn check_artifact(path: &Path) -> Result<String, String> {
    match check_report(path).map_err(|e| e.to_string())? {
        CheckedReport::Trace(s) => Ok(format!(
            "ddl-trace: {} events ({} begin/end pairs, {} completes, depth {}, {} dropped)",
            s.events, s.begins, s.completes, s.max_depth, s.events_dropped
        )),
        CheckedReport::Metrics(r) => Ok(format!(
            "ddl-metrics: {} planner runs, {} executions, {} batches",
            r.planner.len(),
            r.executions.len(),
            r.batches.len()
        )),
        CheckedReport::Calibration(r) => Ok(format!(
            "ddl-calibration: label {:?}, {} cases",
            r.label,
            r.cases.len()
        )),
        CheckedReport::Attribution(r) => Ok(format!(
            "ddl-attribution: label {:?}, {} runs, all conserved",
            r.label,
            r.runs.len()
        )),
        CheckedReport::Telemetry(r) => {
            let (admitted, shed) = r.outcome_totals();
            Ok(format!(
                "ddl-telemetry: {} histogram series, {} admitted + {} shed samples, quiesced={}",
                r.entries.len(),
                admitted,
                shed,
                r.counters
                    .get("serve.snapshot_quiesced")
                    .copied()
                    .unwrap_or(0)
            ))
        }
        CheckedReport::Flight(d) => Ok(format!(
            "ddl-flight: last dump seq {}, trigger {:?}, request {} ({})",
            d.seq, d.trigger, d.capsule.id, d.capsule.outcome
        )),
        CheckedReport::Unknown { schema } if schema == "ddl-bench" => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
            let r = BenchReport::parse(&text).map_err(|e| e.to_string())?;
            Ok(format!(
                "ddl-bench: label {:?}, {} cases, {} mode, host {}",
                r.label,
                r.cases.len(),
                if r.quick { "quick" } else { "full" },
                r.env.cpu
            ))
        }
        CheckedReport::Unknown { schema } if schema == "ddl-scorecard" => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
            let card = Scorecard::parse(&text).map_err(|e| e.to_string())?;
            Ok(format!(
                "ddl-scorecard: label {:?}, {} rows",
                card.label,
                card.rows.len()
            ))
        }
        CheckedReport::Unknown { schema } => Err(format!("$.schema: unknown schema {schema:?}")),
    }
}
