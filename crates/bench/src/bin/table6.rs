//! Table VI — optimal FFT factorization trees chosen by dynamic
//! programming, SDL vs DDL, per size.
//!
//! The FFT counterpart of Table V (the paper reports MIPS R10000): the
//! trees the size-only SDL search and the (size, stride) DDL search
//! select per size, in the `ct`/`ctddl` grammar.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin table6 [--max-log-n 22] [--quick]
//! ```

use ddl_bench::{measured_cfg, parse_sweep_args, plan_cached, SweepArgs};
use ddl_core::grammar::print_dft;
use ddl_core::planner::Strategy;

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let max_log = if quick { max_log.min(16) } else { max_log };

    // plan_cached reuses the wisdom file written by fig11_fft when
    // present, so running the harness end-to-end plans only once.
    println!("# Table VI: optimal FFT factorizations (dynamic programming output)");
    for log_n in 8..=max_log {
        let n = 1usize << log_n;
        let s = plan_cached("dft", n, &measured_cfg(Strategy::Sdl, quick));
        let d = plan_cached("dft", n, &measured_cfg(Strategy::Ddl, quick));
        println!("n = 2^{log_n}");
        println!("  SDL: {}", print_dft(&s));
        println!(
            "  DDL: {}   ({} reorg node(s))",
            print_dft(&d),
            d.reorg_count()
        );
    }
    println!("\n# paper shape: identical below the cache; ctddl nodes above it");
}
