//! Fig. 10 — cache miss rate vs cache line size (fixed FFT size).
//!
//! The paper fixes the FFT size (we use 2^20 points, well above the
//! 2^15-point cache) and sweeps the line size of the simulated 512 KB
//! direct-mapped cache. DDL converts non-unit strides to unit strides,
//! so its advantage *grows* with line size (the paper highlights 25% at
//! 64 B lines); the SDL series improves only slowly because strided
//! accesses waste most of each longer line.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin fig10 [--quick]
//! ```

use ddl_bench::{parse_sweep_args, SweepArgs};
use ddl_cachesim::CacheConfig;
use ddl_core::planner::{plan_dft, PlannerConfig};
use ddl_core::traced::simulate_dft;
use ddl_core::DftPlan;
use ddl_num::Direction;

fn main() {
    let SweepArgs { quick, .. } = parse_sweep_args();
    let log_n = if quick { 16 } else { 20 };
    let n = 1usize << log_n;

    // plan against the simulated machine at the paper's reference line
    // size (64 B); the same trees are then evaluated at every line size
    let reference = CacheConfig::paper_default(64);
    eprintln!("planning SDL/DDL against the simulated cache ...");
    let sdl = plan_dft(n, &PlannerConfig::sdl_simulated(reference, 16));
    let ddl = plan_dft(n, &PlannerConfig::ddl_simulated(reference, 16));
    let sdl_plan = DftPlan::new(sdl.tree, Direction::Forward).unwrap();
    let ddl_plan = DftPlan::new(ddl.tree, Direction::Forward).unwrap();

    println!("# Fig. 10: miss rate vs line size (512 KB direct-mapped, n = 2^{log_n})");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "line B", "SDL miss%", "DDL miss%", "reduction%"
    );
    for line in [16usize, 32, 64, 128, 256] {
        let cache = CacheConfig::paper_default(line);
        let s = simulate_dft(&sdl_plan, cache).miss_rate() * 100.0;
        let d = simulate_dft(&ddl_plan, cache).miss_rate() * 100.0;
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.1}",
            line,
            s,
            d,
            if s > 0.0 { (s - d) / s * 100.0 } else { 0.0 }
        );
    }
    println!("\n# paper shape: both series fall with line size; the DDL curve falls");
    println!("# faster (paper: 3.98% vs 2.96% at 64 B — a 25% reduction)");
}
