//! Observability smoke run and report validator (the CI gate for the
//! `ddl-metrics` schema).
//!
//! Two modes:
//!
//! * **emit** (default) — runs a deterministic, seconds-scale exercise of
//!   every instrumented subsystem: planner searches (DFT and WHT, both
//!   strategies, analytical backend), instrumented executions including
//!   trees with explicit reorganizations (so the `Dr` term of Eq. (2)/(3)
//!   is non-zero), a parallel batch, and a wisdom save/load/hit cycle.
//!   The aggregated report is written to `--metrics-out <path>` (or the
//!   `DDL_METRICS_OUT` environment variable; stdout when neither is set).
//! * **`--check <path>`** — parses a previously emitted report and
//!   verifies the schema plus the structural invariants CI relies on:
//!   non-empty planner section, at least one DFT and one WHT execution,
//!   per-stage nanoseconds summing to at most the wall-clock total, and a
//!   reorganization stage that actually ran. Exits non-zero on violation.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin obs_smoke -- --metrics-out target/metrics-smoke.json
//! cargo run --release -p ddl-bench --bin obs_smoke -- --check target/metrics-smoke.json
//! ```

use ddl_core::obs::{env_metrics_out, merge_counters, Counter, PlannerRunMetrics};
use ddl_core::planner::{try_plan_dft_with, try_plan_wht_with, PlannerConfig, Strategy};
use ddl_core::tree::Tree;
use ddl_core::wisdom::Wisdom;
use ddl_core::{
    execute_batch_scheduled, try_execute_dft_batch, BatchOptions, CancelToken, DftPlan,
    MetricsReport, Recorder, WhtPlan,
};
use ddl_num::{Complex64, Direction};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DFT_N: usize = 1 << 12;
const WHT_N: usize = 1 << 10;

fn main() -> ExitCode {
    let mut metrics_out = env_metrics_out();
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    args.next().expect("--metrics-out needs a path"),
                ));
            }
            "--check" => {
                check = Some(PathBuf::from(args.next().expect("--check needs a path")));
            }
            other => {
                panic!("unknown argument {other} (expected --metrics-out <path> | --check <path>)")
            }
        }
    }

    match check {
        Some(path) => check_report(&path),
        None => emit_report(metrics_out.as_deref()),
    }
}

/// Runs the instrumented exercise and writes (or prints) the report.
fn emit_report(metrics_out: Option<&Path>) -> ExitCode {
    let mut report = MetricsReport::new();

    // --- planner: one run per (transform, strategy), analytical backend ---
    let mut plan = |transform: &str, strategy: Strategy| {
        let cfg = match strategy {
            Strategy::Sdl => PlannerConfig::sdl_analytical(),
            Strategy::Ddl => PlannerConfig::ddl_analytical(),
        };
        let n = if transform == "dft" { DFT_N } else { WHT_N };
        let mut rec = Recorder::new();
        let t0 = std::time::Instant::now();
        let out = match transform {
            "dft" => try_plan_dft_with(n, &cfg, &mut rec),
            _ => try_plan_wht_with(n, &cfg, &mut rec),
        }
        .unwrap_or_else(|e| panic!("{e}"));
        let plan_seconds = t0.elapsed().as_secs_f64();
        report.planner.push(PlannerRunMetrics {
            transform: transform.into(),
            n,
            strategy: strategy.label().into(),
            backend: cfg.backend.label().into(),
            states: rec.counter_value(Counter::PlannerStates),
            candidates: rec.counter_value(Counter::PlannerCandidates),
            memo_hits: rec.counter_value(Counter::PlannerMemoHits),
            cost: out.cost,
            plan_seconds,
            tree: match transform {
                "dft" => out.tree.to_string(),
                _ => ddl_core::grammar::print_wht(&out.tree),
            },
        });
        merge_counters(&mut report.counters, &rec);
        out.tree
    };
    let dft_tree = plan("dft", Strategy::Sdl);
    plan("dft", Strategy::Ddl);
    let wht_tree = plan("wht", Strategy::Sdl);
    plan("wht", Strategy::Ddl);

    // --- executions: planned trees plus explicit-reorg trees, so the
    //     report deterministically contains a non-zero `Dr` breakdown ---
    let reorg_dft = Tree::split_ddl(Tree::leaf(64), Tree::leaf(64));
    for tree in [&dft_tree, &reorg_dft] {
        let plan = DftPlan::new(tree.clone(), Direction::Forward).expect("valid tree");
        let n = plan.n();
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 7) as f64, (i % 5) as f64 * -0.5))
            .collect();
        let mut output = vec![Complex64::ZERO; n];
        report
            .executions
            .push(plan.try_profile(&input, &mut output).expect("dft profile"));
    }
    // Reorg on the left child: WHT left children run at stride n2, and
    // the gather/scatter only fires on strided views.
    let reorg_wht = Tree::split(Tree::leaf_ddl(32), Tree::leaf(32));
    for tree in [&wht_tree, &reorg_wht] {
        let plan = WhtPlan::new(tree.clone()).expect("valid tree");
        let mut data: Vec<f64> = (0..plan.n()).map(|i| (i % 17) as f64 - 8.0).collect();
        report
            .executions
            .push(plan.try_profile(&mut data).expect("wht profile"));
    }

    // --- parallel batch: per-item queue/run timings feed BatchMetrics ---
    let batch_plan = DftPlan::new(dft_tree.clone(), Direction::Forward).expect("valid tree");
    let signals = 8;
    let inputs = vec![Complex64::ONE; DFT_N * signals];
    let mut outputs = vec![Complex64::ZERO; DFT_N * signals];
    let batch = try_execute_dft_batch(&batch_plan, &inputs, &mut outputs, 2).expect("batch");
    report.batches.push(batch.metrics("dft-smoke-batch"));

    // --- scheduler outcomes: one batch per shed path, so `--check` can
    //     gate that deadline_expired/cancelled/steals actually flow into
    //     the report (schema v2) rather than silently reading as zero ---
    let expired = execute_batch_scheduled(
        (0..8usize).collect(),
        &BatchOptions::with_threads(2).deadline(std::time::Duration::ZERO),
        || (),
        |_idx, item, _| {
            std::hint::black_box(item);
        },
    );
    report.batches.push(expired.metrics("sched-deadline-batch"));
    let token = CancelToken::new();
    token.cancel();
    let cancelled = execute_batch_scheduled(
        (0..8usize).collect(),
        &BatchOptions::with_threads(2).cancel_token(token),
        || (),
        |_idx, item, _| {
            std::hint::black_box(item);
        },
    );
    report
        .batches
        .push(cancelled.metrics("sched-cancelled-batch"));

    // --- wisdom: save/load/hit cycle through the counter sink ---
    let dir = std::env::temp_dir().join(format!("ddl-obs-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("wisdom.json");
    let mut rec = Recorder::new();
    let mut wisdom = Wisdom::load_with(&path, &mut rec).expect("fresh wisdom");
    let cfg = PlannerConfig::ddl_analytical();
    wisdom
        .get_or_plan_dft_with(DFT_N, &cfg, &mut rec)
        .expect("plan into wisdom"); // miss + plan
    wisdom.save_with(&path, &mut rec).expect("save wisdom");
    let mut wisdom = Wisdom::load_with(&path, &mut rec).expect("reload wisdom");
    wisdom
        .get_or_plan_dft_with(DFT_N, &cfg, &mut rec)
        .expect("recall from wisdom"); // hit
    merge_counters(&mut report.counters, &rec);
    std::fs::remove_dir_all(&dir).ok();

    match metrics_out {
        Some(path) => ddl_bench::write_metrics_report(&report, path),
        None => println!("{}", report.to_pretty_json()),
    }
    ExitCode::SUCCESS
}

/// Validates an emitted report through the shared `ddl-core` dispatcher
/// and enforces the `ddl-metrics` invariants CI gates on.
fn check_report(path: &Path) -> ExitCode {
    let report = match ddl_core::check_report(path) {
        Ok(ddl_core::CheckedReport::Metrics(r)) => *r,
        Ok(other) => {
            return fail(format!(
                "{}: expected a ddl-metrics report, found schema {:?}",
                path.display(),
                other.schema()
            ))
        }
        Err(e) => return fail(format!("invalid report: {e}")),
    };

    if report.planner.is_empty() {
        return fail("planner section is empty".into());
    }
    for run in &report.planner {
        if run.states == 0 || run.candidates == 0 {
            return fail(format!(
                "planner run ({} n={}, {}) explored no states/candidates",
                run.transform, run.n, run.strategy
            ));
        }
    }
    for t in ["dft", "wht"] {
        if !report.executions.iter().any(|e| e.transform == t) {
            return fail(format!("no {t} execution in report"));
        }
    }
    for exec in &report.executions {
        if exec.total_ns == 0 {
            return fail(format!(
                "{} n={} execution has zero wall-clock time",
                exec.transform, exec.n
            ));
        }
        let sum = exec.stages.stage_sum_ns();
        if sum > exec.total_ns {
            return fail(format!(
                "{} n={}: stage sum {}ns exceeds total {}ns",
                exec.transform, exec.n, sum, exec.total_ns
            ));
        }
    }
    for t in ["dft", "wht"] {
        if !report
            .executions
            .iter()
            .any(|e| e.transform == t && e.reorg_points > 0)
        {
            return fail(format!("no {t} execution exercised a reorganization stage"));
        }
    }
    if report.counters.is_empty() {
        return fail("counters section is empty".into());
    }
    // Scheduler outcome accounting (schema v2): every batch partitions
    // its items into exactly one outcome, and the smoke run must have
    // exercised both shed paths.
    for b in &report.batches {
        let accounted = b.ok + b.panicked + b.deadline_expired + b.cancelled;
        if accounted != b.items {
            return fail(format!(
                "batch {:?}: outcomes sum to {accounted} but batch has {} items",
                b.label, b.items
            ));
        }
    }
    if !report.batches.iter().any(|b| b.deadline_expired > 0) {
        return fail("no batch recorded a deadline-expired item".into());
    }
    if !report.batches.iter().any(|b| b.cancelled > 0) {
        return fail("no batch recorded a cancelled item".into());
    }

    println!(
        "ok: {} planner runs, {} executions, {} batches, {} counters",
        report.planner.len(),
        report.executions.len(),
        report.batches.len(),
        report.counters.len()
    );
    ExitCode::SUCCESS
}

fn fail(msg: String) -> ExitCode {
    eprintln!("metrics check failed: {msg}");
    ExitCode::from(1)
}
