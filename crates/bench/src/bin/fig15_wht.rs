//! Fig. 15 — WHT performance: time per point, DDL vs SDL.
//!
//! The paper's Fig. 15 plots execution time per data point of the CMU
//! WHT package (WHT SDL) against the DDL-modified version across sizes
//! on four platforms. Data points are `f64` (8 bytes). Both series come
//! from measured DP sweeps, exactly like the FFT figure.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin fig15_wht [--max-log-n 22] [--quick] [--metrics-out <path>]
//! ```

use ddl_bench::host;
use ddl_bench::{measure_floor, measured_cfg, parse_sweep_args, wisdom_path, SweepArgs};
use ddl_core::measure::time_per_point_ns;
use ddl_core::obs::{merge_counters, Counter, PlannerRunMetrics};
use ddl_core::planner::{time_wht_tree, try_plan_wht_sweep_with, PlannerConfig, Strategy};
use ddl_core::wisdom::Wisdom;
use ddl_core::{MetricsReport, Recorder, WhtPlan};

fn main() {
    let SweepArgs {
        max_log,
        quick,
        metrics_out,
    } = parse_sweep_args();
    let max_log = if quick { max_log.min(16) } else { max_log };
    let max_n = 1usize << max_log;
    let floor = measure_floor(quick);
    let mut report = MetricsReport::new();

    // WHT points are 8 bytes: the planner threshold doubles in points.
    let wht_cfg = |s: Strategy| PlannerConfig {
        cache_points: host::l2_points(8),
        ..measured_cfg(s, quick)
    };

    // One recorder per planning sweep: its counters become a planner-run
    // entry in the metrics report.
    let mut observed_sweep = |label: Strategy| {
        let cfg = wht_cfg(label);
        let mut rec = Recorder::new();
        let t0 = std::time::Instant::now();
        let out = try_plan_wht_sweep_with(max_n, &cfg, &mut rec).unwrap_or_else(|e| panic!("{e}"));
        let plan_seconds = t0.elapsed().as_secs_f64();
        let best = &out.last().expect("non-empty sweep").1;
        report.planner.push(PlannerRunMetrics {
            transform: "wht".into(),
            n: max_n,
            strategy: label.label().into(),
            backend: cfg.backend.label().into(),
            states: rec.counter_value(Counter::PlannerStates),
            candidates: rec.counter_value(Counter::PlannerCandidates),
            memo_hits: rec.counter_value(Counter::PlannerMemoHits),
            cost: best.cost,
            plan_seconds,
            tree: ddl_core::grammar::print_wht(&best.tree),
        });
        merge_counters(&mut report.counters, &rec);
        out
    };

    eprintln!("planning WHT SDL sweep ...");
    let sdl = observed_sweep(Strategy::Sdl);
    eprintln!("planning WHT DDL sweep ...");
    let ddl = observed_sweep(Strategy::Ddl);

    // share with table5 via the wisdom file
    let path = wisdom_path();
    let mut wisdom = Wisdom::load(&path).unwrap_or_default();
    for (n, o) in sdl.iter() {
        wisdom.put(
            "wht",
            *n,
            Strategy::Sdl,
            &o.tree,
            o.cost,
            "fig15 measured sweep",
        );
    }
    for (n, o) in ddl.iter() {
        wisdom.put(
            "wht",
            *n,
            Strategy::Ddl,
            &o.tree,
            o.cost,
            "fig15 measured sweep",
        );
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    wisdom.save(&path).ok();

    println!("# Fig. 15: WHT time per point (ns), f64 data");
    println!(
        "{:>8} {:>12} {:>12} {:>9}",
        "log2(n)", "SDL ns/pt", "DDL ns/pt", "SDL/DDL"
    );

    for log_n in 10..=max_log {
        let n = 1usize << log_n;
        let sdl_tree = &sdl[(log_n - 1) as usize].1.tree;
        let ddl_tree = &ddl[(log_n - 1) as usize].1.tree;
        let t_sdl = time_wht_tree(sdl_tree, n, 1, floor, 3);
        let t_ddl = time_wht_tree(ddl_tree, n, 1, floor, 3);

        if metrics_out.is_some() {
            // One instrumented execution per tree: the per-stage
            // (leaf/reorg) breakdown of the WHT recursion.
            for tree in [sdl_tree, ddl_tree] {
                let plan = WhtPlan::new(tree.clone()).expect("planner generated an invalid tree");
                let mut data: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
                match plan.try_profile(&mut data) {
                    Ok(m) => report.executions.push(m),
                    Err(e) => eprintln!("warning: could not profile n={n}: {e}"),
                }
            }
        }
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>9.2}",
            log_n,
            time_per_point_ns(n, t_sdl),
            time_per_point_ns(n, t_ddl),
            t_sdl / t_ddl
        );
    }

    println!("\n# chosen trees at the largest size:");
    println!(
        "#   SDL: {}",
        ddl_core::grammar::print_wht(&sdl.last().unwrap().1.tree)
    );
    println!(
        "#   DDL: {}",
        ddl_core::grammar::print_wht(&ddl.last().unwrap().1.tree)
    );
    println!("# paper shape: flat time/point below the cache, SDL blowing up above it,");
    println!("# DDL staying flat longer (paper: up to 3.52x on UltraSPARC III)");

    if let Some(path) = metrics_out {
        ddl_bench::write_metrics_report(&report, &path);
    }
}
