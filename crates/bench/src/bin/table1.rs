//! Table I — alternate factorization trees: SDL vs DDL, measured vs
//! estimated.
//!
//! The paper's Table I lists hand-picked factorization trees of a 2^20
//! point FFT on Alpha 21264, with measured execution times for SDL and
//! DDL variants and — for the DDL trees — the execution time *estimated*
//! by the cost model of Eq. (3), validating that the model ranks trees
//! like reality does.
//!
//! This binary reproduces all three columns on the host: a spread of
//! representative trees (right-most, balanced, and their `ctddl`
//! variants, plus trees with reorganization at two nodes, as in the
//! paper's table) is measured, and each tree's analytical estimate is
//! printed alongside.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin table1 [--max-log-n 20] [--quick]
//! ```

use ddl_bench::{measure_floor, parse_sweep_args, SweepArgs};
use ddl_core::grammar::{parse, print_dft};
use ddl_core::planner::time_dft_tree;
use ddl_core::{CacheModel, Tree};

/// Representative tree expressions for size `2^p`, mirroring the paper's
/// Table I structure: unfactorized-ish, right-most, balanced, and DDL
/// variants with one or two reorganized nodes.
fn candidate_exprs(p: u32) -> Vec<String> {
    assert!(p >= 12, "table1 needs at least 2^12");
    let n = 1u64 << p;
    let half = 1u64 << (p / 2);
    let other = n / half;
    let quarter_l = 1u64 << (p / 4);
    let ql_rest = half / quarter_l;
    vec![
        // right-most SDL and its root-DDL variant
        format!(
            "ct(64,ct(64,ct({},{})))",
            1u64 << ((p - 12) / 2),
            n / 64 / 64 / (1u64 << ((p - 12) / 2))
        ),
        format!(
            "ctddl(64,ct(64,ct({},{})))",
            1u64 << ((p - 12) / 2),
            n / 64 / 64 / (1u64 << ((p - 12) / 2))
        ),
        // balanced SDL and DDL variants
        format!(
            "ct(ct({quarter_l},{ql_rest}),ct({quarter_l},{}))",
            other / quarter_l
        ),
        format!(
            "ctddl(ct({quarter_l},{ql_rest}),ct({quarter_l},{}))",
            other / quarter_l
        ),
        // reorganization applied at two nodes (the paper's double-ctddl rows)
        format!(
            "ctddl(ctddl({quarter_l},{ql_rest}),ct({quarter_l},{}))",
            other / quarter_l
        ),
        format!(
            "ctddl(ctddl({quarter_l},{ql_rest}),ctddl({quarter_l},{}))",
            other / quarter_l
        ),
    ]
}

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let p = if quick {
        max_log.min(18)
    } else {
        max_log.min(20)
    };
    let n = 1usize << p;
    let model = CacheModel::paper_default();
    let floor = measure_floor(quick);

    println!("# Table I: alternate factorization trees for a 2^{p}-point FFT");
    println!(
        "{:>12} {:>12} {:>8} | tree",
        "measured ms", "est. ms", "reorgs"
    );

    let mut rows: Vec<(f64, f64, Tree)> = Vec::new();
    for expr in candidate_exprs(p) {
        let tree = parse(&expr).unwrap_or_else(|e| panic!("bad expr {expr}: {e}"));
        assert_eq!(tree.size(), n, "expr {expr} has wrong size");
        let measured = time_dft_tree(&tree, n, 1, floor, 3);
        let estimated = model.tree_cost_ns(&tree, 1) * 1e-9;
        rows.push((measured, estimated, tree));
    }

    let best_measured = rows.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    for (measured, estimated, tree) in &rows {
        let marker = if *measured == best_measured {
            " <- best"
        } else {
            ""
        };
        println!(
            "{:>12.3} {:>12.3} {:>8} | {}{}",
            measured * 1e3,
            estimated * 1e3,
            tree.reorg_count(),
            print_dft(tree),
            marker
        );
    }

    // Rank agreement between model and measurement (the point of the
    // paper's estimated column).
    let mut by_measured: Vec<usize> = (0..rows.len()).collect();
    by_measured.sort_by(|&a, &b| rows[a].0.total_cmp(&rows[b].0));
    let mut by_estimated: Vec<usize> = (0..rows.len()).collect();
    by_estimated.sort_by(|&a, &b| rows[a].1.total_cmp(&rows[b].1));
    println!(
        "\n# fastest tree by measurement: {}",
        print_dft(&rows[by_measured[0]].2)
    );
    println!(
        "# fastest tree by model:       {}",
        print_dft(&rows[by_estimated[0]].2)
    );
    println!("# paper shape: the estimate tracks measurement closely enough to rank");
    println!("# trees (Table I validates Eq. (3) the same way)");
}
