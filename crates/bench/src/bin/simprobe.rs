use ddl_cachesim::CacheConfig;
use ddl_core::grammar::parse;
use ddl_core::planner::{plan_dft, PlannerConfig};
use ddl_core::traced::simulate_dft;
use ddl_core::DftPlan;
use ddl_num::Direction;

fn main() {
    let cache = CacheConfig::paper_default(64);
    let n = 1usize << 18;
    let sdl = plan_dft(n, &PlannerConfig::sdl_analytical());
    let ddl = plan_dft(n, &PlannerConfig::ddl_analytical());
    println!("SDL-planned: {}", sdl.tree);
    println!("DDL-planned: {}", ddl.tree);
    for (label, expr) in [
        ("sdl-planned", format!("{}", sdl.tree)),
        ("ddl-planned", format!("{}", ddl.tree)),
        ("rightmost64", "ct(64,ct(64,64))".to_string()),
        ("rm-rootddl", "ctddl(64,ct(64,64))".to_string()),
        ("balanced", "ct(ct(16,32),ct(16,32))".to_string()),
        ("bal-rootddl", "ctddl(ct(16,32),ct(16,32))".to_string()),
        (
            "bal-all-ddl",
            "ctddl(ctddl(16,32),ctddl(16,32))".to_string(),
        ),
    ] {
        let tree = parse(&expr).unwrap();
        let plan = DftPlan::new(tree, Direction::Forward).unwrap();
        let s = simulate_dft(&plan, cache);
        println!(
            "{label:>12}: miss {:6.2}%  misses {:>9}  accesses {:>9}",
            s.miss_rate() * 100.0,
            s.misses,
            s.accesses
        );
    }
}
