//! Fig. 9 — cache miss rate vs FFT size, DDL vs SDL.
//!
//! Reproduces the paper's simulation: a 512 KB direct-mapped cache with a
//! fixed line size, 16-byte complex points, FFT sizes swept across the
//! cache boundary (the cache holds 2^15 points). The SDL and DDL planners
//! both optimize *for the simulated machine* (the simulated cost
//! backend), exactly as the paper's planners optimized for the machines
//! its simulations model; the resulting trees then execute under the
//! trace-driven simulator and their miss rates form the figure's two
//! series. Everything is deterministic.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin fig9 [--max-log-n 20] [--quick]
//! ```

use ddl_bench::{parse_sweep_args, SweepArgs};
use ddl_cachesim::CacheConfig;
use ddl_core::planner::{plan_dft_sweep, PlannerConfig};
use ddl_core::traced::simulate_dft;
use ddl_core::DftPlan;
use ddl_num::Direction;

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let max_log = if quick {
        max_log.min(16)
    } else {
        max_log.min(20)
    };
    let cache = CacheConfig::paper_default(64);

    eprintln!("planning SDL sweep against the simulated cache ...");
    let sdl = plan_dft_sweep(1 << max_log, &PlannerConfig::sdl_simulated(cache, 16));
    eprintln!("planning DDL sweep against the simulated cache ...");
    let ddl = plan_dft_sweep(1 << max_log, &PlannerConfig::ddl_simulated(cache, 16));

    println!("# Fig. 9: miss rate vs FFT size (512 KB direct-mapped, 64 B lines)");
    println!("# cache capacity = 2^15 complex points");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "log2(n)", "SDL miss%", "DDL miss%", "reduction%"
    );

    for log_n in 12..=max_log {
        let idx = (log_n - 1) as usize;
        let sdl_stats = simulate_dft(
            &DftPlan::new(sdl[idx].1.tree.clone(), Direction::Forward).unwrap(),
            cache,
        );
        let ddl_stats = simulate_dft(
            &DftPlan::new(ddl[idx].1.tree.clone(), Direction::Forward).unwrap(),
            cache,
        );
        let (s, d) = (sdl_stats.miss_rate() * 100.0, ddl_stats.miss_rate() * 100.0);
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.1}",
            log_n,
            s,
            d,
            if s > 0.0 { (s - d) / s * 100.0 } else { 0.0 }
        );
    }
    println!("\n# paper shape: series coincide below 2^15 points, DDL lower above");
    println!("# (paper reports up to a 25% lower miss rate at 64 B lines)");
}
