//! Tables III/IV analogue: the experimental platform.
//!
//! The paper tabulates each platform's clock, cache hierarchy, compiler
//! and flags (Tables III and IV). This binary prints the same inventory
//! for the host the reproduction runs on.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin platform
//! ```

use ddl_bench::host;

fn main() {
    println!("== Platform parameters (paper Tables III/IV analogue) ==\n");
    println!("CPU:          {}", host::cpu_model());
    println!(
        "cores:        {}",
        std::thread::available_parallelism()
            .map(|n| n.get().to_string())
            .unwrap_or_else(|_| "unknown".into())
    );

    println!("\ndata caches:");
    println!(
        "  {:<6} {:>12} {:>10} {:>8} {:>16} {:>16}",
        "level", "size", "line", "ways", "complex points", "f64 points"
    );
    for (level, size, line, ways) in host::caches() {
        println!(
            "  L{:<5} {:>12} {:>10} {:>8} {:>16} {:>16}",
            level,
            format!("{} KiB", size / 1024),
            format!("{line} B"),
            ways,
            size / 16,
            size / 8
        );
    }

    println!("\ntoolchain:");
    println!("  compiler:   rustc (see `rustc --version` of the build)");
    println!("  profile:    release, opt-level=3, codegen-units=1, lto=thin");
    println!("  note:       the paper's Table IV lists `cc -O5`/`-Ofast` etc.; the");
    println!("              equivalent here is the workspace release profile above.");

    println!("\npaper platforms for comparison (Table III):");
    println!("  UltraSPARC III  750 MHz, L2 8 MB     (64 B lines)");
    println!("  Alpha 21264     500 MHz, L2 2 MB     (64 B lines)");
    println!("  MIPS R10000     195 MHz, L2 1 MB     (32 B lines)");
    println!("  Pentium 4       1.5 GHz, L2 256 KB   (64 B lines)");
}
