//! Ablation (beyond the paper): how much does cache associativity alone
//! close the SDL–DDL gap?
//!
//! The paper's analysis assumes direct-mapped or small set-associative
//! caches (its Section III-B) and the hardware trend since has been
//! toward higher associativity. This binary replays the same SDL and DDL
//! execution traces through caches of identical capacity and line size
//! but increasing associativity, quantifying how much of the DDL
//! advantage is conflict misses (removed by associativity) versus
//! spatial-locality loss (not removed).
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin assoc [--max-log-n 18] [--quick]
//! ```

use ddl_bench::{parse_sweep_args, SweepArgs};
use ddl_cachesim::CacheConfig;
use ddl_core::planner::{plan_dft, PlannerConfig};
use ddl_core::traced::simulate_dft;
use ddl_core::DftPlan;
use ddl_num::Direction;

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let log_n = if quick { 16 } else { max_log.min(18) };
    let n = 1usize << log_n;

    let reference = CacheConfig::paper_default(64);
    eprintln!("planning SDL/DDL against the simulated cache ...");
    let sdl = plan_dft(n, &PlannerConfig::sdl_simulated(reference, 16));
    let ddl = plan_dft(n, &PlannerConfig::ddl_simulated(reference, 16));
    let sdl_plan = DftPlan::new(sdl.tree, Direction::Forward).unwrap();
    let ddl_plan = DftPlan::new(ddl.tree, Direction::Forward).unwrap();

    println!("# associativity ablation: 512 KB cache, 64 B lines, n = 2^{log_n}");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "ways", "SDL miss%", "DDL miss%", "gap (pts)"
    );
    for ways in [1usize, 2, 4, 8, 16] {
        let cache = CacheConfig {
            capacity_bytes: 512 * 1024,
            line_bytes: 64,
            associativity: ways,
        };
        let s = simulate_dft(&sdl_plan, cache).miss_rate() * 100.0;
        let d = simulate_dft(&ddl_plan, cache).miss_rate() * 100.0;
        println!("{:>8} {:>12.2} {:>12.2} {:>12.2}", ways, s, d, s - d);
    }
    println!("\n# conflict misses shrink with associativity; the residual gap is the");
    println!("# spatial-locality component that only the layout change removes");
}
