//! Ablation (beyond the paper): TLB behaviour of SDL vs DDL trees.
//!
//! The paper sets TLB misses aside ("not critical to the performance for
//! the small sized transforms obtained after factorization", Section
//! III-B) — true for its machines, but on modern hosts page-granular
//! strides exhaust the dTLB long before a multi-megabyte L2 fills. This
//! binary replays SDL and DDL execution traces through a cache + dTLB
//! pair and reports both miss sources side by side.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin tlb_ablation [--max-log-n 20] [--quick]
//! ```

use ddl_bench::{parse_sweep_args, SweepArgs};
use ddl_cachesim::{CacheConfig, CacheWithTlb, Tlb};
use ddl_core::planner::{plan_dft_sweep, PlannerConfig};
use ddl_core::traced::simulate_dft_into;
use ddl_core::DftPlan;
use ddl_num::Direction;

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let max_log = if quick {
        max_log.min(16)
    } else {
        max_log.min(20)
    };
    let cache = CacheConfig::paper_default(64);

    eprintln!("planning SDL/DDL sweeps against the simulated cache ...");
    let sdl = plan_dft_sweep(1 << max_log, &PlannerConfig::sdl_simulated(cache, 16));
    let ddl = plan_dft_sweep(1 << max_log, &PlannerConfig::ddl_simulated(cache, 16));

    println!("# TLB ablation: 64-entry 4-way dTLB, 4 KiB pages, + paper cache");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "log2(n)", "SDL tlb-m%", "DDL tlb-m%", "SDL cache-m%", "DDL cache-m%"
    );
    for log_n in 14..=max_log {
        let idx = (log_n - 1) as usize;
        let run = |tree: &ddl_core::Tree| {
            let plan = DftPlan::new(tree.clone(), Direction::Forward).unwrap();
            let mut both = CacheWithTlb::new(cache, Tlb::typical_l1_dtlb());
            simulate_dft_into(&plan, &mut both);
            (both.tlb.stats().miss_rate(), both.cache.stats().miss_rate())
        };
        let (st, sc) = run(&sdl[idx].1.tree);
        let (dt, dc) = run(&ddl[idx].1.tree);
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
            log_n,
            st * 100.0,
            dt * 100.0,
            sc * 100.0,
            dc * 100.0
        );
    }
    println!("\n# DDL's unit-stride conversion helps the TLB for the same reason it");
    println!("# helps lines: fewer pages touched per unit of useful data");
}
