//! Ablation (beyond the paper): TLB behaviour of SDL vs DDL trees.
//!
//! The paper sets TLB misses aside ("not critical to the performance for
//! the small sized transforms obtained after factorization", Section
//! III-B) — true for its machines, but on modern hosts page-granular
//! strides exhaust the dTLB long before a multi-megabyte L2 fills. This
//! binary attributes SDL and DDL execution traces simultaneously against
//! the paper cache and an L1/L2/d-TLB hierarchy and reports line and
//! page miss sources side by side.
//!
//! The table is derived end-to-end from the `ddl-attribution` v2
//! artifact, not from ad-hoc counters: **emit** attributes each plan
//! once through the hierarchy attributor and writes the artifact;
//! **render** reads it back — re-verifying per-node conservation at
//! every level in the parse — and prints the table from the stored
//! counters. The committed `results/tlb_ablation.txt` regenerates with:
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin tlb_ablation -- \
//!     --artifact target/tlb-ablation.json --out results/tlb_ablation.txt
//! ```
//!
//! `--emit` / `--render` restrict the run to one half (CI emits, checks
//! the artifact through `bench_suite --check`, then renders and diffs).

use ddl_analyze::annotate_static;
use ddl_bench::die;
use ddl_cachesim::{CacheConfig, HierarchyConfig};
use ddl_core::attrib::{attribute_dft_hier, AttributionReport, AttributionRun};
use ddl_core::planner::{plan_dft_sweep, PlannerConfig};
use ddl_core::DftPlan;
use ddl_num::Direction;
use std::path::{Path, PathBuf};

/// Smallest table row: below 2^14 both layouts fit every level on the
/// simulated geometry and the rows are identical noise.
const FIRST_LOG: u32 = 14;

struct Args {
    max_log: u32,
    quick: bool,
    artifact: PathBuf,
    emit_only: bool,
    render_only: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        max_log: 22,
        quick: false,
        artifact: PathBuf::from("target/tlb-ablation.json"),
        emit_only: false,
        render_only: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-log-n" => {
                parsed.max_log = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-log-n needs an integer"));
            }
            "--quick" => parsed.quick = true,
            "--artifact" => {
                parsed.artifact = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--artifact needs a path")),
                );
            }
            "--emit" => parsed.emit_only = true,
            "--render" => parsed.render_only = true,
            "--out" => {
                parsed.out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            other => die(&format!(
                "unknown argument {other} (expected --max-log-n <k> | --quick | \
                 --artifact <path> | --emit | --render | --out <path>)"
            )),
        }
    }
    if parsed.emit_only && parsed.render_only {
        die("--emit and --render are mutually exclusive (omit both for emit+render)");
    }
    parsed
}

fn main() {
    let args = parse_args();
    let max_log = if args.quick {
        args.max_log.min(16)
    } else {
        args.max_log.min(20)
    };

    if !args.render_only {
        emit(&args.artifact, max_log);
    }
    if !args.emit_only {
        let table = render(&args.artifact);
        match &args.out {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).ok();
                }
                if let Err(e) = std::fs::write(path, &table) {
                    die(&format!("writing {}: {e}", path.display()));
                }
                eprintln!("table written to {}", path.display());
            }
            None => print!("{table}"),
        }
    }
}

/// Plans both sweeps against the simulated cache, attributes every
/// table-sized plan once through the L1/L2/d-TLB hierarchy attributor,
/// and writes the `ddl-attribution` v2 artifact.
fn emit(path: &Path, max_log: u32) {
    let cache = CacheConfig::paper_default(64);
    let hier = HierarchyConfig::typical(cache);

    eprintln!("planning SDL/DDL sweeps against the simulated cache ...");
    let sdl = plan_dft_sweep(1 << max_log, &PlannerConfig::sdl_simulated(cache, 16));
    let ddl = plan_dft_sweep(1 << max_log, &PlannerConfig::ddl_simulated(cache, 16));

    let mut report = AttributionReport {
        label: "tlb-ablation".to_string(),
        runs: Vec::new(),
    };
    for log_n in FIRST_LOG..=max_log {
        let idx = (log_n - 1) as usize;
        for (name, sweep) in [("sdl", &sdl), ("ddl", &ddl)] {
            let plan = match DftPlan::new(sweep[idx].1.tree.clone(), Direction::Forward) {
                Ok(p) => p,
                Err(e) => die(&format!("compiling {name} 2^{log_n} plan: {e}")),
            };
            let mut run = match attribute_dft_hier(&plan, 1, cache, hier) {
                Ok(r) => r,
                Err(e) => die(&format!("attributing {name} 2^{log_n}: {e}")),
            };
            run.strategy = Some(name.to_string());
            annotate_static(&mut run);
            report.runs.push(run);
            eprintln!("attributed {name} 2^{log_n}");
        }
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Err(e) = report.write(path) {
        die(&format!("writing artifact: {e}"));
    }
    eprintln!(
        "attribution artifact written to {} ({} runs)",
        path.display(),
        report.runs.len()
    );
}

/// Reads the artifact back (the parse re-verifies node-sum conservation
/// and L2/L1 coupling at every level) and renders the ablation table
/// purely from the stored counters.
fn render(path: &Path) -> String {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => die(&format!("reading {}: {e}", path.display())),
    };
    let report = match AttributionReport::parse(&text) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", path.display())),
    };

    let pick = |strategy: &str, n: usize| -> &AttributionRun {
        report
            .runs
            .iter()
            .find(|r| r.transform == "dft" && r.n == n && r.strategy.as_deref() == Some(strategy))
            .unwrap_or_else(|| {
                die(&format!(
                    "artifact has no {strategy} dft run at n={n}; re-run --emit"
                ))
            })
    };
    let tlb_rate = |run: &AttributionRun| -> f64 {
        run.tlb_miss_rate().unwrap_or_else(|| {
            die(&format!(
                "run {} n={} has no hierarchy attribution; re-run --emit",
                run.transform, run.n
            ))
        })
    };

    let mut logs: Vec<u32> = report
        .runs
        .iter()
        .filter(|r| r.transform == "dft")
        .map(|r| r.n.trailing_zeros())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    logs.sort_unstable();
    if logs.is_empty() {
        die("artifact has no dft runs");
    }

    // The d-TLB geometry in the header comes from the artifact, so the
    // title can never drift from what was actually simulated.
    let hier = pick("sdl", 1 << logs[0])
        .hierarchy
        .as_ref()
        .unwrap_or_else(|| die("artifact runs lack hierarchy attribution; re-run --emit"));
    let mut out = format!(
        "# TLB ablation: {}-entry {}-way dTLB, {} KiB pages, + paper cache\n",
        hier.config.tlb_entries,
        hier.config.tlb_ways,
        hier.config.tlb_page_bytes / 1024
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}\n",
        "log2(n)", "SDL tlb-m%", "DDL tlb-m%", "SDL cache-m%", "DDL cache-m%"
    ));
    for &log_n in &logs {
        let n = 1usize << log_n;
        let (s, d) = (pick("sdl", n), pick("ddl", n));
        out.push_str(&format!(
            "{:>8} {:>12.2} {:>12.2} {:>14.2} {:>14.2}\n",
            log_n,
            tlb_rate(s) * 100.0,
            tlb_rate(d) * 100.0,
            s.totals.miss_rate() * 100.0,
            d.totals.miss_rate() * 100.0
        ));
    }
    out.push_str("\n# DDL's unit-stride conversion helps the TLB for the same reason it\n");
    out.push_str("# helps lines: fewer pages touched per unit of useful data\n");
    out
}
