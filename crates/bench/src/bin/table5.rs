//! Table V — optimal WHT factorization trees chosen by dynamic
//! programming, SDL vs DDL, per size.
//!
//! The paper's Table V prints, for each WHT size on Alpha 21264, the tree
//! the SDL search selects and the tree the DDL search selects — showing
//! that below the cache they coincide, and above it the DDL trees apply
//! `splitddl` reorganizations while SDL trees stay close to right-most
//! shapes. This binary prints the same comparison from the measured
//! planner on the host (use `--quick` for the analytical planner's
//! deterministic equivalent).
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin table5 [--max-log-n 22] [--quick]
//! ```

use ddl_bench::host;
use ddl_bench::{measured_cfg, parse_sweep_args, plan_cached, SweepArgs};
use ddl_core::grammar::print_wht;
use ddl_core::planner::{PlannerConfig, Strategy};

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let max_log = if quick { max_log.min(16) } else { max_log };

    let cfg = |s: Strategy| PlannerConfig {
        cache_points: host::l2_points(8),
        ..measured_cfg(s, quick)
    };
    // plan_cached reuses fig15_wht's wisdom entries when present
    println!("# Table V: optimal WHT factorizations (dynamic programming output)");
    for log_n in 8..=max_log {
        let n = 1usize << log_n;
        let s = plan_cached("wht", n, &cfg(Strategy::Sdl));
        let d = plan_cached("wht", n, &cfg(Strategy::Ddl));
        println!("n = 2^{log_n}");
        println!("  SDL: {}", print_wht(&s));
        println!(
            "  DDL: {}   ({} reorg node(s))",
            print_wht(&d),
            d.reorg_count()
        );
    }
    println!("\n# paper shape: identical trees below the cache size; splitddl nodes");
    println!("# appearing above it, with DDL trees more balanced than SDL's");
}
