//! Developer probe: measure hand-picked factorization trees.
//!
//! Not one of the paper's artifacts — a quick tool for exploring how
//! specific tree shapes behave on the host, useful when interpreting the
//! planner's choices.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin probe
//! ```

use ddl_core::grammar::parse;
use ddl_core::measure::fft_mflops;
use ddl_core::planner::time_dft_tree;

fn main() {
    for (log_n, exprs) in [
        (
            18u32,
            vec![
                "ct(64,ct(64,64))",
                "ctddl(64,ct(64,64))",
                "ct(ct(16,32),ct(16,32))",
                "ctddl(ctddl(16,32),ct(16,32))",
            ],
        ),
        (
            20u32,
            vec![
                "ct(64,ct(64,ct(16,16)))",
                "ctddl(64,ct(64,ct(16,16)))",
                "ct(ct(32,32),ct(32,32))",
                "ctddl(ct(32,32),ct(32,32))",
                "ctddl(ctddl(32,32),ct(32,32))",
            ],
        ),
        (
            22u32,
            vec![
                "ct(64,ct(64,ct(32,32)))",
                "ctddl(64,ct(64,ct(32,32)))",
                "ct(ct(64,32),ct(64,32))",
                "ctddl(ct(64,32),ct(64,32))",
                "ctddl(ctddl(64,32),ctddl(64,32))",
            ],
        ),
    ] {
        let n = 1usize << log_n;
        println!("== n = 2^{log_n} ==");
        for e in exprs {
            let tree = parse(e).unwrap();
            let t = time_dft_tree(&tree, n, 1, 0.5, 3);
            println!("{:9.3} ms  {:8.1} MFLOPS  {}", t * 1e3, fft_mflops(n, t), e);
        }
    }
}
