//! Table II — number of cache accesses and misses for various FFT sizes.
//!
//! Same simulation as Fig. 9, reported as absolute access/miss counts for
//! the SDL and DDL trees, plus the two deltas the paper calls out in the
//! text: the miss reduction (paper: up to 22.07%) and the access overhead
//! added by reorganization (paper: below 3%).
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin table2 [--max-log-n 22] [--quick]
//! ```

use ddl_bench::{parse_sweep_args, SweepArgs};
use ddl_cachesim::CacheConfig;
use ddl_core::planner::{plan_dft_sweep, PlannerConfig};
use ddl_core::traced::simulate_dft;
use ddl_core::DftPlan;
use ddl_num::Direction;

fn main() {
    let SweepArgs { max_log, quick, .. } = parse_sweep_args();
    let max_log = if quick {
        max_log.min(16)
    } else {
        max_log.min(20)
    };
    let cache = CacheConfig::paper_default(64);

    eprintln!("planning SDL/DDL sweeps against the simulated cache ...");
    let sdl_sweep = plan_dft_sweep(1 << max_log, &PlannerConfig::sdl_simulated(cache, 16));
    let ddl_sweep = plan_dft_sweep(1 << max_log, &PlannerConfig::ddl_simulated(cache, 16));

    println!("# Table II: cache accesses and misses (512 KB direct-mapped, 64 B lines)");
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>12} {:>10} {:>10}",
        "log2(n)", "SDL access", "SDL miss", "DDL access", "DDL miss", "miss -%", "acc +%"
    );

    for log_n in 12..=max_log {
        let idx = (log_n - 1) as usize;
        let s = simulate_dft(
            &DftPlan::new(sdl_sweep[idx].1.tree.clone(), Direction::Forward).unwrap(),
            cache,
        );
        let d = simulate_dft(
            &DftPlan::new(ddl_sweep[idx].1.tree.clone(), Direction::Forward).unwrap(),
            cache,
        );
        let miss_red = if s.misses > 0 {
            (s.misses as f64 - d.misses as f64) / s.misses as f64 * 100.0
        } else {
            0.0
        };
        let acc_over = (d.accesses as f64 - s.accesses as f64) / s.accesses as f64 * 100.0;
        println!(
            "{:>8} {:>14} {:>12} {:>14} {:>12} {:>10.2} {:>10.2}",
            log_n, s.accesses, s.misses, d.accesses, d.misses, miss_red, acc_over
        );
    }
    println!("\n# paper shape: DDL cuts misses (up to ~22%) for sizes above the cache");
    println!("# while adding only a small fraction of extra accesses (< 3%)");
}
