//! Figs. 11–14 — FFT performance: DDL vs SDL vs the FFTW-proxy.
//!
//! The paper's headline figures plot pseudo-MFLOPS (`5 n log2 n / t_us`)
//! of FFT DDL against FFT SDL, and the relative improvement over FFTW,
//! on four platforms. This binary reproduces both series on the host:
//!
//! * **FFT SDL** — tree from the size-only measured DP (the CMU-package
//!   baseline the paper modifies);
//! * **FFT DDL** — tree from the (size, stride) measured DP with
//!   reorganizations (the paper's system);
//! * **FFTW-proxy** — a fixed right-most radix-64 recursion, standing in
//!   for FFTW 2.1.3 (not buildable here; see DESIGN.md substitutions) as
//!   a static-layout cache-oblivious divide-and-conquer baseline.
//!
//! Planning uses one DP sweep per strategy (`plan_dft_sweep`), so the
//! whole figure costs two searches plus the final measurements.
//!
//! ```sh
//! cargo run --release -p ddl-bench --bin fig11_fft [--max-log-n 22] [--quick] [--metrics-out <path>]
//! ```

use ddl_bench::{measure_floor, measured_cfg, parse_sweep_args, wisdom_path, SweepArgs};
use ddl_core::measure::fft_mflops;
use ddl_core::obs::{merge_counters, Counter, PlannerRunMetrics};
use ddl_core::planner::{time_dft_tree, try_plan_dft_sweep_with, Strategy};
use ddl_core::tree::Tree;
use ddl_core::wisdom::Wisdom;
use ddl_core::{DftPlan, MetricsReport, Recorder};
use ddl_num::{Complex64, Direction};

fn main() {
    let SweepArgs {
        max_log,
        quick,
        metrics_out,
    } = parse_sweep_args();
    let max_log = if quick { max_log.min(16) } else { max_log };
    let max_n = 1usize << max_log;
    let floor = measure_floor(quick);
    let mut report = MetricsReport::new();

    // One recorder per planning sweep: its counters become a planner-run
    // entry in the metrics report.
    let mut observed_sweep = |label: Strategy| {
        let cfg = measured_cfg(label, quick);
        let mut rec = Recorder::new();
        let t0 = std::time::Instant::now();
        let out = try_plan_dft_sweep_with(max_n, &cfg, &mut rec).unwrap_or_else(|e| panic!("{e}"));
        let plan_seconds = t0.elapsed().as_secs_f64();
        let best = &out.last().expect("non-empty sweep").1;
        report.planner.push(PlannerRunMetrics {
            transform: "dft".into(),
            n: max_n,
            strategy: label.label().into(),
            backend: cfg.backend.label().into(),
            states: rec.counter_value(Counter::PlannerStates),
            candidates: rec.counter_value(Counter::PlannerCandidates),
            memo_hits: rec.counter_value(Counter::PlannerMemoHits),
            cost: best.cost,
            plan_seconds,
            tree: best.tree.to_string(),
        });
        merge_counters(&mut report.counters, &rec);
        out
    };

    eprintln!("planning SDL sweep (measured DP, one pass) ...");
    let sdl = observed_sweep(Strategy::Sdl);
    eprintln!("planning DDL sweep (measured DP, one pass) ...");
    let ddl = observed_sweep(Strategy::Ddl);

    // share the planning results with the other binaries (table6)
    let path = wisdom_path();
    let mut wisdom = Wisdom::load(&path).unwrap_or_default();
    for (n, o) in sdl.iter() {
        wisdom.put(
            "dft",
            *n,
            Strategy::Sdl,
            &o.tree,
            o.cost,
            "fig11 measured sweep",
        );
    }
    for (n, o) in ddl.iter() {
        wisdom.put(
            "dft",
            *n,
            Strategy::Ddl,
            &o.tree,
            o.cost,
            "fig11 measured sweep",
        );
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    wisdom.save(&path).ok();

    println!("# Figs. 11-14: FFT pseudo-MFLOPS = 5 n log2(n) / t_us");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "log2(n)", "SDL", "DDL", "FFTWpxy", "DDL/SDL", "DDL/pxy"
    );

    for log_n in 10..=max_log {
        let n = 1usize << log_n;
        let sdl_tree = &sdl[(log_n - 1) as usize].1.tree;
        let ddl_tree = &ddl[(log_n - 1) as usize].1.tree;
        let proxy_tree = Tree::rightmost(n, 64);

        let t_sdl = time_dft_tree(sdl_tree, n, 1, floor, 3);
        let t_ddl = time_dft_tree(ddl_tree, n, 1, floor, 3);
        let t_proxy = time_dft_tree(&proxy_tree, n, 1, floor, 3);

        if metrics_out.is_some() {
            // One instrumented execution per tree: the per-stage
            // (leaf/twiddle/reorg) breakdown of Eq. (2)/(3).
            for tree in [sdl_tree, ddl_tree] {
                let plan = DftPlan::new(tree.clone(), Direction::Forward)
                    .expect("planner generated an invalid tree");
                let input = vec![Complex64::ONE; n];
                let mut output = vec![Complex64::ZERO; n];
                match plan.try_profile(&input, &mut output) {
                    Ok(m) => report.executions.push(m),
                    Err(e) => eprintln!("warning: could not profile n={n}: {e}"),
                }
            }
        }

        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10.1} {:>9.2} {:>9.2}",
            log_n,
            fft_mflops(n, t_sdl),
            fft_mflops(n, t_ddl),
            fft_mflops(n, t_proxy),
            t_sdl / t_ddl,
            t_proxy / t_ddl,
        );
    }

    println!("\n# chosen trees at the largest size:");
    println!("#   SDL: {}", sdl.last().unwrap().1.tree);
    println!("#   DDL: {}", ddl.last().unwrap().1.tree);
    println!("# paper shape: DDL tracks SDL below the cache crossover and wins above");
    println!("# it (paper: up to 2.2x over FFT SDL, up to ~2x over FFTW)");

    if let Some(path) = metrics_out {
        ddl_bench::write_metrics_report(&report, &path);
    }
}
