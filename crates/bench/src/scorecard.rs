//! The per-plan hierarchy scorecard artifact (`ddl-scorecard`).
//!
//! A `ddl-attribution` v2 report carries the full per-node trees; this
//! module distills it into one row per attributed run — the plan's
//! whole-run miss rate at the simulated cache, plus the L1/L2/d-TLB
//! rates from the hierarchy attribution and the Case III leaf counts at
//! both line and page geometry. The scorecard is the artifact CI diffs
//! and humans read: "did DDL's reorganizations pay at *every* level of
//! the memory hierarchy for this plan?" answered in one table.
//!
//! Like every artifact in this repo the document is versioned, readers
//! refuse newer versions, and parsing re-verifies the invariants the
//! writer promised (rates in `[0, 1]`, Case III counts bounded by the
//! leaf count) instead of trusting the bytes.

use ddl_core::attrib::AttributionReport;
use ddl_core::json::{self, Json};
use ddl_num::DdlError;
use std::collections::BTreeMap;
use std::path::Path;

/// Schema identifier stamped into every scorecard document.
pub const SCORECARD_SCHEMA: &str = "ddl-scorecard";
/// Current scorecard schema version; readers refuse newer documents.
pub const SCORECARD_VERSION: u64 = 1;

fn scorecard_err(detail: String) -> DdlError {
    DdlError::Metrics { detail }
}

/// One attributed run, reduced to its hierarchy headline numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct ScorecardRow {
    /// `dft` | `wht` | `rfft`.
    pub transform: String,
    /// Transform size.
    pub n: usize,
    /// Planner strategy (`sdl` | `ddl`), or `"unknown"` when the run
    /// predates strategy tagging.
    pub strategy: String,
    /// Factorization-tree expression of the attributed plan.
    pub tree: String,
    /// Whole-run miss rate at the run's primary simulated cache.
    pub line_miss_rate: f64,
    /// Whole-run L1 miss rate from the hierarchy attribution.
    pub l1_miss_rate: f64,
    /// Whole-run L2 miss rate (of L2 accesses, i.e. of L1 misses).
    pub l2_miss_rate: f64,
    /// Whole-run d-TLB miss rate.
    pub tlb_miss_rate: f64,
    /// Classified leaves in the attributed tree.
    pub leaves: u64,
    /// Leaves empirically Case III at line geometry.
    pub case3_leaves: u64,
    /// Leaves empirically Case III at page geometry (the TLB viewed as
    /// a cache whose line is the page).
    pub case3_leaves_page: u64,
}

/// The scorecard document: one row per hierarchy-attributed run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scorecard {
    /// Run label (matches the attribution report it was derived from).
    pub label: String,
    /// One row per run, in report order.
    pub rows: Vec<ScorecardRow>,
}

impl Scorecard {
    /// Distills an attribution report into a scorecard. Every run must
    /// carry a hierarchy attribution: a line-only (v1) report has no
    /// L1/L2/TLB story to summarize, and silently emitting zeros would
    /// fabricate one.
    pub fn from_report(report: &AttributionReport) -> Result<Scorecard, DdlError> {
        let mut rows = Vec::with_capacity(report.runs.len());
        for run in &report.runs {
            let h = run.hierarchy.as_ref().ok_or_else(|| {
                scorecard_err(format!(
                    "run {} n={} has no hierarchy attribution; scorecards need v2 runs",
                    run.transform, run.n
                ))
            })?;
            let (leaves, case3_leaves) = run.case3_leaf_counts();
            let (_, case3_leaves_page) = run.case3_leaf_counts_page().unwrap_or((leaves, 0));
            rows.push(ScorecardRow {
                transform: run.transform.clone(),
                n: run.n,
                strategy: run
                    .strategy
                    .clone()
                    .unwrap_or_else(|| "unknown".to_string()),
                tree: run.tree.clone(),
                line_miss_rate: run.totals.miss_rate(),
                l1_miss_rate: h.totals.l1.miss_rate(),
                l2_miss_rate: h.totals.l2.miss_rate(),
                tlb_miss_rate: h.totals.tlb.miss_rate(),
                leaves,
                case3_leaves,
                case3_leaves_page,
            });
        }
        Ok(Scorecard {
            label: report.label.clone(),
            rows,
        })
    }

    /// Serializes as a pretty-printed versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Json::Str(SCORECARD_SCHEMA.into()));
        m.insert("version".into(), Json::Num(SCORECARD_VERSION as f64));
        m.insert("label".into(), Json::Str(self.label.clone()));
        m.insert(
            "rows".into(),
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        let mut rm = BTreeMap::new();
                        rm.insert("transform".into(), Json::Str(r.transform.clone()));
                        rm.insert("n".into(), Json::Num(r.n as f64));
                        rm.insert("strategy".into(), Json::Str(r.strategy.clone()));
                        rm.insert("tree".into(), Json::Str(r.tree.clone()));
                        rm.insert("line_miss_rate".into(), Json::Num(r.line_miss_rate));
                        rm.insert("l1_miss_rate".into(), Json::Num(r.l1_miss_rate));
                        rm.insert("l2_miss_rate".into(), Json::Num(r.l2_miss_rate));
                        rm.insert("tlb_miss_rate".into(), Json::Num(r.tlb_miss_rate));
                        rm.insert("leaves".into(), Json::Num(r.leaves as f64));
                        rm.insert("case3_leaves".into(), Json::Num(r.case3_leaves as f64));
                        rm.insert(
                            "case3_leaves_page".into(),
                            Json::Num(r.case3_leaves_page as f64),
                        );
                        Json::Obj(rm)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m).pretty()
    }

    /// Parses and re-verifies a scorecard document. Refuses newer
    /// versions; rejects rates outside `[0, 1]` and Case III counts
    /// exceeding the leaf count — the parse is also an invariant check.
    pub fn parse(text: &str) -> Result<Scorecard, DdlError> {
        let doc = json::parse(text).map_err(|e| scorecard_err(format!("scorecard: {e}")))?;
        let m = doc
            .as_obj()
            .ok_or_else(|| scorecard_err("scorecard: not an object".into()))?;
        match m.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCORECARD_SCHEMA => {}
            Some(s) => {
                return Err(scorecard_err(format!(
                    "scorecard: expected schema {SCORECARD_SCHEMA:?}, got {s:?}"
                )))
            }
            None => return Err(scorecard_err("scorecard: missing schema".into())),
        }
        match m.get("version").and_then(Json::as_u64) {
            Some(v) if v <= SCORECARD_VERSION => {}
            Some(v) => {
                return Err(scorecard_err(format!(
                    "scorecard: version {v} is newer than supported {SCORECARD_VERSION}"
                )))
            }
            None => return Err(scorecard_err("scorecard: missing version".into())),
        }
        let label = m
            .get("label")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| scorecard_err("scorecard: missing or non-string label".into()))?;
        let items = match m.get("rows") {
            Some(Json::Arr(items)) => items,
            _ => return Err(scorecard_err("scorecard: missing rows array".into())),
        };
        let mut rows = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let rm = item
                .as_obj()
                .ok_or_else(|| scorecard_err(format!("scorecard: rows[{i}]: not an object")))?;
            let path = format!("rows[{i}]");
            let s = |key: &str| -> Result<String, DdlError> {
                rm.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| scorecard_err(format!("scorecard: {path}.{key}: bad")))
            };
            let u = |key: &str| -> Result<u64, DdlError> {
                rm.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| scorecard_err(format!("scorecard: {path}.{key}: bad")))
            };
            let rate = |key: &str| -> Result<f64, DdlError> {
                rm.get(key)
                    .and_then(Json::as_f64)
                    .filter(|x| x.is_finite() && (0.0..=1.0).contains(x))
                    .ok_or_else(|| {
                        scorecard_err(format!("scorecard: {path}.{key}: not a rate in [0, 1]"))
                    })
            };
            let row = ScorecardRow {
                transform: s("transform")?,
                n: u("n")? as usize,
                strategy: s("strategy")?,
                tree: s("tree")?,
                line_miss_rate: rate("line_miss_rate")?,
                l1_miss_rate: rate("l1_miss_rate")?,
                l2_miss_rate: rate("l2_miss_rate")?,
                tlb_miss_rate: rate("tlb_miss_rate")?,
                leaves: u("leaves")?,
                case3_leaves: u("case3_leaves")?,
                case3_leaves_page: u("case3_leaves_page")?,
            };
            if row.case3_leaves > row.leaves || row.case3_leaves_page > row.leaves {
                return Err(scorecard_err(format!(
                    "scorecard: {path}: Case III count exceeds {} leaves",
                    row.leaves
                )));
            }
            rows.push(row);
        }
        Ok(Scorecard { label, rows })
    }

    /// Writes the document, creating parent directories as needed.
    pub fn write(&self, path: &Path) -> Result<(), DdlError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| scorecard_err(format!("creating {}: {e}", parent.display())))?;
            }
        }
        std::fs::write(path, self.to_json())
            .map_err(|e| scorecard_err(format!("writing {}: {e}", path.display())))
    }

    /// Renders the scorecard as a human-readable table: one row per
    /// plan, miss rates in percent at every level of the hierarchy.
    pub fn render(&self) -> String {
        let mut out = format!("# Hierarchy scorecard: {}\n\n", self.label);
        out.push_str(&format!(
            "{:<5} {:>8} {:<5} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9}\n",
            "plan", "n", "strat", "cache-m%", "l1-m%", "l2-m%", "tlb-m%", "leaves", "case3 l/p"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<5} {:>8} {:<5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7} {:>5}/{}\n",
                r.transform,
                r.n,
                r.strategy,
                r.line_miss_rate * 100.0,
                r.l1_miss_rate * 100.0,
                r.l2_miss_rate * 100.0,
                r.tlb_miss_rate * 100.0,
                r.leaves,
                r.case3_leaves,
                r.case3_leaves_page
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddl_cachesim::{CacheConfig, HierarchyConfig};
    use ddl_core::attrib::{attribute_dft, attribute_dft_hier};
    use ddl_core::DftPlan;
    use ddl_num::Direction;

    fn sample_report() -> AttributionReport {
        let cache = CacheConfig::paper_default(64);
        let plan = DftPlan::from_expr("ctddl(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft_hier(&plan, 1, cache, HierarchyConfig::typical(cache)).unwrap();
        run.strategy = Some("ddl".into());
        AttributionReport {
            label: "test".into(),
            runs: vec![run],
        }
    }

    #[test]
    fn scorecard_round_trips_and_renders() {
        let card = Scorecard::from_report(&sample_report()).unwrap();
        assert_eq!(card.rows.len(), 1);
        let row = &card.rows[0];
        assert_eq!(row.transform, "dft");
        assert_eq!(row.strategy, "ddl");
        assert!(row.leaves > 0);
        let back = Scorecard::parse(&card.to_json()).unwrap();
        assert_eq!(back, card);
        let table = card.render();
        assert!(table.contains("tlb-m%"), "missing column in:\n{table}");
        assert!(table.contains("dft"), "missing row in:\n{table}");
    }

    #[test]
    fn line_only_reports_are_refused() {
        let cache = CacheConfig::paper_default(64);
        let plan = DftPlan::from_expr("ct(16, 4)", Direction::Forward).unwrap();
        let run = attribute_dft(&plan, 1, cache).unwrap();
        let report = AttributionReport {
            label: "v1".into(),
            runs: vec![run],
        };
        let err = Scorecard::from_report(&report).unwrap_err().to_string();
        assert!(err.contains("no hierarchy attribution"), "{err}");
    }

    #[test]
    fn parse_refuses_newer_versions_and_bad_invariants() {
        let card = Scorecard::from_report(&sample_report()).unwrap();
        let text = card.to_json();

        let newer = text.replace("\"version\": 1", "\"version\": 2");
        assert_ne!(newer, text, "version rewrite did not apply");
        let err = Scorecard::parse(&newer).unwrap_err().to_string();
        assert!(err.contains("newer than supported"), "{err}");

        let leaves = card.rows[0].leaves;
        let bad = text.replace(
            &format!("\"case3_leaves\": {}", card.rows[0].case3_leaves),
            &format!("\"case3_leaves\": {}", leaves + 1),
        );
        assert_ne!(bad, text, "garble did not apply");
        let err = Scorecard::parse(&bad).unwrap_err().to_string();
        assert!(err.contains("exceeds"), "{err}");

        let bad_rate = text.replace("\"tlb_miss_rate\": 0", "\"tlb_miss_rate\": 2");
        if bad_rate != text {
            let err = Scorecard::parse(&bad_rate).unwrap_err().to_string();
            assert!(err.contains("rate"), "{err}");
        }
    }
}
