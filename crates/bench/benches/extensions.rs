//! Criterion bench — the extended transform family built on DDL plans:
//! real FFT vs complex FFT (the 2x working-set argument), DCT, and the
//! 2-D row–column transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddl_core::dft2d::Dft2dPlan;
use ddl_core::planner::{plan_dft, PlannerConfig};
use ddl_core::rfft::RfftPlan;
use ddl_core::{DctPlan, DftPlan};
use ddl_num::{Complex64, Direction};

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    let cfg = PlannerConfig::ddl_analytical();

    for log_n in [16u32, 20] {
        let n = 1usize << log_n;
        group.throughput(Throughput::Elements(n as u64));

        // complex FFT reference point
        let cplan = DftPlan::new(plan_dft(n, &cfg).tree, Direction::Forward).unwrap();
        let cx: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 83) as f64, (i % 47) as f64))
            .collect();
        let mut cy = vec![Complex64::ZERO; n];
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("complex_fft", log_n), &n, |b, _| {
            b.iter(|| {
                cplan.execute_with_scratch(&cx, &mut cy, &mut scratch);
                std::hint::black_box(&mut cy);
            });
        });

        // real FFT of the same length
        let rplan = RfftPlan::plan(n, &cfg).unwrap();
        let rx: Vec<f64> = (0..n).map(|i| (i % 83) as f64).collect();
        let mut spec = vec![Complex64::ZERO; rplan.bins()];
        group.bench_with_input(BenchmarkId::new("real_fft", log_n), &n, |b, _| {
            b.iter(|| {
                rplan.forward(&rx, &mut spec);
                std::hint::black_box(&mut spec);
            });
        });

        // DCT-II of the same length
        let dplan = DctPlan::plan(n, &cfg).unwrap();
        let mut dy = vec![0.0f64; n];
        group.bench_with_input(BenchmarkId::new("dct2", log_n), &n, |b, _| {
            b.iter(|| {
                dplan.dct2(&rx, &mut dy);
                std::hint::black_box(&mut dy);
            });
        });
    }

    // 2-D transform at a fixed realistic shape
    let (rows, cols) = (512usize, 512usize);
    let plan2d = Dft2dPlan::new(rows, cols, Direction::Forward, &cfg).unwrap();
    let img: Vec<Complex64> = (0..rows * cols)
        .map(|i| Complex64::from_re((i % 251) as f64))
        .collect();
    let mut out = vec![Complex64::ZERO; rows * cols];
    group.throughput(Throughput::Elements((rows * cols) as u64));
    group.bench_function("fft2d_512x512", |b| {
        b.iter(|| {
            plan2d.execute(&img, &mut out);
            std::hint::black_box(&mut out);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
