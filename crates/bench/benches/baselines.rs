//! Criterion bench — every FFT implementation in the repository on one
//! axis: naive-free baselines vs planned trees vs the fixed six-step
//! schedule.
//!
//! Ablation question: how much of the DDL win is "reorganize at all"
//! (six-step always reorganizes) vs "reorganize where it pays" (the
//! planner's per-node decisions)?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddl_core::planner::{plan_dft, PlannerConfig};
use ddl_core::sixstep::SixStepPlan;
use ddl_core::{DftPlan, Tree};
use ddl_kernels::iterative::fft_radix2_inplace;
use ddl_num::{Complex64, Direction};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);

    for log_n in [16u32, 20] {
        let n = 1usize << log_n;
        group.throughput(Throughput::Elements(n as u64));
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 89) as f64, (i % 55) as f64))
            .collect();

        // iterative radix-2 (in place on a copy)
        group.bench_with_input(BenchmarkId::new("iterative_radix2", log_n), &n, |b, _| {
            let mut data = x.clone();
            b.iter(|| {
                data.copy_from_slice(&x);
                fft_radix2_inplace(&mut data, Direction::Forward);
                std::hint::black_box(&mut data);
            });
        });

        // FFTW-proxy: fixed right-most radix-64 recursion
        let proxy = DftPlan::new(Tree::rightmost(n, 64), Direction::Forward).unwrap();
        let mut y = vec![Complex64::ZERO; n];
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("rightmost_sdl", log_n), &n, |b, _| {
            b.iter(|| {
                proxy.execute_with_scratch(&x, &mut y, &mut scratch);
                std::hint::black_box(&mut y);
            });
        });

        // planner outputs
        for (label, cfg) in [
            ("planned_sdl", PlannerConfig::sdl_analytical()),
            ("planned_ddl", PlannerConfig::ddl_analytical()),
        ] {
            let plan = DftPlan::new(plan_dft(n, &cfg).tree, Direction::Forward).unwrap();
            let mut out = vec![Complex64::ZERO; n];
            let mut s = Vec::new();
            group.bench_with_input(BenchmarkId::new(label, log_n), &n, |b, _| {
                b.iter(|| {
                    plan.execute_with_scratch(&x, &mut out, &mut s);
                    std::hint::black_box(&mut out);
                });
            });
        }

        // fixed six-step schedule
        let six =
            SixStepPlan::balanced(n, Direction::Forward, &PlannerConfig::sdl_analytical()).unwrap();
        let mut out6 = vec![Complex64::ZERO; n];
        group.bench_with_input(BenchmarkId::new("six_step", log_n), &n, |b, _| {
            b.iter(|| {
                six.execute(&x, &mut out6);
                std::hint::black_box(&mut out6);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
