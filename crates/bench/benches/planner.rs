//! Criterion bench — cost of the dynamic-programming search itself.
//!
//! The paper stresses that the search "is performed off line" and has
//! complexity `O(p^2 q^2)`; this bench verifies it stays cheap in
//! practice (analytical backend — the measured backend's cost is the
//! measurements themselves, not the search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddl_core::planner::{plan_dft, plan_dft_sweep, plan_wht, PlannerConfig};

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    for log_n in [12u32, 18, 24] {
        let n = 1usize << log_n;
        group.bench_with_input(BenchmarkId::new("dft_sdl", log_n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(plan_dft(n, &PlannerConfig::sdl_analytical())));
        });
        group.bench_with_input(BenchmarkId::new("dft_ddl", log_n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(plan_dft(n, &PlannerConfig::ddl_analytical())));
        });
        group.bench_with_input(BenchmarkId::new("wht_ddl", log_n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(plan_wht(n, &PlannerConfig::ddl_analytical())));
        });
    }
    group.bench_function("dft_ddl_sweep_2^24", |b| {
        b.iter(|| std::hint::black_box(plan_dft_sweep(1 << 24, &PlannerConfig::ddl_analytical())));
    });
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
