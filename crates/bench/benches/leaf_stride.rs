//! Criterion bench — leaf performance as a function of stride.
//!
//! The paper's Section III-B motivation in benchmark form: a batch of
//! 64-point DFT codelets over a fixed number of points, with the read
//! stride swept from 1 to far beyond the cache. On the paper's machines
//! performance collapses once `size * stride` exceeds the cache; on a
//! modern host the same collapse appears at the L2/TLB boundary. This is
//! the empirical basis for keying the planner's costs on (size, stride).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddl_kernels::dft_leaf_strided;
use ddl_num::{Complex64, Direction};

fn bench_leaf_stride(c: &mut Criterion) {
    let mut group = c.benchmark_group("leaf_stride");
    group.sample_size(10);

    let leaf = 64usize;
    let batch = 4096usize; // 256k points processed per iteration

    for log_stride in [0u32, 4, 8, 12, 16] {
        let stride = 1usize << log_stride;
        // lay the batch out as the executor would: sub-DFT j starts at
        // base j (successive leaves adjacent), elements at `stride`
        let span = (leaf - 1) * stride + batch;
        let src: Vec<Complex64> = (0..span)
            .map(|i| Complex64::new((i % 97) as f64, (i % 61) as f64))
            .collect();
        let mut dst = vec![Complex64::ZERO; leaf * batch];
        group.throughput(Throughput::Elements((leaf * batch) as u64));

        group.bench_with_input(
            BenchmarkId::new("dft64_batch", format!("stride_2^{log_stride}")),
            &stride,
            |b, &s| {
                b.iter(|| {
                    for j in 0..batch {
                        dft_leaf_strided(
                            leaf,
                            Direction::Forward,
                            &src,
                            j,
                            s,
                            &mut dst,
                            j * leaf,
                            1,
                        );
                    }
                    std::hint::black_box(&mut dst);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_stride);
criterion_main!(benches);
