//! Criterion bench — ablation of the reorganization primitives.
//!
//! The DDL premise (paper Section IV-A) is that the reorganization `Dr`
//! costs less than the strided traffic it removes. This bench prices the
//! primitives in isolation: a strided gather, a naive transpose, the
//! tiled transpose the executor actually uses, and the cache-oblivious
//! recursive variant — on a matrix large enough that layout matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddl_layout::{gather_stride, transpose, transpose_blocked, transpose_recursive};
use ddl_num::Complex64;

fn bench_reorg(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorg");
    group.sample_size(10);

    for log_n in [16u32, 20] {
        let n = 1usize << log_n;
        let rows = 1usize << (log_n / 2);
        let cols = n / rows;
        let src: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let mut dst = vec![Complex64::ZERO; n];
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("gather_stride", log_n), &n, |b, _| {
            // gather the first column (rows elements at stride cols),
            // repeated over all columns = one full permutation
            b.iter(|| {
                for c0 in 0..cols {
                    gather_stride(&src, c0, cols, &mut dst[c0 * rows..(c0 + 1) * rows]);
                }
                std::hint::black_box(&mut dst);
            });
        });

        group.bench_with_input(BenchmarkId::new("transpose_naive", log_n), &n, |b, _| {
            b.iter(|| {
                transpose(&src, &mut dst, rows, cols);
                std::hint::black_box(&mut dst);
            });
        });

        group.bench_with_input(BenchmarkId::new("transpose_blocked", log_n), &n, |b, _| {
            b.iter(|| {
                transpose_blocked(&src, &mut dst, rows, cols, 32);
                std::hint::black_box(&mut dst);
            });
        });

        group.bench_with_input(
            BenchmarkId::new("transpose_recursive", log_n),
            &n,
            |b, _| {
                b.iter(|| {
                    transpose_recursive(&src, &mut dst, rows, cols);
                    std::hint::black_box(&mut dst);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reorg);
criterion_main!(benches);
