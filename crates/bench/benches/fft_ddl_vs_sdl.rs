//! Criterion bench: FFT execution, SDL vs DDL trees (statistical
//! companion to the `fig11_fft` binary).
//!
//! Trees come from the deterministic analytical planner so the benchmark
//! is reproducible; run the binary for measured-planner results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddl_core::planner::{plan_dft, PlannerConfig};
use ddl_core::DftPlan;
use ddl_num::{Complex64, Direction};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(10);
    for log_n in [14u32, 18, 20] {
        let n = 1usize << log_n;
        group.throughput(Throughput::Elements(n as u64));
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 101) as f64, (i % 37) as f64))
            .collect();

        for (label, cfg) in [
            ("sdl", PlannerConfig::sdl_analytical()),
            ("ddl", PlannerConfig::ddl_analytical()),
        ] {
            let tree = plan_dft(n, &cfg).tree;
            let plan = DftPlan::new(tree, Direction::Forward).unwrap();
            let mut y = vec![Complex64::ZERO; n];
            let mut scratch = Vec::new();
            group.bench_with_input(BenchmarkId::new(label, log_n), &n, |b, _| {
                b.iter(|| {
                    plan.execute_with_scratch(&x, &mut y, &mut scratch);
                    std::hint::black_box(&mut y);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
