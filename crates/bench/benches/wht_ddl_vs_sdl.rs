//! Criterion bench: WHT execution, SDL vs DDL trees (statistical
//! companion to the `fig15_wht` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddl_core::planner::{plan_wht, CostBackend, PlannerConfig, Strategy};
use ddl_core::{CacheModel, WhtPlan};

fn wht_cfg(strategy: Strategy) -> PlannerConfig {
    let model = CacheModel::from_geometry(512 * 1024, 64, 8);
    PlannerConfig {
        strategy,
        backend: CostBackend::Analytical(model),
        max_leaf: 64,
        cache_points: model.capacity_points,
    }
}

fn bench_wht(c: &mut Criterion) {
    let mut group = c.benchmark_group("wht");
    group.sample_size(10);
    for log_n in [14u32, 18, 20] {
        let n = 1usize << log_n;
        group.throughput(Throughput::Elements(n as u64));
        let base: Vec<f64> = (0..n).map(|i| (i % 251) as f64 - 125.0).collect();

        for (label, strategy) in [("sdl", Strategy::Sdl), ("ddl", Strategy::Ddl)] {
            let tree = plan_wht(n, &wht_cfg(strategy)).tree;
            let plan = WhtPlan::new(tree).unwrap();
            let mut data = base.clone();
            group.bench_with_input(BenchmarkId::new(label, log_n), &n, |b, _| {
                b.iter(|| {
                    // in-place transform; input values don't affect timing
                    plan.execute(&mut data);
                    std::hint::black_box(&mut data);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wht);
criterion_main!(benches);
