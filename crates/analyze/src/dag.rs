//! Static verification of generated codelet DAGs.
//!
//! `ddl-codegen` unrolls small DFTs into straight-line expression DAGs
//! and emits them as the leaf codelets `ddl-kernels` dispatches to. A
//! bug there corrupts every transform that touches the affected leaf, so
//! this module proves the structural invariants a correct codelet must
//! satisfy — without evaluating it:
//!
//! * every output slot `0..n` is written exactly once (no dropped or
//!   duplicated stores);
//! * every load reads an input index `< n`, and every input actually
//!   feeds some output (the DFT matrix has no zero entries, so an unused
//!   input is always a dropped dependency);
//! * no node is dead and no load is unreachable after simplification;
//! * constants are finite (a NaN/Inf twiddle silently poisons every
//!   downstream value);
//! * the op count stays within the radix-2 flop budget `5·n·log2(n)`
//!   (power-of-two sizes) or the direct-definition bound `8·n²` — a
//!   regression in the simplifier shows up here before it shows up in
//!   benchmarks.
//!
//! The verifier operates on a [`CodeletDag`], a thin ownership wrapper
//! around the generator's graph plus an explicit store list. Tests
//! seed mutations (dropped write, duplicated store, NaN constant)
//! through the same wrapper and assert each is caught.

use crate::findings::{AnalysisReport, Severity};
use ddl_codegen::expr::Node;
use ddl_codegen::simplify::compact;
use ddl_codegen::{generate_dft, ExprId, Graph};
use ddl_num::Direction;

/// One output store: `dst[slot] = Complex64::new(re, im)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Store {
    /// Destination slot in `0..n`.
    pub slot: usize,
    /// Real-part expression.
    pub re: ExprId,
    /// Imaginary-part expression.
    pub im: ExprId,
}

/// A codelet as the verifier sees it: the expression graph plus the
/// store list the emitter would lower to `dst[...] = ...` lines.
#[must_use]
pub struct CodeletDag {
    /// Codelet name, e.g. `dft16_f`.
    pub name: String,
    /// Transform size.
    pub n: usize,
    /// The (simplified) expression graph.
    pub graph: Graph,
    /// Output stores in emission order.
    pub stores: Vec<Store>,
}

impl CodeletDag {
    /// Generates and simplifies the `n`-point codelet for `dir` — the
    /// exact pipeline `emit_codelet` runs before printing source.
    pub fn generate(n: usize, dir: Direction) -> CodeletDag {
        let suffix = match dir {
            Direction::Forward => "f",
            Direction::Inverse => "i",
        };
        let (g, outputs) = generate_dft(n, dir);
        let (graph, outputs) = compact(&g, &outputs);
        CodeletDag {
            name: format!("dft{n}_{suffix}"),
            n,
            graph,
            stores: outputs
                .iter()
                .enumerate()
                .map(|(slot, v)| Store {
                    slot,
                    re: v.re,
                    im: v.im,
                })
                .collect(),
        }
    }

    /// Mutation for tests: drops the store to `slot`, leaving the slot
    /// unwritten.
    pub fn drop_store(&mut self, slot: usize) {
        self.stores.retain(|s| s.slot != slot);
    }

    /// Mutation for tests: stores to `slot` a second time.
    pub fn duplicate_store(&mut self, slot: usize) {
        if let Some(&s) = self.stores.iter().find(|s| s.slot == slot) {
            self.stores.push(s);
        }
    }

    /// Mutation for tests: replaces the real part of `slot`'s store with
    /// a poisoned constant.
    pub fn poison_constant(&mut self, slot: usize, value: f64) {
        let id = self.graph.constant(value);
        for s in &mut self.stores {
            if s.slot == slot {
                s.re = id;
            }
        }
    }

    fn roots(&self) -> Vec<ExprId> {
        self.stores.iter().flat_map(|s| [s.re, s.im]).collect()
    }
}

/// Radix-2 flop budget for an `n`-point DFT: `5·n·log2(n)` real ops for
/// power-of-two sizes (the classic radix-2 operation count, which our
/// mixed-radix generator must beat), `8·n²` (the direct definition) for
/// everything else.
#[must_use]
pub fn op_budget(n: usize) -> usize {
    if n.is_power_of_two() {
        5 * n * n.trailing_zeros() as usize
    } else {
        8 * n * n
    }
}

/// Verifies one codelet DAG, pushing findings into `report` under the
/// codelet's `dag:<name>` subject. Returns `true` when no error-level
/// finding was produced for this codelet.
pub fn verify_codelet(dag: &CodeletDag, report: &mut AnalysisReport) -> bool {
    let subject = format!("dag:{}", dag.name);
    report.subject();
    let errors_before = report.error_count();

    // Store references must point inside the graph before anything else
    // dereferences them.
    report.check();
    let len = dag.graph.len() as u32;
    for s in &dag.stores {
        if s.re.0 >= len || s.im.0 >= len {
            report.push(
                "dag/invalid-ref",
                Severity::Error,
                &subject,
                format!(
                    "store to slot {} references node {} outside the {}-node graph",
                    s.slot,
                    s.re.0.max(s.im.0),
                    len
                ),
            );
            return false;
        }
    }

    // Every output slot written exactly once.
    report.check();
    let mut writes = vec![0usize; dag.n];
    for s in &dag.stores {
        if s.slot >= dag.n {
            report.push(
                "dag/store-out-of-range",
                Severity::Error,
                &subject,
                format!("store to slot {} of an {}-point codelet", s.slot, dag.n),
            );
        } else {
            writes[s.slot] += 1;
        }
    }
    for (slot, &count) in writes.iter().enumerate() {
        if count == 0 {
            report.push(
                "dag/missing-store",
                Severity::Error,
                &subject,
                format!("output slot {slot} is never written"),
            );
        } else if count > 1 {
            report.push(
                "dag/duplicate-store",
                Severity::Error,
                &subject,
                format!("output slot {slot} is written {count} times"),
            );
        }
    }

    let roots = dag.roots();
    let live = dag.graph.live_set(&roots);

    // Load sanity: in-range indices, no unreachable loads, and every
    // input feeding some output.
    report.check();
    let mut input_used = vec![false; dag.n];
    for (i, &is_live) in live.iter().enumerate() {
        let id = ExprId(i as u32);
        if let Node::LoadRe(k) | Node::LoadIm(k) = dag.graph.node(id) {
            if k as usize >= dag.n {
                report.push(
                    "dag/load-out-of-range",
                    Severity::Error,
                    &subject,
                    format!("load of input {k} in an {}-point codelet", dag.n),
                );
                continue;
            }
            if is_live {
                input_used[k as usize] = true;
            } else {
                report.push(
                    "dag/unreachable-load",
                    Severity::Error,
                    &subject,
                    format!("load of input {k} (node {i}) is unreachable from every output"),
                );
            }
        }
    }
    for (k, &used) in input_used.iter().enumerate() {
        if !used {
            report.push(
                "dag/unused-input",
                Severity::Error,
                &subject,
                format!(
                    "input {k} never reaches an output (the DFT matrix has no zero entries, so \
                     a dependency was dropped)"
                ),
            );
        }
    }

    // Dead non-load nodes: harmless to correctness, but the simplifier
    // is supposed to have removed them.
    report.check();
    for (i, &is_live) in live.iter().enumerate() {
        let id = ExprId(i as u32);
        if !is_live && !matches!(dag.graph.node(id), Node::LoadRe(_) | Node::LoadIm(_)) {
            report.push(
                "dag/dead-node",
                Severity::Warning,
                &subject,
                format!(
                    "node {i} ({:?}) is dead after simplification",
                    dag.graph.node(id)
                ),
            );
        }
    }

    // Constant sanity: every live constant (as literal or multiplier)
    // must be finite.
    report.check();
    for (i, &is_live) in live.iter().enumerate() {
        if !is_live {
            continue;
        }
        let bits = match dag.graph.node(ExprId(i as u32)) {
            Node::Const(b) | Node::MulC(b, _) => b,
            _ => continue,
        };
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            report.push(
                "dag/bad-constant",
                Severity::Error,
                &subject,
                format!("node {i} holds non-finite constant {v}"),
            );
        }
    }

    // Op budget.
    report.check();
    let (adds, muls) = dag.graph.op_count(&roots);
    let budget = op_budget(dag.n);
    if adds + muls > budget {
        report.push(
            "dag/op-budget",
            Severity::Error,
            &subject,
            format!(
                "{} real ops ({adds} adds + {muls} muls) exceed the radix-2 budget of {budget}",
                adds + muls
            ),
        );
    }

    report.error_count() == errors_before
}

/// Verifies the codelets for every size in `sizes`, both directions —
/// the exact set `emit_module(sizes)` would print. Returns `true` when
/// all pass.
pub fn verify_generated(sizes: &[usize], report: &mut AnalysisReport) -> bool {
    let mut ok = true;
    for &n in sizes {
        for dir in [Direction::Forward, Direction::Inverse] {
            let dag = CodeletDag::generate(n, dir);
            ok &= verify_codelet(&dag, report);
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_codelet_sizes_verify_clean() {
        let mut report = AnalysisReport::new();
        assert!(verify_generated(
            ddl_kernels::generated::GENERATED_SIZES,
            &mut report
        ));
        assert!(report.passes(), "{:?}", report.findings);
        assert_eq!(
            report.subjects,
            2 * ddl_kernels::generated::GENERATED_SIZES.len() as u64
        );
    }

    #[test]
    fn broader_size_sweep_verifies_clean() {
        let mut report = AnalysisReport::new();
        assert!(verify_generated(
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 32, 64],
            &mut report
        ));
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn dropped_write_is_caught() {
        let mut dag = CodeletDag::generate(8, Direction::Forward);
        dag.drop_store(3);
        let mut report = AnalysisReport::new();
        assert!(!verify_codelet(&dag, &mut report));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "dag/missing-store" && f.severity == Severity::Error));
    }

    #[test]
    fn duplicated_store_is_caught() {
        let mut dag = CodeletDag::generate(8, Direction::Forward);
        dag.duplicate_store(5);
        let mut report = AnalysisReport::new();
        assert!(!verify_codelet(&dag, &mut report));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "dag/duplicate-store" && f.severity == Severity::Error));
    }

    #[test]
    fn nan_constant_is_caught() {
        let mut dag = CodeletDag::generate(4, Direction::Forward);
        dag.poison_constant(0, f64::NAN);
        let mut report = AnalysisReport::new();
        assert!(!verify_codelet(&dag, &mut report));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "dag/bad-constant" && f.severity == Severity::Error));
        // Infinity is just as poisonous.
        let mut dag = CodeletDag::generate(4, Direction::Inverse);
        dag.poison_constant(1, f64::INFINITY);
        let mut report = AnalysisReport::new();
        assert!(!verify_codelet(&dag, &mut report));
        assert!(!report.passes());
    }

    #[test]
    fn out_of_range_store_is_caught() {
        let mut dag = CodeletDag::generate(4, Direction::Forward);
        dag.stores[2].slot = 9;
        let mut report = AnalysisReport::new();
        assert!(!verify_codelet(&dag, &mut report));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "dag/store-out-of-range"));
        // ...and the vacated slot is reported as missing too.
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "dag/missing-store"));
    }

    #[test]
    fn budgets_are_sane() {
        assert_eq!(op_budget(2), 10);
        assert_eq!(op_budget(16), 320);
        assert_eq!(op_budget(3), 72);
    }
}
