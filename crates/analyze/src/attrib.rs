//! Static enrichment and three-way cross-check of attribution runs.
//!
//! `ddl-core`'s attribution layer classifies every leaf empirically
//! (simulated exclusive miss rate) and analytically (`CacheModel`).
//! This module adds the third, *static* verdict — [`conflict_degree`]
//! over the leaf's read and write access families under the run's own
//! cache geometry — and then cross-checks all three. The three methods
//! share no code paths: the simulator replays real addresses through an
//! LRU cache, the model applies the paper's Sec. III-B closed form, and
//! the analyzer counts set residues of arithmetic progressions. Where
//! they agree, the Case III story is corroborated three independent
//! ways; where they disagree, [`crosscheck`] reports the node by path
//! instead of dropping it.

use crate::conflict::{conflict_degree, CacheGeometry};
use ddl_core::attrib::{AttributionRun, CaseClass, NodeAttribution};

/// One node where the three classification methods split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// `/`-joined node path (`label:size@stride` segments).
    pub path: String,
    /// Empirical class from the simulated exclusive miss rate.
    pub empirical: Option<CaseClass>,
    /// Analytical `CacheModel` class.
    pub model: Option<CaseClass>,
    /// Static conflict-analyzer verdict.
    pub static_pathological: Option<bool>,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: empirical {:?}, model {:?}, static pathological {:?}",
            self.path, self.empirical, self.model, self.static_pathological
        )
    }
}

/// Fills `static_pathological`/`static_degree` on every annotated leaf of
/// the run, from [`conflict_degree`] over both the read stream (span
/// stride) and the write stream (`write_stride`, recovered by the model
/// walk). A base address of 0 is representative: for the line-multiple
/// strides that matter the degree is base-invariant.
pub fn annotate_static(run: &mut AttributionRun) {
    let geom = CacheGeometry::from_config(&run.cache);
    let point_bytes = run.point_bytes;
    run.walk_mut(&mut |node, _| {
        // Leaves only: the conflict model, like the paper's, describes a
        // leaf's access families, not a split's twiddle pass.
        if node.model.is_none() {
            return;
        }
        let mut degree = 0usize;
        let mut pathological = false;
        let mut streams = vec![node.stride];
        if let Some(ws) = node.write_stride {
            streams.push(ws);
        }
        for stride in streams {
            let info = conflict_degree(&geom, 0, stride * point_bytes, point_bytes, node.size);
            degree = degree.max(info.degree);
            pathological |= info.is_pathological(&geom);
        }
        node.static_pathological = Some(pathological);
        node.static_degree = Some(degree as u64);
    });
}

/// Compares the three Case III verdicts on every leaf that has all three
/// (run [`annotate_static`] first). Agreement is boolean — "is this leaf
/// Case III?" — because the static analyzer has no intermediate class.
/// Returns every disagreeing node with its path; an empty vector means
/// the three methods tell one story.
pub fn crosscheck(run: &AttributionRun) -> Vec<Disagreement> {
    let mut out = Vec::new();
    run.walk(&mut |node, path| {
        let (Some(model), Some(stat)) = (node.model, node.static_pathological) else {
            return;
        };
        let verdicts = [
            node.empirical.map(|e| e == CaseClass::Case3),
            Some(model == CaseClass::Case3),
            Some(stat),
        ];
        let reference = verdicts[1];
        if verdicts.iter().any(|v| *v != reference) {
            out.push(Disagreement {
                path: path.to_string(),
                empirical: node.empirical,
                model: Some(model),
                static_pathological: Some(stat),
            });
        }
    });
    out
}

/// Convenience: leaves of the run in depth-first order, with paths.
pub fn annotated_leaves(run: &AttributionRun) -> Vec<(String, NodeAttribution)> {
    let mut out = Vec::new();
    run.walk(&mut |node, path| {
        if node.model.is_some() {
            out.push((path.to_string(), node.clone()));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddl_cachesim::CacheConfig;
    use ddl_core::attrib::attribute_dft;
    use ddl_core::DftPlan;
    use ddl_num::Direction;

    fn small_cache() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 16 * 1024,
            line_bytes: 64,
            associativity: 1,
        }
    }

    #[test]
    fn static_annotation_fills_every_leaf() {
        let plan = DftPlan::from_expr("ctddl(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft(&plan, 64, small_cache()).unwrap();
        annotate_static(&mut run);
        let leaves = annotated_leaves(&run);
        assert!(!leaves.is_empty());
        for (path, leaf) in &leaves {
            assert!(leaf.static_pathological.is_some(), "{path}");
            assert!(leaf.static_degree.is_some(), "{path}");
        }
    }

    #[test]
    fn crosscheck_reports_injected_disagreements_with_paths() {
        let plan = DftPlan::from_expr("ct(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft(&plan, 64, small_cache()).unwrap();
        annotate_static(&mut run);
        assert!(crosscheck(&run).is_empty(), "golden pair should agree");

        // Flip one leaf's static verdict: the disagreement must surface
        // with that node's path, not vanish.
        let mut flipped_path = String::new();
        run.walk_mut(&mut |node, path| {
            if node.model.is_some() && flipped_path.is_empty() {
                node.static_pathological = Some(false);
                flipped_path = path.to_string();
            }
        });
        let disagreements = crosscheck(&run);
        assert_eq!(disagreements.len(), 1);
        assert_eq!(disagreements[0].path, flipped_path);
        assert!(disagreements[0].to_string().contains(&flipped_path));
    }
}
