//! Static enrichment and three-way cross-check of attribution runs.
//!
//! `ddl-core`'s attribution layer classifies every leaf empirically
//! (simulated exclusive miss rate) and analytically (`CacheModel`).
//! This module adds the third, *static* verdict — [`conflict_degree`]
//! over the leaf's read and write access families under the run's own
//! cache geometry — and then cross-checks all three. The three methods
//! share no code paths: the simulator replays real addresses through an
//! LRU cache, the model applies the paper's Sec. III-B closed form, and
//! the analyzer counts set residues of arithmetic progressions. Where
//! they agree, the Case III story is corroborated three independent
//! ways; where they disagree, [`crosscheck`] reports the node by path
//! instead of dropping it.

use crate::conflict::{conflict_degree, CacheGeometry};
use ddl_core::attrib::{AttributionRun, CaseClass, NodeAttribution};

/// One node where the three classification methods split, at one
/// geometry level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// `/`-joined node path (`label:size@stride` segments).
    pub path: String,
    /// Which geometry disagreed: `"line"` (the run's cache) or `"page"`
    /// (the TLB viewed as a cache with page-sized lines).
    pub level: &'static str,
    /// Empirical class from the simulated exclusive miss rate.
    pub empirical: Option<CaseClass>,
    /// Analytical `CacheModel` class.
    pub model: Option<CaseClass>,
    /// Static conflict-analyzer verdict.
    pub static_pathological: Option<bool>,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: empirical {:?}, model {:?}, static pathological {:?}",
            self.path, self.level, self.empirical, self.model, self.static_pathological
        )
    }
}

/// The static verdict for one leaf's read/write streams under one
/// geometry: worst conflict degree and whether either stream is
/// pathological.
fn static_verdict(geom: &CacheGeometry, point_bytes: usize, node: &NodeAttribution) -> (bool, u64) {
    let mut degree = 0usize;
    let mut pathological = false;
    let mut streams = vec![node.stride];
    if let Some(ws) = node.write_stride {
        streams.push(ws);
    }
    for stride in streams {
        let info = conflict_degree(geom, 0, stride * point_bytes, point_bytes, node.size);
        degree = degree.max(info.degree);
        pathological |= info.is_pathological(geom);
    }
    (pathological, degree as u64)
}

/// Fills `static_pathological`/`static_degree` on every annotated leaf of
/// the run, from [`conflict_degree`] over both the read stream (span
/// stride) and the write stream (`write_stride`, recovered by the model
/// walk). A base address of 0 is representative: for the line-multiple
/// strides that matter the degree is base-invariant.
///
/// On hierarchy-attributed runs (v2) the same analysis additionally runs
/// against the TLB's page geometry — the TLB is a cache whose line is
/// the page — filling the `static_*_page` twins.
pub fn annotate_static(run: &mut AttributionRun) {
    let geom = CacheGeometry::from_config(&run.cache);
    let page_geom = run
        .hierarchy
        .as_ref()
        .map(|h| CacheGeometry::from_config(&h.config.tlb_as_cache()));
    let point_bytes = run.point_bytes;
    run.walk_mut(&mut |node, _| {
        // Leaves only: the conflict model, like the paper's, describes a
        // leaf's access families, not a split's twiddle pass.
        if node.model.is_none() {
            return;
        }
        let (pathological, degree) = static_verdict(&geom, point_bytes, node);
        node.static_pathological = Some(pathological);
        node.static_degree = Some(degree);
        if let Some(pg) = &page_geom {
            let (pathological, degree) = static_verdict(pg, point_bytes, node);
            node.static_pathological_page = Some(pathological);
            node.static_degree_page = Some(degree);
        }
    });
}

fn check_level(
    out: &mut Vec<Disagreement>,
    path: &str,
    level: &'static str,
    empirical: Option<CaseClass>,
    model: Option<CaseClass>,
    stat: Option<bool>,
) {
    let (Some(model), Some(stat)) = (model, stat) else {
        return;
    };
    let verdicts = [
        empirical.map(|e| e == CaseClass::Case3),
        Some(model == CaseClass::Case3),
        Some(stat),
    ];
    let reference = verdicts[1];
    if verdicts.iter().any(|v| *v != reference) {
        out.push(Disagreement {
            path: path.to_string(),
            level,
            empirical,
            model: Some(model),
            static_pathological: Some(stat),
        });
    }
}

/// Compares the three Case III verdicts on every leaf that has all three
/// (run [`annotate_static`] first). Agreement is boolean — "is this leaf
/// Case III?" — because the static analyzer has no intermediate class.
/// On hierarchy-attributed runs the comparison repeats at page geometry
/// against the `*_page` twins. Returns every disagreeing node with its
/// path and level; an empty vector means the methods tell one story at
/// every granularity.
pub fn crosscheck(run: &AttributionRun) -> Vec<Disagreement> {
    let mut out = Vec::new();
    run.walk(&mut |node, path| {
        check_level(
            &mut out,
            path,
            "line",
            node.empirical,
            node.model,
            node.static_pathological,
        );
        check_level(
            &mut out,
            path,
            "page",
            node.empirical_page,
            node.model_page,
            node.static_pathological_page,
        );
    });
    out
}

/// Convenience: leaves of the run in depth-first order, with paths.
pub fn annotated_leaves(run: &AttributionRun) -> Vec<(String, NodeAttribution)> {
    let mut out = Vec::new();
    run.walk(&mut |node, path| {
        if node.model.is_some() {
            out.push((path.to_string(), node.clone()));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddl_cachesim::{CacheConfig, HierarchyConfig};
    use ddl_core::attrib::{attribute_dft, attribute_dft_hier};
    use ddl_core::DftPlan;
    use ddl_num::Direction;

    fn small_cache() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 16 * 1024,
            line_bytes: 64,
            associativity: 1,
        }
    }

    fn small_hier() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 4 * 1024,
                line_bytes: 64,
                associativity: 1,
            },
            l2: small_cache(),
            tlb_entries: 64,
            tlb_page_bytes: 4096,
            tlb_ways: 4,
        }
    }

    #[test]
    fn static_annotation_fills_every_leaf() {
        let plan = DftPlan::from_expr("ctddl(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft(&plan, 64, small_cache()).unwrap();
        annotate_static(&mut run);
        let leaves = annotated_leaves(&run);
        assert!(!leaves.is_empty());
        for (path, leaf) in &leaves {
            assert!(leaf.static_pathological.is_some(), "{path}");
            assert!(leaf.static_degree.is_some(), "{path}");
        }
    }

    #[test]
    fn crosscheck_reports_injected_disagreements_with_paths() {
        let plan = DftPlan::from_expr("ct(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft(&plan, 64, small_cache()).unwrap();
        annotate_static(&mut run);
        assert!(crosscheck(&run).is_empty(), "golden pair should agree");

        // Flip one leaf's static verdict: the disagreement must surface
        // with that node's path, not vanish.
        let mut flipped_path = String::new();
        run.walk_mut(&mut |node, path| {
            if node.model.is_some() && flipped_path.is_empty() {
                node.static_pathological = Some(false);
                flipped_path = path.to_string();
            }
        });
        let disagreements = crosscheck(&run);
        assert_eq!(disagreements.len(), 1);
        assert_eq!(disagreements[0].path, flipped_path);
        assert_eq!(disagreements[0].level, "line");
        assert!(disagreements[0].to_string().contains(&flipped_path));
    }

    #[test]
    fn page_static_annotation_fills_hierarchy_leaves_only() {
        let plan = DftPlan::from_expr("ctddl(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft_hier(&plan, 64, small_cache(), small_hier()).unwrap();
        annotate_static(&mut run);
        let leaves = annotated_leaves(&run);
        assert!(!leaves.is_empty());
        for (path, leaf) in &leaves {
            assert!(leaf.static_pathological_page.is_some(), "{path}");
            assert!(leaf.static_degree_page.is_some(), "{path}");
        }

        // A line-only (v1-style) run must not grow page verdicts.
        let mut line_run = attribute_dft(&plan, 64, small_cache()).unwrap();
        annotate_static(&mut line_run);
        for (path, leaf) in annotated_leaves(&line_run) {
            assert!(leaf.static_pathological_page.is_none(), "{path}");
            assert!(leaf.static_degree_page.is_none(), "{path}");
        }
    }

    #[test]
    fn crosscheck_reports_page_level_disagreements() {
        let plan = DftPlan::from_expr("ct(64, 32)", Direction::Forward).unwrap();
        let mut run = attribute_dft_hier(&plan, 64, small_cache(), small_hier()).unwrap();
        annotate_static(&mut run);
        let at_page = |ds: &[Disagreement], path: &str| {
            ds.iter().any(|d| d.level == "page" && d.path == path)
        };

        // Flipping one leaf's *page* verdict must toggle that node's
        // page-level disagreement, tagged with the page level.
        let mut flipped_path = String::new();
        run.walk_mut(&mut |node, path| {
            if node.model_page.is_some() && flipped_path.is_empty() {
                flipped_path = path.to_string();
            }
        });
        assert!(!flipped_path.is_empty(), "no page-classified leaf found");
        let before = at_page(&crosscheck(&run), &flipped_path);
        run.walk_mut(&mut |node, path| {
            if path == flipped_path {
                let old = node.static_pathological_page.unwrap_or(false);
                node.static_pathological_page = Some(!old);
            }
        });
        let after = at_page(&crosscheck(&run), &flipped_path);
        assert_ne!(before, after, "page flip did not change the crosscheck");
    }
}
