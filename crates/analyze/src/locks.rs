//! Pass 2 of `ddl-cert`: the lock-order analyzer.
//!
//! The engine/scheduler/serve stack holds a handful of `Mutex`/`RwLock`
//! instances. A deadlock needs two locks acquired in opposite orders on
//! two threads; a poison cascade needs a lock held across code that can
//! unwind or run user plans. This pass extracts every acquisition site
//! from the concurrent sources, models how long each guard lives,
//! builds the inter-procedural lock-order graph, and fails on:
//!
//! * cycles (including re-entrant acquisition of the same lock class,
//!   which is a self-deadlock with `std::sync` locks);
//! * a lock held across `catch_unwind`, thread spawns, or the executor
//!   entry points that run user plans;
//! * drift from the pinned golden order in
//!   `crates/analyze/fixtures/lock_order.golden`.
//!
//! Guard-extent model (how long an acquisition is considered held),
//! matched to the idioms the hot-path lint enforces:
//!
//! * **Temporary** — the guard is a temporary inside a larger
//!   expression (`relock(&q).pop_front()`, `*relock(&w) = x`,
//!   `std::mem::take(&mut *relock(&w))`): held to the end of the
//!   statement.
//! * **BlockBound** — `let g = relock(&q);` or `let g = match
//!   x.lock() {...};`, possibly through a poison-recovering chain
//!   (`unwrap_or_else`, `into_inner`): held to the end of the
//!   enclosing block.
//! * **HeaderBound** — acquisition in an `if let`/`while let`/`for`/
//!   `match` header: Rust 2021 extends the header temporary to the end
//!   of the construct's body, so the guard is modeled as held through
//!   the following block.
//!
//! Inter-procedural edges come from *free calls only* (`relock(&x)`,
//! `faultpoint::hit(..)`): method calls are intentionally not resolved
//! by bare name — `map.insert(..)` must not alias `Engine::insert` —
//! and every real cross-function lock flow in the workspace is a free
//! call. Lock classes are named `file.field` (e.g. `engine.plans`).

use crate::findings::{AnalysisReport, Severity};
use crate::lint;
use crate::tok::{self, Kind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Rule id for lock-certificate findings.
pub const RULE_LOCKS: &str = "cert/locks";

/// Workspace-relative paths of the concurrent sources this pass scans.
pub const LOCK_SCAN_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/faultpoint.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/wisdom.rs",
    "crates/serve/src/lib.rs",
];

/// Workspace-relative path of the pinned golden lock order.
pub const LOCK_GOLDEN_FIXTURE: &str = "crates/analyze/fixtures/lock_order.golden";

/// One edge of the lock-order graph: `from` was held while `to` was
/// acquired (directly or through a called function).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Class already held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// `file:line` of the inner acquisition or the guarded call.
    pub site: String,
}

/// The lock-order certificate.
#[derive(Clone, Debug)]
pub struct LockCertificate {
    /// Every lock class seen, sorted.
    pub classes: Vec<String>,
    /// Order edges, sorted and deduplicated.
    pub edges: Vec<LockEdge>,
    /// A topological order of the classes (alphabetical tie-break);
    /// empty when the graph has a cycle.
    pub order: Vec<String>,
    /// Whether the graph is acyclic.
    pub acyclic: bool,
}

/// Guard-extent model for one acquisition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Extent {
    Temporary,
    BlockBound,
    HeaderBound,
}

#[derive(Clone, Debug)]
struct GuardState {
    class: String,
    extent: Extent,
    /// Brace depth at the acquisition.
    depth: i64,
    /// For `HeaderBound`: whether the body block has been entered.
    entered: bool,
}

#[derive(Clone, Debug, Default)]
struct FnInfo {
    name: String,
    /// Lock classes acquired directly in this function.
    direct: BTreeSet<String>,
    /// Bare names of free functions this function calls.
    calls: BTreeSet<String>,
    /// Whether the function directly contains a risky token.
    risky: bool,
}

/// A free call made while at least one guard was held.
#[derive(Clone, Debug)]
struct GuardedCall {
    held: Vec<String>,
    callee: String,
    site: String,
}

#[derive(Clone, Debug, Default)]
struct ScanOut {
    fns: Vec<FnInfo>,
    /// Direct nesting edges (guard class, acquired class, site).
    nestings: Vec<(String, String, String)>,
    guarded_calls: Vec<GuardedCall>,
    /// Risky tokens reached while holding (held classes, token, site).
    risky_hits: Vec<(Vec<String>, String, String)>,
    /// Same-class nested acquisition (class, site).
    reentries: Vec<(String, String)>,
    /// Acquisitions whose receiver could not be named (site).
    unknown: Vec<String>,
}

/// Calls that must never run under a held lock: unwind capture, thread
/// creation, and the executor entry points that run user plans.
const RISKY_CALLS: &[&str] = &[
    "catch_unwind",
    "spawn",
    "spawn_scoped",
    "execute",
    "try_execute",
    "run_request",
];

/// Guard-preserving chain methods: `let g = lock().m()` still binds the
/// guard when `m` merely unwraps or recovers it.
const PRESERVING: &[&str] = &["unwrap_or_else", "unwrap", "expect", "into_inner", "ok"];

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "in", "as", "move", "fn",
    "break", "continue",
];

/// Lock class prefix for one scanned file: the file stem, or the crate
/// directory name for a crate root (`crates/serve/src/lib.rs` →
/// `serve`).
fn class_prefix(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let stem = parts
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("file");
    if stem == "lib" || stem == "mod" {
        for (i, p) in parts.iter().enumerate() {
            if *p == "src" && i > 0 {
                return parts[i - 1].to_string();
            }
        }
    }
    stem.to_string()
}

/// Tokenizes `source` with test-module tokens removed (test modules are
/// brace-balanced, so dropping them keeps depth tracking sound).
fn lex_non_test(source: &str) -> Vec<Token> {
    let scrubbed = lint::scrub(source);
    let in_test = lint::test_module_lines(&scrubbed);
    tok::tokenize(&scrubbed)
        .into_iter()
        .filter(|t| {
            !in_test
                .get(t.line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
        })
        .collect()
}

/// First pass: find forwarder functions — a function taking a `&Mutex`
/// (or `&RwLock`) parameter and *returning a guard type*, whose body
/// calls `.lock()`/`.read()`/`.write()` (the poison-recovering
/// `relock` idiom). Calls to these count as acquisitions at the *call*
/// site instead. A function that merely locks a `&Mutex` parameter
/// internally (without handing the guard back) is not a forwarder: its
/// acquisitions are accounted where they happen.
fn find_forwarders(files: &[(String, String)]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (_, source) in files {
        let toks = lex_non_test(source);
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
                let name = toks[i + 1].text.clone();
                // Signature: up to the body `{` at bracket depth 0.
                let mut j = i + 2;
                let mut bracket = 0i64;
                let mut sig_has_lock_type = false;
                let mut sig_returns_guard = false;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct("(") || t.is_punct("[") {
                        bracket += 1;
                    } else if t.is_punct(")") || t.is_punct("]") {
                        bracket -= 1;
                    } else if bracket == 0 && (t.is_punct("{") || t.is_punct(";")) {
                        break;
                    } else if t.is_ident("Mutex") || t.is_ident("RwLock") {
                        sig_has_lock_type = true;
                    } else if t.is_ident("MutexGuard")
                        || t.is_ident("RwLockReadGuard")
                        || t.is_ident("RwLockWriteGuard")
                    {
                        sig_returns_guard = true;
                    }
                    j += 1;
                }
                if sig_has_lock_type && sig_returns_guard && j < toks.len() && toks[j].is_punct("{")
                {
                    // Body: matching brace group.
                    let mut depth = 0i64;
                    let mut k = j;
                    let mut body_locks = false;
                    while k < toks.len() {
                        let t = &toks[k];
                        if t.is_punct("{") {
                            depth += 1;
                        } else if t.is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                            && k > j
                            && toks[k - 1].is_punct(".")
                            && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
                        {
                            body_locks = true;
                        }
                        k += 1;
                    }
                    if body_locks {
                        out.insert(name);
                    }
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
    out
}

/// Collects the method-chain names following position `k` (which must
/// point just past a call's closing paren): `.a().b()` → `[a, b]`.
fn chain_after(toks: &[Token], mut k: usize) -> Vec<String> {
    let mut out = Vec::new();
    while k + 1 < toks.len() && toks[k].is_punct(".") && toks[k + 1].kind == Kind::Ident {
        out.push(toks[k + 1].text.clone());
        k += 2;
        if k < toks.len() && toks[k].is_punct("(") {
            let mut depth = 0i64;
            while k < toks.len() {
                if toks[k].is_punct("(") {
                    depth += 1;
                } else if toks[k].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
    }
    out
}

/// Index just past the `)` matching the `(` at `open`.
fn past_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct("(") || toks[k].is_punct("[") {
            depth += 1;
        } else if toks[k].is_punct(")") || toks[k].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

fn classify(stmt_first: Option<&str>, stmt_paren: i64, chain: &[String]) -> Extent {
    if stmt_paren > 0 {
        return Extent::Temporary;
    }
    match stmt_first {
        // `else` covers `else if let ...` headers.
        Some("if" | "while" | "for" | "match" | "else") => Extent::HeaderBound,
        Some("let") => {
            if chain.iter().all(|m| PRESERVING.contains(&m.as_str())) {
                Extent::BlockBound
            } else {
                Extent::Temporary
            }
        }
        _ => Extent::Temporary,
    }
}

fn record_acquisition(
    class: &str,
    extent: Extent,
    depth: i64,
    site: &str,
    guards: &mut Vec<GuardState>,
    fn_stack: &[(usize, i64, bool)],
    out: &mut ScanOut,
) {
    if let Some((idx, _, _)) = fn_stack.last() {
        out.fns[*idx].direct.insert(class.to_string());
    }
    for g in guards.iter() {
        if g.class == class {
            out.reentries.push((class.to_string(), site.to_string()));
        } else {
            out.nestings
                .push((g.class.clone(), class.to_string(), site.to_string()));
        }
    }
    guards.push(GuardState {
        class: class.to_string(),
        extent,
        depth,
        entered: false,
    });
}

/// Scans one file, merging events into `out`.
fn scan_file(rel: &str, source: &str, forwarders: &BTreeSet<String>, out: &mut ScanOut) {
    let prefix = class_prefix(rel);
    let toks = lex_non_test(source);
    let mut depth = 0i64;
    // (fn index in out.fns, depth after its opening brace, forwarder?)
    let mut fn_stack: Vec<(usize, i64, bool)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut guards: Vec<GuardState> = Vec::new();
    let mut stmt_first: Option<String> = None;
    let mut stmt_paren = 0i64;

    fn held(guards: &[GuardState]) -> Vec<String> {
        guards.iter().map(|g| g.class.clone()).collect()
    }

    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i].clone();
        let site = format!("{rel}:{}", t.line);
        if t.is_punct("{") {
            depth += 1;
            for g in guards.iter_mut() {
                if g.extent == Extent::HeaderBound && depth > g.depth {
                    g.entered = true;
                }
            }
            if let Some(name) = pending_fn.take() {
                let idx = out.fns.len();
                let fwd = forwarders.contains(&name);
                out.fns.push(FnInfo {
                    name,
                    ..FnInfo::default()
                });
                fn_stack.push((idx, depth, fwd));
            }
            stmt_first = None;
            stmt_paren = 0;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth -= 1;
            guards.retain(|g| match g.extent {
                Extent::BlockBound | Extent::Temporary => depth >= g.depth,
                Extent::HeaderBound => !(g.entered && depth <= g.depth),
            });
            while fn_stack.last().is_some_and(|(_, d, _)| depth < *d) {
                fn_stack.pop();
            }
            stmt_first = None;
            stmt_paren = 0;
            i += 1;
            continue;
        }
        if t.is_punct(";") && stmt_paren <= 0 {
            guards.retain(|g| !(g.extent == Extent::Temporary && g.depth == depth));
            stmt_first = None;
            i += 1;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") {
            stmt_paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            stmt_paren -= 1;
        }
        if stmt_first.is_none() && (t.kind == Kind::Ident || t.kind == Kind::Punct) {
            stmt_first = Some(t.text.clone());
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident) {
            pending_fn = Some(toks[i + 1].text.clone());
            i += 2;
            continue;
        }

        let in_forwarder = fn_stack.last().is_some_and(|(_, _, fwd)| *fwd);

        // Direct method acquisition: `recv.lock()` / `.read()` / `.write()`.
        let is_acq_method = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(")"));
        if is_acq_method && !in_forwarder {
            let recv = if i >= 2 && toks[i - 2].kind == Kind::Ident {
                Some(toks[i - 2].text.clone())
            } else {
                None
            };
            let Some(recv) = recv else {
                out.unknown.push(site);
                i += 3;
                continue;
            };
            let class = format!("{prefix}.{recv}");
            // The receiver chain holds no parens, so `stmt_paren` here
            // equals the paren depth of the statement at the trigger.
            let chain = chain_after(&toks, i + 3);
            let extent = classify(stmt_first.as_deref(), stmt_paren, &chain);
            record_acquisition(&class, extent, depth, &site, &mut guards, &fn_stack, out);
            i += 3;
            continue;
        }

        // Calls: forwarder acquisition, free call, or risky method.
        if t.kind == Kind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            let is_dot = i > 0 && toks[i - 1].is_punct(".");
            let name = t.text.clone();
            if !is_dot && forwarders.contains(&name) && !in_forwarder {
                // Receiver class: last ident of the first argument,
                // truncated at any index expression.
                let close = past_close(&toks, i + 1);
                let mut recv: Option<String> = None;
                let mut k = i + 2;
                while k < close.saturating_sub(1) {
                    let a = &toks[k];
                    if a.is_punct("[") || a.is_punct(",") {
                        break;
                    }
                    if a.kind == Kind::Ident && a.text != "self" {
                        recv = Some(a.text.clone());
                    }
                    k += 1;
                }
                let Some(recv) = recv else {
                    out.unknown.push(site);
                    i = close;
                    continue;
                };
                let class = format!("{prefix}.{recv}");
                let chain = chain_after(&toks, close);
                let extent = classify(stmt_first.as_deref(), stmt_paren, &chain);
                record_acquisition(&class, extent, depth, &site, &mut guards, &fn_stack, out);
                i += 1; // keep scanning inside the argument tokens
                continue;
            }
            let risky = RISKY_CALLS.contains(&name.as_str());
            if risky {
                if let Some((idx, _, _)) = fn_stack.last() {
                    out.fns[*idx].risky = true;
                }
                if !guards.is_empty() {
                    out.risky_hits
                        .push((held(&guards), name.clone(), site.clone()));
                }
            }
            if !is_dot && !KEYWORDS.contains(&name.as_str()) {
                if let Some((idx, _, fwd)) = fn_stack.last() {
                    if !*fwd {
                        out.fns[*idx].calls.insert(name.clone());
                    }
                }
                if !guards.is_empty() && !risky {
                    out.guarded_calls.push(GuardedCall {
                        held: held(&guards),
                        callee: name,
                        site,
                    });
                }
            }
        }
        i += 1;
    }
}

/// Analyzes `(workspace-relative-path, source)` pairs and returns the
/// lock-order certificate. Pushes error findings for re-entries, locks
/// held across risky calls, cycles, and unresolvable receivers; returns
/// `None` when any error was found.
pub fn analyze_lock_sources(
    files: &[(String, String)],
    report: &mut AnalysisReport,
) -> Option<LockCertificate> {
    let forwarders = find_forwarders(files);
    let mut out = ScanOut::default();
    for (rel, source) in files {
        report.subject();
        scan_file(rel, source, &forwarders, &mut out);
    }

    // Transitive closure of per-function acquisition sets and riskiness
    // over the free-call graph.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in out.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let mut trans: Vec<BTreeSet<String>> = out.fns.iter().map(|f| f.direct.clone()).collect();
    let mut trans_risky: Vec<bool> = out.fns.iter().map(|f| f.risky).collect();
    loop {
        let mut changed = false;
        for i in 0..out.fns.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            let mut risky = trans_risky[i];
            for callee in &out.fns[i].calls {
                if let Some(targets) = by_name.get(callee.as_str()) {
                    for &t in targets {
                        add.extend(trans[t].iter().cloned());
                        risky = risky || trans_risky[t];
                    }
                }
            }
            for c in add {
                if trans[i].insert(c) {
                    changed = true;
                }
            }
            if risky && !trans_risky[i] {
                trans_risky[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut ok = true;
    for site in &out.unknown {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            site,
            "lock acquisition with an unresolvable receiver: name the lock field directly"
                .to_string(),
        );
    }
    for (class, site) in &out.reentries {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            site,
            format!("re-entrant acquisition of `{class}` while already held (self-deadlock)"),
        );
    }
    for (heldv, name, site) in &out.risky_hits {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            site,
            format!(
                "`{name}` reached while holding {}: locks must not be held across \
                 unwind capture, thread spawns, or user-plan execution",
                heldv.join(", ")
            ),
        );
    }

    // Edges: direct nestings plus guarded calls resolved through the
    // transitive sets.
    let mut edge_map: BTreeMap<(String, String), String> = BTreeMap::new();
    for (from, to, site) in &out.nestings {
        edge_map
            .entry((from.clone(), to.clone()))
            .or_insert_with(|| site.clone());
    }
    for call in &out.guarded_calls {
        let Some(targets) = by_name.get(call.callee.as_str()) else {
            continue;
        };
        let mut acquired: BTreeSet<String> = BTreeSet::new();
        let mut risky = false;
        for &t in targets {
            acquired.extend(trans[t].iter().cloned());
            risky = risky || trans_risky[t];
        }
        if risky {
            ok = false;
            report.push(
                RULE_LOCKS,
                Severity::Error,
                &call.site,
                format!(
                    "call to `{}` (which can unwind/spawn/run plans) while holding {}",
                    call.callee,
                    call.held.join(", ")
                ),
            );
        }
        for held_class in &call.held {
            for to in &acquired {
                if held_class == to {
                    ok = false;
                    report.push(
                        RULE_LOCKS,
                        Severity::Error,
                        &call.site,
                        format!(
                            "call to `{}` re-acquires `{to}` already held here (self-deadlock)",
                            call.callee
                        ),
                    );
                } else {
                    edge_map
                        .entry((held_class.clone(), to.clone()))
                        .or_insert_with(|| call.site.clone());
                }
            }
        }
    }

    let mut classes: BTreeSet<String> = BTreeSet::new();
    for f in &out.fns {
        classes.extend(f.direct.iter().cloned());
    }
    for (from, to) in edge_map.keys() {
        classes.insert(from.clone());
        classes.insert(to.clone());
    }

    // Kahn topological sort with alphabetical tie-break.
    let mut indeg: BTreeMap<&str, usize> = classes.iter().map(|c| (c.as_str(), 0)).collect();
    for (_, to) in edge_map.keys() {
        if let Some(d) = indeg.get_mut(to.as_str()) {
            *d += 1;
        }
    }
    let mut ready: BTreeSet<&str> = indeg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(c, _)| *c)
        .collect();
    let mut order: Vec<String> = Vec::new();
    while let Some(&c) = ready.iter().next() {
        ready.remove(c);
        order.push(c.to_string());
        for (from, to) in edge_map.keys() {
            if from.as_str() == c {
                if let Some(d) = indeg.get_mut(to.as_str()) {
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(to.as_str());
                    }
                }
            }
        }
    }
    let acyclic = order.len() == classes.len();
    if !acyclic {
        ok = false;
        let stuck: Vec<&str> = classes
            .iter()
            .filter(|c| !order.contains(c))
            .map(|c| c.as_str())
            .collect();
        report.push(
            RULE_LOCKS,
            Severity::Error,
            "lock-order-graph",
            format!("lock-order cycle among: {}", stuck.join(", ")),
        );
    }
    report.check();

    let cert = LockCertificate {
        classes: classes.into_iter().collect(),
        edges: edge_map
            .into_iter()
            .map(|((from, to), site)| LockEdge { from, to, site })
            .collect(),
        order: if acyclic { order } else { Vec::new() },
        acyclic,
    };
    if ok {
        Some(cert)
    } else {
        None
    }
}

/// Reads and analyzes the workspace's concurrent sources under `root`.
pub fn analyze_locks(root: &Path, report: &mut AnalysisReport) -> Option<LockCertificate> {
    let mut files = Vec::new();
    for rel in LOCK_SCAN_FILES {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(source) => files.push(((*rel).to_string(), source)),
            Err(e) => {
                report.push(
                    RULE_LOCKS,
                    Severity::Error,
                    rel,
                    format!("cannot read scanned source: {e}"),
                );
                return None;
            }
        }
    }
    analyze_lock_sources(&files, report)
}

/// Renders the golden-fixture text for a certificate.
pub fn golden_text(cert: &LockCertificate) -> String {
    let mut out = String::from(
        "# ddl-cert v1 lock-order golden fixture\n\
         # Classes and edges extracted from the concurrent sources; the\n\
         # certificate run fails if the graph drifts from this pin.\n",
    );
    for c in &cert.classes {
        out.push_str("class ");
        out.push_str(c);
        out.push('\n');
    }
    for e in &cert.edges {
        out.push_str(&format!("edge {} -> {}\n", e.from, e.to));
    }
    out
}

/// Compares a certificate against the pinned golden text; pushes an
/// error finding per drift line. Returns whether they match.
pub fn check_golden(cert: &LockCertificate, golden: &str, report: &mut AnalysisReport) -> bool {
    let mut want_classes: BTreeSet<String> = BTreeSet::new();
    let mut want_edges: BTreeSet<(String, String)> = BTreeSet::new();
    for line in golden.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("class ") {
            want_classes.insert(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("edge ") {
            let mut it = rest.split("->");
            let from = it.next().unwrap_or("").trim().to_string();
            let to = it.next().unwrap_or("").trim().to_string();
            want_edges.insert((from, to));
        } else {
            report.push(
                RULE_LOCKS,
                Severity::Error,
                LOCK_GOLDEN_FIXTURE,
                format!("unparseable golden line: `{line}`"),
            );
            return false;
        }
    }
    let got_classes: BTreeSet<String> = cert.classes.iter().cloned().collect();
    let got_edges: BTreeSet<(String, String)> = cert
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let mut ok = true;
    for c in want_classes.difference(&got_classes) {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            LOCK_GOLDEN_FIXTURE,
            format!("pinned lock class `{c}` no longer observed — update the golden deliberately"),
        );
    }
    for c in got_classes.difference(&want_classes) {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            LOCK_GOLDEN_FIXTURE,
            format!("new lock class `{c}` not in the golden order — add it deliberately"),
        );
    }
    for (f, t) in want_edges.difference(&got_edges) {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            LOCK_GOLDEN_FIXTURE,
            format!("pinned lock-order edge `{f} -> {t}` no longer observed"),
        );
    }
    for (f, t) in got_edges.difference(&want_edges) {
        ok = false;
        report.push(
            RULE_LOCKS,
            Severity::Error,
            LOCK_GOLDEN_FIXTURE,
            format!("new lock-order edge `{f} -> {t}` not in the golden order"),
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root")
    }

    #[test]
    fn workspace_lock_graph_is_acyclic_and_matches_golden() {
        let mut report = AnalysisReport::new();
        let cert = analyze_locks(&root(), &mut report)
            .unwrap_or_else(|| panic!("lock certificate should be clean: {:#?}", report.findings));
        assert!(report.passes(), "{:#?}", report.findings);
        assert!(cert.acyclic);
        let classes: Vec<&str> = cert.classes.iter().map(String::as_str).collect();
        assert_eq!(
            classes,
            vec![
                "engine.plans",
                "faultpoint.EXCLUSIVE",
                "faultpoint.state",
                "scheduler.deques",
                "scheduler.slots",
                "serve.queue",
                "serve.workers",
            ]
        );
        let edges: Vec<(String, String)> = cert
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        assert_eq!(
            edges,
            vec![
                ("engine.plans".to_string(), "faultpoint.state".to_string()),
                ("serve.queue".to_string(), "faultpoint.state".to_string()),
            ],
            "{:#?}",
            cert.edges
        );
        assert_eq!(cert.order.len(), cert.classes.len());
        // The committed golden must match.
        let golden = std::fs::read_to_string(root().join(LOCK_GOLDEN_FIXTURE)).expect("golden");
        let mut greport = AnalysisReport::new();
        assert!(
            check_golden(&cert, &golden, &mut greport),
            "{:#?}",
            greport.findings
        );
    }

    #[test]
    fn inversion_fixture_is_detected_as_a_cycle() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/locks/inversion.rs");
        let source = std::fs::read_to_string(path).expect("inversion fixture");
        let mut report = AnalysisReport::new();
        let files = vec![("fixtures/locks/inversion.rs".to_string(), source)];
        assert!(analyze_lock_sources(&files, &mut report).is_none());
        assert!(
            report.findings.iter().any(|f| f.message.contains("cycle")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn golden_drift_is_detected() {
        let mut report = AnalysisReport::new();
        let cert = analyze_locks(&root(), &mut report).expect("certificate");
        let tampered = golden_text(&cert).replace("class serve.queue\n", "");
        let mut greport = AnalysisReport::new();
        assert!(!check_golden(&cert, &tampered, &mut greport));
        assert!(greport
            .findings
            .iter()
            .any(|f| f.message.contains("serve.queue")));
    }

    #[test]
    fn temporary_guard_creates_no_edge() {
        // `process_one` idiom: the guard is a temporary of the first
        // statement and must be released before the second acquisition.
        let src = "fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                   lock.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   }\n\
                   fn helper(queue: &Mutex<Vec<u8>>, other: &Mutex<u8>) {\n\
                   let job = relock(queue).pop();\n\
                   let _g = relock(other);\n\
                   let _ = job;\n\
                   }\n";
        let mut report = AnalysisReport::new();
        let files = vec![("crates/core/src/demo.rs".to_string(), src.to_string())];
        let cert = analyze_lock_sources(&files, &mut report).expect("cert");
        assert!(cert.edges.is_empty(), "{:#?}", cert.edges);
    }

    #[test]
    fn block_bound_guard_creates_call_edges() {
        let src = "fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                   lock.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   }\n\
                   fn inner_acquire(state: &Mutex<u8>) {\n\
                   let _g = relock(state);\n\
                   }\n\
                   fn outer(queue: &Mutex<Vec<u8>>, state: &Mutex<u8>) {\n\
                   let q = relock(queue);\n\
                   inner_acquire(state);\n\
                   let _ = q;\n\
                   }\n";
        let mut report = AnalysisReport::new();
        let files = vec![("crates/core/src/demo.rs".to_string(), src.to_string())];
        let cert = analyze_lock_sources(&files, &mut report).expect("cert");
        let edges: Vec<(String, String)> = cert
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        assert_eq!(
            edges,
            vec![("demo.queue".to_string(), "demo.state".to_string())],
            "{:#?}",
            cert.edges
        );
    }

    #[test]
    fn catch_unwind_under_a_held_lock_is_an_error() {
        let src = "fn bad(queue: &Mutex<Vec<u8>>) {\n\
                   let q = queue.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   let _r = catch_unwind(|| q.len());\n\
                   }\n";
        let mut report = AnalysisReport::new();
        let files = vec![("crates/core/src/demo.rs".to_string(), src.to_string())];
        assert!(analyze_lock_sources(&files, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("catch_unwind")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn reentrant_acquisition_is_an_error() {
        let src = "fn bad(state: &Mutex<u8>) {\n\
                   let a = state.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   let b = state.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   let _ = (a, b);\n\
                   }\n";
        let mut report = AnalysisReport::new();
        let files = vec![("crates/core/src/demo.rs".to_string(), src.to_string())];
        assert!(analyze_lock_sources(&files, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("re-entrant")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn header_bound_guard_spans_the_body() {
        // An if-let header temporary lives to the end of the body
        // (Rust 2021): an acquisition inside the body is a real edge.
        let src = "fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                   lock.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   }\n\
                   fn pump(deques: &[Mutex<VecDeque<u8>>], slots: &Mutex<u8>) {\n\
                   if let Some(task) = relock(&deques[0]).pop_front() {\n\
                   let _s = relock(slots);\n\
                   let _ = task;\n\
                   }\n\
                   }\n";
        let mut report = AnalysisReport::new();
        let files = vec![("crates/core/src/demo.rs".to_string(), src.to_string())];
        let cert = analyze_lock_sources(&files, &mut report).expect("cert");
        let edges: Vec<(String, String)> = cert
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        assert_eq!(
            edges,
            vec![("demo.deques".to_string(), "demo.slots".to_string())]
        );
    }
}
