//! Pass 3 of `ddl-cert`: static rounding-error bounds for verified
//! codelet DAGs.
//!
//! The cross-backend conformance suite historically compared every
//! backend against the scalar oracle with one flat tolerance (4096
//! ulps for every size). That number was folklore. This pass derives a
//! per-size bound from the *actual* generated expression DAGs: a
//! standard forward error analysis propagates a magnitude bound `M`
//! and an absolute-error bound `E` through every node
//! (`u = 2⁻⁵³` is the unit roundoff for round-to-nearest f64):
//!
//! * `LoadRe`/`LoadIm`: `M = 1` (inputs are normalized to unit scale),
//!   `E = 0`;
//! * `Const(c)`: `M = |c|`, `E = 0`;
//! * `Neg(a)`: exact — bounds pass through;
//! * `Add/Sub(a, b)`: `M = Mₐ + M_b`, `E = Eₐ + E_b + u·M`;
//! * `MulC(c, a)`: `M = |c|·Mₐ`, `E = |c|·Eₐ + u·M`.
//!
//! `r_dag(n)` is the worst `E / (u·M)` over all store roots — the
//! relative rounding headroom of the `n`-point codelet in units of
//! `u`, i.e. roughly "ulps at the output's magnitude scale". Above the
//! largest codelet size the executor composes levels of verified
//! codelets plus twiddle multiplications, each contributing a bounded
//! number of rounding steps, so the bound grows linearly in the number
//! of composed levels:
//!
//! ```text
//! bound(n) = ⌈KAPPA · (r_dag(min(n, 64)) + C_LEVEL·max(0, log2 n − 6)
//!                      + C_DISPATCH)⌉
//! ```
//!
//! `KAPPA` absorbs the slop between "error relative to the magnitude
//! bound" and "ulps relative to the actual output value" (cancellation
//! shrinks outputs below `M`; both compared computations round). The
//! constants are deliberately generous — the point is not a tight
//! bound but a *derived, monotone, per-size* one that is strictly
//! better than the flat 4096 for every size the suite sweeps, and that
//! moves automatically if the generator ever emits deeper DAGs.

use crate::dag::CodeletDag;
use crate::findings::{AnalysisReport, Severity};
use ddl_num::Direction;
use std::sync::OnceLock;

/// Rule id for error-bound findings.
pub const RULE_ERRBOUND: &str = "cert/errbound";

/// Largest size with a generated codelet DAG (the SIMD leaf cap).
pub const MAX_CODELET: usize = 64;

/// Ulps-per-`u` slack between the magnitude-relative model and the
/// value-relative ulp measurement.
pub const KAPPA: f64 = 32.0;

/// Rounding headroom added per composed radix level above the largest
/// codelet (twiddle multiply + butterfly accumulation).
pub const C_LEVEL: f64 = 3.0;

/// Headroom for dispatch-boundary effects (strided views, scratch
/// copies, FMA contraction differences between backends).
pub const C_DISPATCH: f64 = 2.0;

/// Unit roundoff of f64 under round-to-nearest.
const UNIT: f64 = 1.0 / ((1u64 << 53) as f64);

/// Derived bound facts for one codelet size.
#[derive(Clone, Copy, Debug)]
pub struct SizeBound {
    /// Codelet size (power of two, `2..=MAX_CODELET`).
    pub n: usize,
    /// Worst relative rounding headroom `E/(u·M)` over both
    /// directions' store roots.
    pub r_dag: f64,
    /// Longest rounding-operation chain in the DAG (worst direction).
    pub depth: usize,
    /// The derived conformance bound in ulps.
    pub ulps: u64,
}

/// Propagates `(M, E)` through one direction's DAG; returns the worst
/// `E/(u·M)` over store roots and the arithmetic depth.
fn analyze_direction(n: usize, dir: Direction) -> (f64, usize) {
    use ddl_codegen::Node;
    let dag = CodeletDag::generate(n, dir);
    let g = &dag.graph;
    let mut mag = vec![0.0f64; g.len()];
    let mut err = vec![0.0f64; g.len()];
    for i in 0..g.len() {
        let id = ddl_codegen::ExprId(i as u32);
        let (m, e) = match g.node(id) {
            Node::LoadRe(_) | Node::LoadIm(_) => (1.0, 0.0),
            Node::Const(b) => (f64::from_bits(b).abs(), 0.0),
            Node::Neg(a) => (mag[a.0 as usize], err[a.0 as usize]),
            Node::Add(a, b) | Node::Sub(a, b) => {
                let m = mag[a.0 as usize] + mag[b.0 as usize];
                (m, err[a.0 as usize] + err[b.0 as usize] + UNIT * m)
            }
            Node::MulC(c, a) => {
                let c = f64::from_bits(c).abs();
                let m = c * mag[a.0 as usize];
                (m, c * err[a.0 as usize] + UNIT * m)
            }
        };
        mag[i] = m;
        err[i] = e;
    }
    let mut worst = 0.0f64;
    let mut roots = Vec::new();
    for s in &dag.stores {
        for id in [s.re, s.im] {
            roots.push(id);
            let m = mag[id.0 as usize];
            if m > 0.0 {
                worst = worst.max(err[id.0 as usize] / (UNIT * m));
            }
        }
    }
    (worst, g.depth(&roots))
}

/// The per-size bound table for every power-of-two codelet size,
/// computed once.
pub fn bound_table() -> &'static [SizeBound] {
    static TABLE: OnceLock<Vec<SizeBound>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut out = Vec::new();
        let mut n = 2usize;
        while n <= MAX_CODELET {
            let (rf, df) = analyze_direction(n, Direction::Forward);
            let (ri, di) = analyze_direction(n, Direction::Inverse);
            let r_dag = rf.max(ri);
            out.push(SizeBound {
                n,
                r_dag,
                depth: df.max(di),
                ulps: compose(r_dag, n),
            });
            n *= 2;
        }
        out
    })
}

/// Applies the level-composition formula to a codelet headroom.
fn compose(r_dag: f64, n: usize) -> u64 {
    let lg = n.next_power_of_two().trailing_zeros() as f64;
    let levels_above = (lg - (MAX_CODELET.trailing_zeros() as f64)).max(0.0);
    (KAPPA * (r_dag + C_LEVEL * levels_above + C_DISPATCH)).ceil() as u64
}

/// The static conformance bound in ulps for an `n`-point transform.
///
/// Sizes up to [`MAX_CODELET`] use their own codelet's derived
/// headroom; larger sizes compose the largest codelet's headroom with
/// `C_LEVEL` per radix level above it. Non-powers-of-two round up to
/// the next power of two (the planner decomposes them no deeper).
pub fn static_ulp_bound(n: usize) -> u64 {
    if n <= 1 {
        // A 0/1-point transform moves data without arithmetic.
        return (KAPPA * C_DISPATCH) as u64;
    }
    let table = bound_table();
    let p = n.next_power_of_two().min(MAX_CODELET);
    let r_dag = table
        .iter()
        .find(|b| b.n >= p)
        .map(|b| b.r_dag)
        .unwrap_or(0.0);
    compose(r_dag, n)
}

/// Certifies the bound table: every derived headroom must be positive
/// and finite, and the composed bounds monotone in `n` and strictly
/// below the legacy flat 4096 for every size the conformance suite
/// sweeps (up to 2^14). Pushes findings and returns success.
pub fn verify_bounds(report: &mut AnalysisReport) -> bool {
    let mut ok = true;
    report.subject();
    for b in bound_table() {
        if !(b.r_dag.is_finite() && b.r_dag > 0.0) {
            ok = false;
            report.push(
                RULE_ERRBOUND,
                Severity::Error,
                &format!("dft{}", b.n),
                format!("degenerate derived headroom r_dag = {}", b.r_dag),
            );
        }
    }
    let mut prev = 0u64;
    for lg in 1u32..=14 {
        let n = 1usize << lg;
        let b = static_ulp_bound(n);
        if b < prev {
            ok = false;
            report.push(
                RULE_ERRBOUND,
                Severity::Error,
                &format!("dft{n}"),
                format!("bound not monotone: {b} ulps < {prev} ulps for the previous size"),
            );
        }
        if b >= 4096 {
            ok = false;
            report.push(
                RULE_ERRBOUND,
                Severity::Error,
                &format!("dft{n}"),
                format!("derived bound {b} ulps does not improve on the legacy flat 4096"),
            );
        }
        prev = b;
    }
    report.check();
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_and_beat_the_flat_legacy_bound() {
        let mut report = AnalysisReport::new();
        assert!(verify_bounds(&mut report), "{:#?}", report.findings);
        assert!(report.passes());
    }

    #[test]
    fn table_covers_every_codelet_size() {
        let sizes: Vec<usize> = bound_table().iter().map(|b| b.n).collect();
        assert_eq!(sizes, vec![2, 4, 8, 16, 32, 64]);
        for b in bound_table() {
            assert!(b.depth >= 1, "{b:?}");
            assert!(b.ulps >= 64, "{b:?}"); // KAPPA * C_DISPATCH floor
        }
    }

    #[test]
    fn headroom_grows_with_codelet_depth() {
        let t = bound_table();
        let r2 = t[0].r_dag;
        let r64 = t[t.len() - 1].r_dag;
        assert!(r64 > r2, "r_dag(64)={r64} vs r_dag(2)={r2}");
        let d64 = t[t.len() - 1].depth;
        assert!(d64 >= 6, "64-point DAG depth {d64} below log2(64)");
    }

    #[test]
    fn composed_sizes_extend_linearly() {
        let b64 = static_ulp_bound(64);
        let b128 = static_ulp_bound(128);
        let b4096 = static_ulp_bound(4096);
        assert_eq!(b128 - b64, (KAPPA * C_LEVEL) as u64);
        assert_eq!(b4096 - b64, 6 * (KAPPA * C_LEVEL) as u64);
    }

    #[test]
    fn non_powers_of_two_round_up() {
        assert_eq!(static_ulp_bound(3), static_ulp_bound(4));
        assert_eq!(static_ulp_bound(100), static_ulp_bound(128));
    }

    #[test]
    fn print_table_for_reference() {
        for b in bound_table() {
            eprintln!(
                "n={:3} r_dag={:8.3} depth={:2} ulps={}",
                b.n, b.r_dag, b.depth, b.ulps
            );
        }
        for lg in 7..=14 {
            eprintln!("n={:6} ulps={}", 1usize << lg, static_ulp_bound(1 << lg));
        }
    }
}
