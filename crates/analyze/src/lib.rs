//! Static analysis for the dynamic-data-layout system.
//!
//! The paper's argument is itself a static analysis: from a plan's
//! `(size, stride)` decomposition alone it predicts which leaf accesses
//! conflict in a set-associative cache and when a dynamic layout
//! reorganization pays off. This crate turns that style of reasoning
//! into correctness tooling with three independent passes:
//!
//! * [`access`] — walks any planner-emitted tree symbolically and proves
//!   every strided view in-bounds, every primitive step alias-free, and
//!   the scratch/twiddle accounting consistent with the compiled plan;
//!   it also derives the exact access count, cross-checked against
//!   `ddl-cachesim` traces.
//! * [`conflict`] — closed-form cache-set conflict degrees per access
//!   family (the static counterpart to simulated conflict misses).
//! * [`attrib`] — static enrichment of `ddl-core` attribution runs and
//!   the three-way empirical/model/static Case III cross-check.
//! * [`dag`] — structural verification of `ddl-codegen` codelet DAGs:
//!   store coverage, load reachability, constant sanity, op budgets.
//! * [`lint`] — workspace source lints (`ddl-lint`): no panics in
//!   library code, no clocks in pure planning code,
//!   `#![forbid(unsafe_code)]` everywhere.
//!
//! All passes report through [`findings::AnalysisReport`], which
//! serializes to the versioned `ddl-analyze` JSON schema; CI gates on
//! `error`-severity findings via the `ddl_analyze` and `ddl_lint`
//! binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod attrib;
pub mod conflict;
pub mod dag;
pub mod findings;
pub mod lint;

pub use access::{
    analyze_dft_plan, analyze_dft_tree, analyze_wht_plan, analyze_wht_tree, AccessSet, LeafFamily,
    Region, StaticAnalysis,
};
pub use attrib::{annotate_static, annotated_leaves, crosscheck, Disagreement};
pub use conflict::{
    conflict_degree, conflict_summary, CacheGeometry, ConflictInfo, ConflictSummary,
};
pub use dag::{op_budget, verify_codelet, verify_generated, CodeletDag};
pub use findings::{AnalysisReport, Finding, Severity, ANALYZE_SCHEMA, ANALYZE_VERSION};
pub use lint::{lint_source, lint_workspace, RuleSet};
