//! Static analysis for the dynamic-data-layout system.
//!
//! The paper's argument is itself a static analysis: from a plan's
//! `(size, stride)` decomposition alone it predicts which leaf accesses
//! conflict in a set-associative cache and when a dynamic layout
//! reorganization pays off. This crate turns that style of reasoning
//! into correctness tooling with three independent passes:
//!
//! * [`access`] — walks any planner-emitted tree symbolically and proves
//!   every strided view in-bounds, every primitive step alias-free, and
//!   the scratch/twiddle accounting consistent with the compiled plan;
//!   it also derives the exact access count, cross-checked against
//!   `ddl-cachesim` traces.
//! * [`conflict`] — closed-form cache-set conflict degrees per access
//!   family (the static counterpart to simulated conflict misses).
//! * [`attrib`] — static enrichment of `ddl-core` attribution runs and
//!   the three-way empirical/model/static Case III cross-check.
//! * [`dag`] — structural verification of `ddl-codegen` codelet DAGs:
//!   store coverage, load reachability, constant sanity, op budgets.
//! * [`lint`] — workspace source lints (`ddl-lint`): no panics in
//!   library code, no clocks in pure planning code,
//!   `#![forbid(unsafe_code)]` everywhere, no dead `allow` markers.
//! * [`ptr`] — the unsafe-pointer verifier: parses the SIMD kernels in
//!   `arch.rs` into a small pointer IR and proves every intrinsic
//!   load/store in-bounds and aligned for every supported shape, with
//!   a seeded-mutation self-test.
//! * [`locks`] — the lock-order analyzer: acquisition sites, guard
//!   extents, the inter-procedural lock-order graph, cycle and
//!   held-across-unwind checks, pinned golden order.
//! * [`errbound`] — static per-size ulp error bounds derived from the
//!   verified codelet DAGs, replacing the legacy flat tolerance.
//! * [`cert`] — binds the three passes into the versioned, machine-
//!   checkable `ddl-cert` certificate artifact.
//!
//! All passes report through [`findings::AnalysisReport`], which
//! serializes to the versioned `ddl-analyze` JSON schema; CI gates on
//! `error`-severity findings via the `ddl_analyze`, `ddl_lint` and
//! `ddl_cert` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod attrib;
pub mod cert;
pub mod conflict;
pub mod dag;
pub mod errbound;
pub mod findings;
pub mod lint;
pub mod locks;
pub mod ptr;
mod tok;

pub use access::{
    analyze_dft_plan, analyze_dft_tree, analyze_wht_plan, analyze_wht_tree, AccessSet, LeafFamily,
    Region, StaticAnalysis,
};
pub use attrib::{annotate_static, annotated_leaves, crosscheck, Disagreement};
pub use cert::{build_certificate, check_cert_text, CertSummary, CERT_SCHEMA, CERT_VERSION};
pub use conflict::{
    conflict_degree, conflict_summary, CacheGeometry, ConflictInfo, ConflictSummary,
};
pub use dag::{op_budget, verify_codelet, verify_generated, CodeletDag};
pub use errbound::{static_ulp_bound, SizeBound};
pub use findings::{AnalysisReport, Finding, Severity, ANALYZE_SCHEMA, ANALYZE_VERSION};
pub use lint::{lint_source, lint_workspace, RuleSet, RULE_DEAD_ALLOW};
pub use locks::{analyze_locks, LockCertificate, LockEdge};
pub use ptr::{mutation_sweep, verify_arch, MutationKind, PtrCertificate, PtrMutation};
