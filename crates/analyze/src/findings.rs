//! Machine-readable analysis findings and the versioned `ddl-analyze`
//! report schema.
//!
//! Every check the analyzer, DAG verifier and source linter run reports
//! through one [`AnalysisReport`]: a flat list of [`Finding`]s plus a
//! count of checks that ran (so "no findings" is distinguishable from
//! "nothing was checked"). Reports serialize through the in-tree JSON
//! module with the same versioned-schema discipline as `ddl-metrics`:
//! a `schema`/`version` pair up front, strict parsing, and refusal of
//! documents newer than this library understands.

use ddl_core::json::Json;
use ddl_num::DdlError;
use std::collections::BTreeMap;

/// Schema identifier emitted in every report document.
pub const ANALYZE_SCHEMA: &str = "ddl-analyze";
/// Current schema version. Bump on breaking layout changes; parsing
/// refuses documents with a newer version.
pub const ANALYZE_VERSION: u32 = 1;

/// How serious a finding is. `Error` findings gate CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a property worth surfacing, not a defect.
    Info,
    /// Suspicious but not provably wrong (e.g. a dead DAG node).
    Warning,
    /// A proven violation: out-of-bounds access, aliasing, a dropped
    /// store, a banned construct. CI fails on any of these.
    Error,
}

impl Severity {
    /// Stable lowercase name used in report documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    fn from_label(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One finding: a rule identifier, a severity, the subject it applies to
/// (a plan key like `dft:1024:ddl`, a codelet like `dag:dft16_f`, or a
/// `file:line` for source lints) and a human-readable message.
#[derive(Clone, Debug, PartialEq)]
#[must_use]
pub struct Finding {
    /// Stable rule identifier, e.g. `plan/out-of-bounds` or
    /// `lint/no-panics`.
    pub rule: String,
    /// Severity; `Error` findings gate CI.
    pub severity: Severity,
    /// What the finding applies to.
    pub subject: String,
    /// Human-readable diagnostic.
    pub message: String,
}

/// Accumulated result of an analysis run.
#[derive(Clone, Debug, Default, PartialEq)]
#[must_use]
pub struct AnalysisReport {
    /// All findings, in the order they were produced.
    pub findings: Vec<Finding>,
    /// Number of individual checks that ran (bounds proofs, aliasing
    /// proofs, DAG checks, linted lines...). Zero checks means the run
    /// proved nothing.
    pub checks: u64,
    /// Number of subjects (plans, codelets, files) examined.
    pub subjects: u64,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> AnalysisReport {
        AnalysisReport::default()
    }

    /// Records one finding.
    pub fn push(&mut self, rule: &str, severity: Severity, subject: &str, message: String) {
        self.findings.push(Finding {
            rule: rule.to_string(),
            severity,
            subject: subject.to_string(),
            message,
        });
    }

    /// Counts one executed check.
    pub fn check(&mut self) {
        self.checks += 1;
    }

    /// Counts one examined subject.
    pub fn subject(&mut self) {
        self.subjects += 1;
    }

    /// Appends another report's findings and counters into this one.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
        self.checks += other.checks;
        self.subjects += other.subjects;
    }

    /// Number of findings at exactly the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Number of `Error` findings — the CI gate.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// True when the run is clean at the gating severity.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.error_count() == 0
    }

    /// Serializes to the versioned `ddl-analyze` document.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert("schema".into(), Json::Str(ANALYZE_SCHEMA.into()));
        top.insert("version".into(), Json::Num(ANALYZE_VERSION as f64));
        top.insert("checks".into(), Json::Num(self.checks as f64));
        top.insert("subjects".into(), Json::Num(self.subjects as f64));
        let mut summary = BTreeMap::new();
        summary.insert(
            "errors".into(),
            Json::Num(self.count(Severity::Error) as f64),
        );
        summary.insert(
            "warnings".into(),
            Json::Num(self.count(Severity::Warning) as f64),
        );
        summary.insert("info".into(), Json::Num(self.count(Severity::Info) as f64));
        top.insert("summary".into(), Json::Obj(summary));
        top.insert(
            "findings".into(),
            Json::Arr(
                self.findings
                    .iter()
                    .map(|f| {
                        let mut m = BTreeMap::new();
                        m.insert("rule".into(), Json::Str(f.rule.clone()));
                        m.insert("severity".into(), Json::Str(f.severity.label().into()));
                        m.insert("subject".into(), Json::Str(f.subject.clone()));
                        m.insert("message".into(), Json::Str(f.message.clone()));
                        Json::Obj(m)
                    })
                    .collect(),
            ),
        );
        Json::Obj(top)
    }

    /// Parses a report document, validating schema, version and summary
    /// consistency.
    pub fn parse(text: &str) -> Result<AnalysisReport, DdlError> {
        let doc = ddl_core::json::parse(text).map_err(|e| bad(format!("not valid JSON: {e}")))?;
        AnalysisReport::from_json(&doc)
    }

    /// Validates and converts a parsed JSON document.
    pub fn from_json(doc: &Json) -> Result<AnalysisReport, DdlError> {
        let top = doc
            .as_obj()
            .ok_or_else(|| bad("top level is not an object".into()))?;
        match top.get("schema").and_then(Json::as_str) {
            Some(ANALYZE_SCHEMA) => {}
            Some(other) => return Err(bad(format!("schema is {other:?}, not {ANALYZE_SCHEMA:?}"))),
            None => return Err(bad("missing schema field".into())),
        }
        let version = top
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing or non-integer version".into()))?;
        if version > ANALYZE_VERSION as u64 {
            return Err(bad(format!(
                "report version {version} is newer than supported version {ANALYZE_VERSION}"
            )));
        }
        let checks = top
            .get("checks")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing or non-integer checks".into()))?;
        let subjects = top
            .get("subjects")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing or non-integer subjects".into()))?;
        let raw = match top.get("findings") {
            Some(Json::Arr(items)) => items,
            _ => return Err(bad("missing or non-array findings".into())),
        };
        let mut findings = Vec::with_capacity(raw.len());
        for item in raw {
            let m = item
                .as_obj()
                .ok_or_else(|| bad("finding is not an object".into()))?;
            let get = |key: &str| -> Result<String, DdlError> {
                m.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(format!("finding missing string field {key:?}")))
            };
            let severity = Severity::from_label(&get("severity")?)
                .ok_or_else(|| bad("finding has unknown severity".into()))?;
            findings.push(Finding {
                rule: get("rule")?,
                severity,
                subject: get("subject")?,
                message: get("message")?,
            });
        }
        let report = AnalysisReport {
            findings,
            checks,
            subjects,
        };
        // The summary block is derived data; a document whose summary
        // disagrees with its findings list was hand-edited or corrupted.
        if let Some(summary) = top.get("summary").and_then(Json::as_obj) {
            for (key, severity) in [
                ("errors", Severity::Error),
                ("warnings", Severity::Warning),
                ("info", Severity::Info),
            ] {
                let declared = summary
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(format!("summary missing integer {key:?}")))?;
                if declared != report.count(severity) as u64 {
                    return Err(bad(format!(
                        "summary declares {declared} {key} but findings list has {}",
                        report.count(severity)
                    )));
                }
            }
        } else {
            return Err(bad("missing summary object".into()));
        }
        Ok(report)
    }
}

fn bad(detail: String) -> DdlError {
    DdlError::Metrics {
        detail: format!("ddl-analyze report: {detail}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        let mut r = AnalysisReport::new();
        r.subject();
        r.check();
        r.check();
        r.push(
            "plan/out-of-bounds",
            Severity::Error,
            "dft:64:sdl",
            "leaf view exceeds input".into(),
        );
        r.push(
            "dag/dead-node",
            Severity::Warning,
            "dag:dft16_f",
            "node 12 unreachable".into(),
        );
        r
    }

    #[test]
    fn round_trips_through_json() {
        let r = sample();
        let text = r.to_json().pretty();
        let back = AnalysisReport::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn refuses_newer_versions() {
        let mut doc = sample().to_json();
        if let Json::Obj(m) = &mut doc {
            m.insert("version".into(), Json::Num((ANALYZE_VERSION + 1) as f64));
        }
        let got = AnalysisReport::from_json(&doc);
        assert!(matches!(got, Err(DdlError::Metrics { .. })), "{got:?}");
    }

    #[test]
    fn refuses_wrong_schema_and_bad_summary() {
        let mut doc = sample().to_json();
        if let Json::Obj(m) = &mut doc {
            m.insert("schema".into(), Json::Str("ddl-metrics".into()));
        }
        assert!(AnalysisReport::from_json(&doc).is_err());

        let mut doc = sample().to_json();
        if let Json::Obj(m) = &mut doc {
            let mut summary = BTreeMap::new();
            summary.insert("errors".into(), Json::Num(9.0));
            summary.insert("warnings".into(), Json::Num(1.0));
            summary.insert("info".into(), Json::Num(0.0));
            m.insert("summary".into(), Json::Obj(summary));
        }
        assert!(AnalysisReport::from_json(&doc).is_err());
    }

    #[test]
    fn severity_counts_and_gate() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(!r.passes());
        assert!(AnalysisReport::new().passes());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(b);
        assert_eq!(a.findings.len(), 4);
        assert_eq!(a.checks, 4);
        assert_eq!(a.subjects, 2);
    }
}
