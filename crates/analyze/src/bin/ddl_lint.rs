//! Workspace source lint gate (xtask-style).
//!
//! Runs the repo-invariant lints from `ddl_analyze::lint` over the
//! workspace and exits non-zero on any `error`-severity finding:
//!
//! * `lint/no-panics` — no `unwrap`/`expect`/`panic!` family calls in
//!   non-test library code (try-first rule);
//! * `lint/no-std-time` — no clock reads in pure planning code;
//! * `lint/forbid-unsafe` — `#![forbid(unsafe_code)]` in every crate
//!   root, vendored stand-ins included.
//!
//! ```sh
//! cargo run --release -p ddl-analyze --bin ddl_lint
//! cargo run --release -p ddl-analyze --bin ddl_lint -- --root . --out target/lint-report.json
//! ```

use ddl_analyze::{AnalysisReport, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    // Accept being launched from the workspace root or a crate dir.
    if !root.join("crates").is_dir() && root.join("../../crates").is_dir() {
        root = root.join("../..");
    }

    let mut report = AnalysisReport::new();
    if let Err(e) = ddl_analyze::lint_workspace(&root, &mut report) {
        eprintln!("ddl_lint: walking {} failed: {e}", root.display());
        return ExitCode::from(2);
    }

    if let Some(path) = out {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        if let Err(e) = std::fs::write(&path, report.to_json().pretty()) {
            eprintln!("ddl_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        eprintln!(
            "{}: {} [{}] {}",
            f.severity.label(),
            f.subject,
            f.rule,
            f.message
        );
    }
    eprintln!(
        "ddl-lint: {} files scanned, {} checks, {} errors",
        report.subjects,
        report.checks,
        report.count(Severity::Error)
    );
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ddl_lint: {msg}\nusage: ddl_lint [--root <path>] [--out <path>]");
    ExitCode::from(2)
}
