//! Static plan/DAG analysis gate (the CI counterpart to `ddl-lint`).
//!
//! Two modes:
//!
//! * **analyze** (default) — plans every size `2^1..2^max` with both
//!   strategies under a sweep of reorganization thresholds (analytical
//!   backend, fully deterministic), statically proves each emitted plan
//!   in-bounds and alias-free at several root strides, cross-checks the
//!   scratch/twiddle accounting against the compiled plans, computes
//!   cache-conflict summaries under the paper's cache geometry, and
//!   structurally verifies every generated codelet DAG. The findings
//!   report is written to `--out <path>` (stdout when omitted) in the
//!   versioned `ddl-analyze` schema. Exits non-zero on any
//!   `error`-severity finding.
//! * **`--check <path>`** — re-parses a previously written report
//!   (schema/version/summary validation) and exits by its error count,
//!   so CI can gate on the uploaded artifact.
//!
//! ```sh
//! cargo run --release -p ddl-analyze --bin ddl_analyze -- --out target/analyze-report.json
//! cargo run --release -p ddl-analyze --bin ddl_analyze -- --check target/analyze-report.json
//! ```

use ddl_analyze::conflict::conflict_findings;
use ddl_analyze::{verify_generated, AnalysisReport, CacheGeometry, Severity};
use ddl_cachesim::CacheConfig;
use ddl_core::planner::{try_plan_dft, try_plan_wht, PlannerConfig, Strategy};
use ddl_core::{CacheModel, DftPlan, WhtPlan};
use ddl_num::Direction;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Root strides the executor contract must hold at (1 is the batch/API
/// default; the odd stride exercises non-unit, non-power-of-two views).
const ROOT_STRIDES: &[usize] = &[1, 7];

/// Complex point size in bytes (DFT).
const POINT_BYTES: usize = 16;

fn main() -> ExitCode {
    let mut max_log: u32 = 16;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-log-n" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_log = v,
                None => return usage("--max-log-n needs an integer"),
            },
            "--quick" => max_log = 12,
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(v) => check = Some(PathBuf::from(v)),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    match check {
        Some(path) => check_report(&path),
        None => analyze(max_log, out.as_deref()),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "ddl_analyze: {msg}\n\
         usage: ddl_analyze [--max-log-n <k>] [--quick] [--out <path>] | --check <path>"
    );
    ExitCode::from(2)
}

fn analyze(max_log: u32, out: Option<&Path>) -> ExitCode {
    let mut report = AnalysisReport::new();
    let geom = CacheGeometry::from_config(&CacheConfig::paper_default(64));

    // Reorganization thresholds (in points): reorg considered
    // everywhere, at several sub-cache sizes, at the paper default, and
    // nowhere. Together with both strategies this covers every shape of
    // tree the planner can emit.
    let thresholds: Vec<usize> = vec![
        1,
        1 << 6,
        1 << 10,
        CacheModel::paper_default().capacity_points,
        usize::MAX,
    ];

    for k in 1..=max_log {
        let n = 1usize << k;
        for strategy in [Strategy::Sdl, Strategy::Ddl] {
            for &cache_points in &thresholds {
                let mut cfg = match strategy {
                    Strategy::Sdl => PlannerConfig::sdl_analytical(),
                    Strategy::Ddl => PlannerConfig::ddl_analytical(),
                };
                cfg.cache_points = cache_points;
                let tag = if cache_points == usize::MAX {
                    "tinf".to_string()
                } else {
                    format!("t{cache_points}")
                };

                let subject = format!("dft:{n}:{}:{tag}", strategy.label());
                match try_plan_dft(n, &cfg)
                    .and_then(|outcome| DftPlan::new(outcome.tree, Direction::Forward))
                {
                    Ok(plan) => {
                        let mut analysis = None;
                        for &stride in ROOT_STRIDES {
                            analysis = Some(ddl_analyze::analyze_dft_plan(
                                &plan,
                                stride,
                                &subject,
                                &mut report,
                            ));
                        }
                        if let Some(a) = analysis {
                            let _ =
                                conflict_findings(&a, &geom, POINT_BYTES, &subject, &mut report);
                        }
                    }
                    Err(e) => report.push(
                        "plan/build-failed",
                        Severity::Error,
                        &subject,
                        format!("planner or plan construction failed: {e}"),
                    ),
                }

                let subject = format!("wht:{n}:{}:{tag}", strategy.label());
                match try_plan_wht(n, &cfg).and_then(|outcome| WhtPlan::new(outcome.tree)) {
                    Ok(plan) => {
                        let mut analysis = None;
                        for &stride in ROOT_STRIDES {
                            analysis = Some(ddl_analyze::analyze_wht_plan(
                                &plan,
                                stride,
                                &subject,
                                &mut report,
                            ));
                        }
                        if let Some(a) = analysis {
                            let _ = conflict_findings(&a, &geom, 8, &subject, &mut report);
                        }
                    }
                    Err(e) => report.push(
                        "plan/build-failed",
                        Severity::Error,
                        &subject,
                        format!("planner or plan construction failed: {e}"),
                    ),
                }
            }
        }
    }

    // Codegen DAG verification over the shipped codelet set plus a
    // broader sweep of generatable sizes.
    verify_generated(ddl_kernels::generated::GENERATED_SIZES, &mut report);
    verify_generated(&[1, 2, 4, 6, 8, 9, 10, 12, 15, 20, 64], &mut report);

    let text = report.to_json().pretty();
    if let Some(path) = out {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("ddl_analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    } else {
        println!("{text}");
    }
    finish(&report)
}

fn check_report(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("ddl_analyze: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match AnalysisReport::parse(&text) {
        Ok(report) => finish(&report),
        Err(e) => {
            eprintln!("ddl_analyze: {}: invalid report: {e}", path.display());
            ExitCode::from(2)
        }
    }
}

fn finish(report: &AnalysisReport) -> ExitCode {
    for f in &report.findings {
        eprintln!(
            "{}: {} [{}] {}",
            f.severity.label(),
            f.subject,
            f.rule,
            f.message
        );
    }
    eprintln!(
        "ddl-analyze: {} subjects, {} checks, {} errors, {} warnings, {} info",
        report.subjects,
        report.checks,
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Info),
    );
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
