//! `ddl-cert`: machine-checkable certificate gate (xtask-style).
//!
//! Default mode runs all three verification passes (unsafe-pointer
//! proof over `arch.rs`, lock-order graph vs. the pinned golden,
//! static ulp error bounds) plus the seeded-mutation self-test, writes
//! the versioned `ddl-cert` document, and exits non-zero if any pass
//! fails. `--check` re-validates an existing document without
//! re-running the proofs. `--demo-mutation` seeds one known violation
//! and exits zero only if the verifier catches it — CI runs it
//! expecting *failure to certify*, proving the gate can fail.
//!
//! ```sh
//! cargo run --release -p ddl-analyze --bin ddl_cert
//! cargo run --release -p ddl-analyze --bin ddl_cert -- --out target/cert-report.json
//! cargo run --release -p ddl-analyze --bin ddl_cert -- --check target/cert-report.json
//! cargo run --release -p ddl-analyze --bin ddl_cert -- --demo-mutation ptr-off-by-one
//! cargo run --release -p ddl-analyze --bin ddl_cert -- --demo-mutation lock-inversion
//! ```

use ddl_analyze::cert;
use ddl_analyze::locks;
use ddl_analyze::ptr::{self, MutationKind, PtrMutation};
use ddl_analyze::{AnalysisReport, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut demo: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(v) => check = Some(PathBuf::from(v)),
                None => return usage("--check needs a path"),
            },
            "--demo-mutation" => match args.next() {
                Some(v) => demo = Some(v),
                None => return usage("--demo-mutation needs ptr-off-by-one | lock-inversion"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    // Accept being launched from the workspace root or a crate dir.
    if !root.join("crates").is_dir() && root.join("../../crates").is_dir() {
        root = root.join("../..");
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ddl-cert: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        // Route through the shared report checker first: the document
        // must be a well-formed versioned report before cert-specific
        // validation sees it.
        match ddl_core::check_report_text(&text) {
            Ok(ddl_core::CheckedReport::Unknown { schema }) if schema == cert::CERT_SCHEMA => {}
            Ok(other) => {
                eprintln!(
                    "ddl-cert: {} holds a {} document, not {}",
                    path.display(),
                    other.schema(),
                    cert::CERT_SCHEMA
                );
                return ExitCode::from(1);
            }
            Err(e) => {
                eprintln!("ddl-cert: {}: {e}", path.display());
                return ExitCode::from(1);
            }
        }
        return match cert::check_cert_text(&text) {
            Ok(s) => {
                eprintln!(
                    "ddl-cert: {} valid — {} sites / {} kernels certified, \
                     {} lock classes / {} edges acyclic, {} bounds, \
                     {} mutations caught",
                    path.display(),
                    s.sites,
                    s.kernels,
                    s.classes,
                    s.edges,
                    s.bounds,
                    s.mutations
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ddl-cert: {} INVALID: {e}", path.display());
                ExitCode::from(1)
            }
        };
    }

    if let Some(which) = demo {
        return run_demo(&root, &which);
    }

    let mut report = AnalysisReport::new();
    let doc = cert::build_certificate(&root, &mut report);
    for f in &report.findings {
        eprintln!(
            "{}: {} [{}] {}",
            f.severity.label(),
            f.subject,
            f.rule,
            f.message
        );
    }
    let Some(doc) = doc else {
        eprintln!(
            "ddl-cert: NOT certified — {} errors across {} checks",
            report.count(Severity::Error),
            report.checks
        );
        return ExitCode::from(1);
    };
    if let Some(path) = out {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("ddl-cert: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("ddl-cert: wrote {}", path.display());
    }
    eprintln!(
        "ddl-cert: certified — {} checks over {} subjects, 0 errors",
        report.checks, report.subjects
    );
    ExitCode::SUCCESS
}

/// Seeds one known violation and reports whether the verifier caught
/// it. Exits 0 *only if caught* — so CI asserts the gate can fail by
/// expecting this command to succeed, and the certify run to fail,
/// under the same seeded defect.
fn run_demo(root: &std::path::Path, which: &str) -> ExitCode {
    match which {
        "ptr-off-by-one" => {
            let source = match std::fs::read_to_string(root.join(ptr::PTR_TARGET)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ddl-cert: cannot read {}: {e}", ptr::PTR_TARGET);
                    return ExitCode::from(2);
                }
            };
            let mutation = PtrMutation {
                site: 0,
                kind: MutationKind::OffsetByOne,
            };
            if ptr::demo_mutation_caught(&source, mutation) {
                eprintln!("ddl-cert: seeded off-by-one pointer offset was caught");
                ExitCode::SUCCESS
            } else {
                eprintln!("ddl-cert: seeded off-by-one pointer offset was NOT caught");
                ExitCode::from(1)
            }
        }
        "lock-inversion" => {
            let fixture = root.join("crates/analyze/fixtures/locks/inversion.rs");
            let source = match std::fs::read_to_string(&fixture) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ddl-cert: cannot read {}: {e}", fixture.display());
                    return ExitCode::from(2);
                }
            };
            let mut report = AnalysisReport::new();
            let files = vec![(
                "crates/analyze/fixtures/locks/inversion.rs".to_string(),
                source,
            )];
            let cert = locks::analyze_lock_sources(&files, &mut report);
            let cycle_found = cert.is_none()
                && report
                    .findings
                    .iter()
                    .any(|f| f.severity == Severity::Error && f.message.contains("cycle"));
            if cycle_found {
                eprintln!("ddl-cert: seeded lock-order inversion was caught as a cycle");
                ExitCode::SUCCESS
            } else {
                eprintln!("ddl-cert: seeded lock-order inversion was NOT caught");
                ExitCode::from(1)
            }
        }
        other => usage(&format!(
            "unknown demo mutation {other} (want ptr-off-by-one | lock-inversion)"
        )),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ddl-cert: {msg}");
    eprintln!(
        "usage: ddl_cert [--root DIR] [--out FILE] [--check FILE] \
         [--demo-mutation ptr-off-by-one|lock-inversion]"
    );
    ExitCode::from(2)
}
