//! A tiny shared Rust tokenizer for the certificate passes.
//!
//! [`crate::ptr`] and [`crate::locks`] both need to look at real source
//! structure (statements, receiver chains, brace nesting), which the
//! line-oriented lint scanner cannot provide. This module lexes
//! *scrubbed* source (string/char literals blanked, comments removed —
//! see `lint::scrub`) into a flat token stream with line numbers. It is
//! deliberately not a full lexer: scrubbing has already removed every
//! context-sensitive construct, so what remains is identifiers, number
//! literals, empty string markers, lifetimes and punctuation.

use std::fmt;

/// Token category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (value in [`Token::int`], suffix stripped).
    Int,
    /// Float literal (value irrelevant to the passes).
    Float,
    /// A (scrubbed, empty) string literal.
    Str,
    /// A lifetime marker.
    Lifetime,
    /// Punctuation; multi-character operators are one token.
    Punct,
}

/// One token of scrubbed source.
#[derive(Clone, Debug)]
pub(crate) struct Token {
    /// Category.
    pub kind: Kind,
    /// Literal text (for `Int`, without any type suffix).
    pub text: String,
    /// Integer value for `Int` tokens.
    pub int: u64,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == Kind::Punct && self.text == p
    }

    /// Whether this token is the identifier/keyword `w`.
    pub fn is_ident(&self, w: &str) -> bool {
        self.kind == Kind::Ident && self.text == w
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "::", "..", "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "&&", "||", "->", "=>",
];

/// Lexes scrubbed source lines (from `lint::scrub`) into tokens.
pub(crate) fn tokenize(scrubbed: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in scrubbed.iter().enumerate() {
        let lineno = idx + 1;
        let b = line.as_bytes();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: Kind::Ident,
                    text: line[start..i].to_string(),
                    int: 0,
                    line: lineno,
                });
                continue;
            }
            if c.is_ascii_digit() {
                i = lex_number(line, i, lineno, &mut out);
                continue;
            }
            if c == b'"' {
                // Scrubbed strings are empty: `""`.
                i += 1;
                if i < b.len() && b[i] == b'"' {
                    i += 1;
                }
                out.push(Token {
                    kind: Kind::Str,
                    text: String::new(),
                    int: 0,
                    line: lineno,
                });
                continue;
            }
            if c == b'\'' {
                // Only lifetimes survive scrubbing.
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: Kind::Lifetime,
                    text: line[start..i].to_string(),
                    int: 0,
                    line: lineno,
                });
                continue;
            }
            let rest = &line[i..];
            let mut matched = None;
            for op in MULTI_PUNCT {
                if rest.starts_with(op) {
                    matched = Some(*op);
                    break;
                }
            }
            match matched {
                Some(op) => {
                    out.push(Token {
                        kind: Kind::Punct,
                        text: op.to_string(),
                        int: 0,
                        line: lineno,
                    });
                    i += op.len();
                }
                None => {
                    out.push(Token {
                        kind: Kind::Punct,
                        text: (c as char).to_string(),
                        int: 0,
                        line: lineno,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Lexes one number starting at byte `start`; returns the index past it.
/// Handles decimal, hex (`0x6`), suffixes (`4usize`) and floats
/// (`1.0`), and refuses to swallow the `..` of a range (`0..half`).
fn lex_number(line: &str, start: usize, lineno: usize, out: &mut Vec<Token>) -> usize {
    let b = line.as_bytes();
    let mut i = start;
    let mut is_float = false;
    let mut value: u64 = 0;
    let mut digits_end;
    if b[i] == b'0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
            if b[i] != b'_' {
                value = value.wrapping_mul(16) + u64::from(hex_digit(b[i]));
            }
            i += 1;
        }
        digits_end = i;
    } else {
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            if b[i] != b'_' {
                value = value.wrapping_mul(10) + u64::from(b[i] - b'0');
            }
            i += 1;
        }
        digits_end = i;
        // A `.` begins a float only when not part of `..` or a method
        // call on a literal.
        if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
            is_float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
            // Exponent.
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            digits_end = i;
        }
    }
    // Type suffix (`usize`, `u64`, `f64`, ...).
    let mut j = digits_end;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    let suffix = &line[digits_end..j];
    if suffix.starts_with('f') {
        is_float = true;
    }
    out.push(Token {
        kind: if is_float { Kind::Float } else { Kind::Int },
        text: line[start..digits_end].to_string(),
        int: value,
        line: lineno,
    });
    j
}

fn hex_digit(b: u8) -> u8 {
    match b {
        b'0'..=b'9' => b - b'0',
        b'a'..=b'f' => b - b'a' + 10,
        b'A'..=b'F' => b - b'A' + 10,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<Token> {
        tokenize(&crate::lint::scrub(src))
    }

    #[test]
    fn numbers_ranges_and_suffixes() {
        let toks = lex("let mut half = 4usize; for j in 0..half { x(0x6, 1.0, 2); }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"4"));
        assert!(texts.contains(&".."));
        let hex = toks.iter().find(|t| t.text == "0x6").map(|t| t.int);
        assert_eq!(hex, Some(6));
        let float = toks.iter().find(|t| t.kind == Kind::Float).map(|t| &t.text);
        assert_eq!(float.map(String::as_str), Some("1.0"));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = lex("a += b; c::d(e >= f, g != h, i.len()..j);");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&">="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&".."));
    }

    #[test]
    fn strings_and_comments_are_inert() {
        let toks = lex("f(\"p.add(99999)\") // p.add(7)\n");
        assert!(toks.iter().all(|t| t.text != "99999" && t.text != "add"));
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 1);
    }

    #[test]
    fn line_numbers_are_one_based() {
        let toks = lex("a\nb\nc\n");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
