//! Pass 1 of `ddl-cert`: the unsafe-pointer verifier for
//! `crates/backend-simd/src/arch.rs`.
//!
//! The audited SIMD module is small and deliberately first-order: every
//! raw pointer is derived from a caller slice, advanced by affine index
//! expressions (`base + c0 + c1·loopvar`), and consumed by one of four
//! unaligned vector memory intrinsics. This pass parses the module into
//! a miniature statement/expression IR and then *concretely executes*
//! both ISA paths for every supported leaf size, recording each memory
//! access. Because all loop bounds are functions of `n` alone and the
//! set of supported `n` is finite (`ddl_backend_simd::supported_size`),
//! exhaustive concrete execution over that set *is* the symbolic proof:
//! an access is certified in-bounds and aligned iff it is in-bounds and
//! aligned on every execution.
//!
//! What the pass proves, per intrinsic call site:
//! * every executed access satisfies `0 <= index` and
//!   `index + lanes <= region_len` (in `f64` units);
//! * stores only target writable (`&mut`) regions;
//! * every offset is a whole number of `f64`s, so the address inherits
//!   the slice's 8-byte alignment — the precondition of the unaligned
//!   intrinsics used; aligned-variant intrinsics are rejected outright;
//! * buffer coverage equals the stride-1 [`crate::access::AccessSet`]
//!   family the plan-level analyzer assumes for leaf nodes.
//!
//! What it trusts: `rustc`'s type checking (a `&[Complex64]` really is
//! `2·len` doubles — `#[repr(C)]` is asserted in `ddl-num`), and that
//! the parsed text is the text that gets compiled (enforced by hashing
//! drift: unparseable statements anywhere in the file are fatal when
//! they contain pointer-sensitive tokens).
//!
//! The mutation sweep re-runs the verifier with a seeded fault — an
//! off-by-one pointer offset, a widened vector, or a swapped base
//! region — at each site and demands the pipeline notices: either a
//! hard bounds/writability violation or a changed access fingerprint.

use crate::access::{AccessSet, Region};
use crate::findings::{AnalysisReport, Severity};
use crate::lint;
use crate::tok::{self, Kind, Token};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Workspace-relative path of the module this pass certifies.
pub const PTR_TARGET: &str = "crates/backend-simd/src/arch.rs";

/// Rule id for pointer-certificate findings.
pub const RULE_PTR: &str = "cert/ptr";

/// The leaf sizes the kernels are certified for: exactly the sizes the
/// SIMD backend dispatches to (`ddl_backend_simd::supported_size`).
pub fn leaf_sizes() -> Vec<usize> {
    (1..=ddl_backend_simd::MAX_SIMD_LEAF)
        .filter(|&n| ddl_backend_simd::supported_size(n))
        .collect()
}

/// The `(factor_len, buf_len)` shapes the twiddle kernels are certified
/// for. `buf_len >= factor_len` is the wrapper's asserted contract; the
/// sweep includes equal, `+1` (odd tail) and slack shapes.
pub fn twiddle_shapes() -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for m in [0usize, 1, 2, 3, 4, 5, 7, 8, 16, 33, 64] {
        for extra in [0usize, 1, 3] {
            out.push((m, m + extra));
        }
    }
    out
}

/// A seeded fault for the mutation self-test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Add one `f64` to the pointer offset at the site.
    OffsetByOne,
    /// Double the number of lanes the site touches.
    WidenVector,
    /// Redirect the access to the next region (e.g. `buf` ↔ `tw`).
    SwapBase,
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MutationKind::OffsetByOne => "offset-by-one",
            MutationKind::WidenVector => "widen-vector",
            MutationKind::SwapBase => "swap-base",
        };
        write!(f, "{s}")
    }
}

/// One seeded fault: `kind` applied at intrinsic call site `site`.
#[derive(Clone, Copy, Debug)]
pub struct PtrMutation {
    /// Lexical index of the intrinsic call site (see [`SiteCert::id`]).
    pub site: usize,
    /// Fault applied at that site.
    pub kind: MutationKind,
}

/// The per-site certificate: what was proven about one intrinsic call.
#[derive(Clone, Debug)]
pub struct SiteCert {
    /// Lexical index of the site within the file (stable across runs).
    pub id: usize,
    /// Kernel function containing the site.
    pub kernel: String,
    /// ISA module containing the kernel (`x86` or `neon`).
    pub module: String,
    /// 1-based source line of the intrinsic call.
    pub line: usize,
    /// Intrinsic name (`_mm256_loadu_pd`, `vst1q_f64`, ...).
    pub intrinsic: String,
    /// Whether the site stores (else it loads).
    pub is_store: bool,
    /// Name of the region (parameter or local array) accessed.
    pub region: String,
    /// Lanes (`f64`s) touched per execution.
    pub lanes: usize,
    /// Smallest `f64` index observed across all certified shapes.
    pub min_index: i64,
    /// Largest `index + lanes` observed across all certified shapes.
    pub max_end: i64,
    /// Region length (`f64`s) at the shape where `max_end` occurred.
    pub region_len_at_max: i64,
    /// Proven alignment of every executed access, in bytes.
    pub align_bytes: u32,
    /// Total executions across all certified shapes.
    pub executions: u64,
}

/// The whole-file pointer certificate.
#[derive(Clone, Debug)]
pub struct PtrCertificate {
    /// Workspace-relative path of the certified file.
    pub file: String,
    /// Leaf sizes the DFT kernels were executed for.
    pub sizes: Vec<usize>,
    /// Kernel functions that contained intrinsic sites.
    pub kernels: Vec<String>,
    /// Per-site certificates, in lexical order.
    pub sites: Vec<SiteCert>,
    /// FNV-1a fingerprint over the full sorted access trace.
    pub fingerprint: u64,
}

/// Outcome of the seeded-mutation sweep.
#[derive(Clone, Debug, Default)]
pub struct MutationSummary {
    /// Mutations applied (`sites × 3`).
    pub applied: usize,
    /// Mutations noticed (violation or fingerprint change).
    pub caught: usize,
    /// Mutations that produced a hard bounds/writability violation.
    pub hard_violations: usize,
}

// ---------------------------------------------------------------------
// Miniature IR
// ---------------------------------------------------------------------

/// Memory intrinsics the verifier certifies: `(name, lanes, is_store)`.
const MEM_INTRINSICS: &[(&str, usize, bool)] = &[
    ("_mm256_loadu_pd", 4, false),
    ("_mm256_storeu_pd", 4, true),
    ("vld1q_f64", 2, false),
    ("vst1q_f64", 2, true),
];

/// Aligned or streaming variants are rejected: the certificate only
/// proves 8-byte (`f64`) alignment, which the unaligned intrinsics
/// require; 32-byte-aligned variants would need a stronger proof.
const BANNED_INTRINSICS: &[&str] = &[
    "_mm256_load_pd",
    "_mm256_store_pd",
    "_mm_load_pd",
    "_mm_store_pd",
    "_mm256_stream_pd",
];

fn mem_intrinsic(name: &str) -> Option<(usize, bool)> {
    MEM_INTRINSICS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, lanes, store)| (lanes, store))
}

/// Identifier tokens that mark a statement as pointer-sensitive: a
/// statement the parser cannot model may be skipped only if it contains
/// none of these (drift guard for future edits to `arch.rs`).
fn sensitive_ident(name: &str) -> bool {
    matches!(
        name,
        "as_ptr" | "as_mut_ptr" | "add" | "offset" | "transmute" | "from_raw_parts"
    ) || name.contains("loadu")
        || name.contains("storeu")
        || name.starts_with("vld")
        || name.starts_with("vst")
        || name.starts_with("_mm")
}

#[derive(Clone, Debug)]
enum Expr {
    Int(i64),
    Float,
    Str,
    Bool(bool),
    Path(Vec<String>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Un(UnOp, Box<Expr>),
    Call {
        path: Vec<String>,
        args: Vec<Expr>,
        site: Option<usize>,
        line: usize,
    },
    Method {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
        line: usize,
    },
    Index {
        recv: Box<Expr>,
        idx: Box<Expr>,
        line: usize,
    },
    Field(Box<Expr>),
    Array(Vec<Expr>),
    Tuple(Vec<Expr>),
    Cast {
        inner: Box<Expr>,
        to_f64_ptr: bool,
    },
    MacroCall,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Range,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UnOp {
    Neg,
    Not,
    Ref,
    Deref,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AssignOp {
    Set,
    AddAssign,
    SubAssign,
    MulAssign,
}

#[derive(Clone, Debug)]
enum Stmt {
    Let {
        name: String,
        init: Expr,
    },
    Assign {
        target: Expr,
        op: AssignOp,
        value: Expr,
        line: usize,
    },
    If {
        cond: Expr,
        then: Vec<Stmt>,
        alt: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    ForRange {
        var: String,
        start: Expr,
        end: Expr,
        body: Vec<Stmt>,
    },
    Return,
    Expr(Expr),
    Block(Vec<Stmt>),
    /// A statement the parser could not model; `sensitive` means it
    /// contained pointer-related tokens and must fail verification.
    Opaque {
        line: usize,
        sensitive: bool,
        text: String,
    },
}

#[derive(Clone, Debug)]
struct ParamDef {
    name: String,
    /// `Some(f64s_per_element)` when the parameter is a slice.
    elem_f64s: Option<i64>,
    writable: bool,
}

#[derive(Clone, Debug)]
struct FnDef {
    name: String,
    module: String,
    params: Vec<ParamDef>,
    body: Vec<Stmt>,
    /// Site ids assigned while parsing this function's body.
    sites: Vec<usize>,
}

#[derive(Clone, Debug)]
struct SiteDecl {
    id: usize,
    intrinsic: String,
    lanes: usize,
    is_store: bool,
    line: usize,
    kernel: String,
    module: String,
}

#[derive(Clone, Debug, Default)]
struct ParsedFile {
    fns: Vec<FnDef>,
    sites: Vec<SiteDecl>,
    /// `(name, line)` of banned aligned/streaming intrinsic calls.
    banned: Vec<(String, usize)>,
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    sites: Vec<SiteDecl>,
    banned: Vec<(String, usize)>,
    module: String,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, k: usize) -> Option<&Token> {
        self.toks.get(self.pos + k)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, w: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(w))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, w: &str) -> bool {
        if self.at_ident(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), String> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(format!(
                "expected `{p}` at line {}",
                self.peek().map_or(0, |t| t.line)
            ))
        }
    }

    fn line(&self) -> usize {
        self.peek().map_or(0, |t| t.line)
    }

    /// Skips one attribute (`#[...]` or `#![...]`).
    fn skip_attr(&mut self) {
        // Caller saw `#`.
        self.pos += 1;
        self.eat_punct("!");
        if self.at_punct("[") {
            self.skip_balanced("[", "]");
        }
    }

    /// Consumes a balanced token group starting at the current `open`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Parses the whole file into functions grouped by module.
    fn parse_file(&mut self) -> Result<Vec<FnDef>, String> {
        let mut fns = Vec::new();
        self.parse_items(&mut fns, false)?;
        Ok(fns)
    }

    fn parse_items(&mut self, fns: &mut Vec<FnDef>, in_mod: bool) -> Result<(), String> {
        while let Some(t) = self.peek() {
            if t.is_punct("}") {
                if in_mod {
                    self.pos += 1;
                    return Ok(());
                }
                return Err(format!("stray `}}` at line {}", t.line));
            }
            if t.is_punct("#") {
                self.skip_attr();
                continue;
            }
            if t.is_ident("use") {
                while let Some(t) = self.bump() {
                    if t.is_punct(";") {
                        break;
                    }
                }
                continue;
            }
            if t.is_ident("mod") {
                self.pos += 1;
                let name = match self.bump() {
                    Some(t) if t.kind == Kind::Ident => t.text,
                    other => {
                        return Err(format!(
                            "bad module name at line {}",
                            other.map_or(0, |t| t.line)
                        ))
                    }
                };
                self.expect_punct("{")?;
                let saved = std::mem::replace(&mut self.module, name);
                self.parse_items(fns, true)?;
                self.module = saved;
                continue;
            }
            if t.is_ident("pub") {
                self.pos += 1;
                if self.at_punct("(") {
                    self.skip_balanced("(", ")");
                }
                continue;
            }
            if t.is_ident("unsafe") {
                self.pos += 1;
                continue;
            }
            if t.is_ident("fn") {
                let f = self.parse_fn()?;
                fns.push(f);
                continue;
            }
            // Unknown item head (const/static/impl would land here):
            // refuse rather than guess — arch.rs has none, and silently
            // skipping could hide pointer state.
            return Err(format!("unsupported item `{}` at line {}", t.text, t.line));
        }
        if in_mod {
            return Err("unterminated module".to_string());
        }
        Ok(())
    }

    fn parse_fn(&mut self) -> Result<FnDef, String> {
        self.pos += 1; // fn
        let name = match self.bump() {
            Some(t) if t.kind == Kind::Ident => t.text,
            other => {
                return Err(format!(
                    "bad fn name at line {}",
                    other.map_or(0, |t| t.line)
                ))
            }
        };
        self.expect_punct("(")?;
        let params = self.parse_params()?;
        // Return type: skip until the body brace.
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                break;
            }
            self.pos += 1;
        }
        let sites_before = self.sites.len();
        let body = self.parse_block()?;
        let site_ids: Vec<usize> = (sites_before..self.sites.len()).collect();
        for id in &site_ids {
            self.sites[*id].kernel = name.clone();
            self.sites[*id].module = self.module.clone();
        }
        Ok(FnDef {
            name,
            module: self.module.clone(),
            params,
            body,
            sites: site_ids,
        })
    }

    fn parse_params(&mut self) -> Result<Vec<ParamDef>, String> {
        let mut params = Vec::new();
        loop {
            if self.eat_punct(")") {
                return Ok(params);
            }
            self.eat_ident("mut");
            let name = match self.bump() {
                Some(t) if t.kind == Kind::Ident => t.text,
                other => {
                    return Err(format!(
                        "bad parameter at line {}",
                        other.map_or(0, |t| t.line)
                    ))
                }
            };
            self.expect_punct(":")?;
            // Collect the type tokens up to `,` or `)` at depth 0.
            let mut depth = 0usize;
            let mut writable = false;
            let mut saw_slice = false;
            let mut elem: Option<i64> = None;
            let mut saw_raw_ptr = false;
            while let Some(t) = self.peek() {
                if depth == 0 && (t.is_punct(",") || t.is_punct(")")) {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                    if t.is_punct("[") {
                        saw_slice = true;
                    }
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_ident("mut") {
                    writable = true;
                } else if t.is_ident("Complex64") {
                    elem = Some(2);
                } else if t.is_ident("f64") {
                    elem = elem.or(Some(1));
                } else if t.is_punct("*") {
                    saw_raw_ptr = true;
                }
                self.pos += 1;
            }
            if saw_raw_ptr {
                return Err(format!("raw-pointer parameter `{name}` is not certifiable"));
            }
            params.push(ParamDef {
                name,
                elem_f64s: if saw_slice { elem } else { None },
                writable,
            });
            self.eat_punct(",");
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, String> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        loop {
            if self.eat_punct("}") {
                return Ok(out);
            }
            if self.peek().is_none() {
                return Err("unterminated block".to_string());
            }
            let stmt = self.parse_stmt()?;
            out.push(stmt);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, String> {
        while self.at_punct("#") {
            self.skip_attr();
        }
        let start = self.pos;
        match self.try_parse_stmt() {
            Ok(s) => Ok(s),
            Err(_) => {
                self.pos = start;
                Ok(self.recover_stmt())
            }
        }
    }

    fn try_parse_stmt(&mut self) -> Result<Stmt, String> {
        if self.eat_punct(";") {
            return Ok(Stmt::Block(Vec::new()));
        }
        if self.at_ident("let") {
            return self.parse_let();
        }
        if self.at_ident("if") {
            return self.parse_if();
        }
        if self.at_ident("while") {
            self.pos += 1;
            if self.at_ident("let") {
                return Err("while-let is not modeled".to_string());
            }
            let cond = self.parse_expr()?;
            let body = self.parse_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_ident("for") {
            self.pos += 1;
            let var = match self.bump() {
                Some(t) if t.kind == Kind::Ident => t.text,
                _ => return Err("bad for-loop pattern".to_string()),
            };
            if !self.eat_ident("in") {
                return Err("bad for loop".to_string());
            }
            let range = self.parse_expr()?;
            let (start, end) = match range {
                Expr::Bin(BinOp::Range, a, b) => (*a, *b),
                _ => return Err("for loop over a non-range".to_string()),
            };
            let body = self.parse_block()?;
            return Ok(Stmt::ForRange {
                var,
                start,
                end,
                body,
            });
        }
        if self.at_ident("return") {
            self.pos += 1;
            if !self.at_punct(";") && !self.at_punct("}") {
                let _ = self.parse_expr()?;
            }
            self.eat_punct(";");
            return Ok(Stmt::Return);
        }
        if self.at_ident("unsafe") && self.peek_at(1).is_some_and(|t| t.is_punct("{")) {
            self.pos += 1;
            return Ok(Stmt::Block(self.parse_block()?));
        }
        if self.at_punct("{") {
            return Ok(Stmt::Block(self.parse_block()?));
        }
        // Expression statement or assignment.
        let line = self.line();
        let target = self.parse_expr()?;
        let op = if self.eat_punct("=") {
            Some(AssignOp::Set)
        } else if self.eat_punct("+=") {
            Some(AssignOp::AddAssign)
        } else if self.eat_punct("-=") {
            Some(AssignOp::SubAssign)
        } else if self.eat_punct("*=") {
            Some(AssignOp::MulAssign)
        } else {
            None
        };
        if let Some(op) = op {
            let value = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assign {
                target,
                op,
                value,
                line,
            });
        }
        if self.eat_punct(";") || self.at_punct("}") {
            return Ok(Stmt::Expr(target));
        }
        Err(format!("unterminated expression statement at line {line}"))
    }

    fn parse_let(&mut self) -> Result<Stmt, String> {
        self.pos += 1; // let
        self.eat_ident("mut");
        let name = match self.bump() {
            Some(t) if t.kind == Kind::Ident || t.is_punct("_") => t.text,
            other => {
                return Err(format!(
                    "unsupported let pattern at line {}",
                    other.map_or(0, |t| t.line)
                ))
            }
        };
        if self.eat_punct(":") {
            // Type annotation: skip to `=` at bracket depth 0 (the
            // annotation may contain `;` inside `[f64; 2]`).
            let mut depth = 0usize;
            while let Some(t) = self.peek() {
                if depth == 0 && t.is_punct("=") {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct(";") {
                    return Err("let without initializer".to_string());
                }
                self.pos += 1;
            }
        }
        self.expect_punct("=")?;
        let init = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Let { name, init })
    }

    fn parse_if(&mut self) -> Result<Stmt, String> {
        self.pos += 1; // if
        if self.at_ident("let") {
            return Err("if-let is not modeled".to_string());
        }
        let cond = self.parse_expr()?;
        let then = self.parse_block()?;
        let mut alt = Vec::new();
        if self.eat_ident("else") {
            if self.at_ident("if") {
                alt.push(self.parse_if()?);
            } else {
                alt = self.parse_block()?;
            }
        }
        Ok(Stmt::If { cond, then, alt })
    }

    /// Skips one unparseable statement, collecting its tokens so the
    /// caller can refuse the file if the statement looked
    /// pointer-sensitive.
    fn recover_stmt(&mut self) -> Stmt {
        let line = self.line();
        let mut text = String::new();
        let mut sensitive = false;
        let mut paren = 0usize;
        let mut brace = 0usize;
        while let Some(t) = self.peek().cloned() {
            if paren == 0 && brace == 0 {
                if t.is_punct("}") {
                    break;
                }
                if t.is_punct(";") {
                    self.pos += 1;
                    break;
                }
            }
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren = paren.saturating_sub(1);
            } else if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace = brace.saturating_sub(1);
                if brace == 0 && paren == 0 {
                    self.pos += 1;
                    // `} else {` continues the same statement.
                    if self.at_ident("else") {
                        continue;
                    }
                    break;
                }
            }
            if t.kind == Kind::Ident && sensitive_ident(&t.text) {
                sensitive = true;
            }
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&t.text);
            self.pos += 1;
        }
        Stmt::Opaque {
            line,
            sensitive,
            text,
        }
    }

    // -- expressions --------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, String> {
        self.parse_range()
    }

    fn parse_range(&mut self) -> Result<Expr, String> {
        let lhs = self.parse_or()?;
        if self.eat_punct("..") {
            let rhs = self.parse_or()?;
            return Ok(Expr::Bin(BinOp::Range, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_or(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_and()?;
        while self.eat_punct("||") {
            let rhs = self.parse_and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_punct("&&") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, String> {
        let lhs = self.parse_add()?;
        for (p, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_punct(p) {
                let rhs = self.parse_add()?;
                return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("&") {
            self.eat_ident("mut");
            return Ok(Expr::Un(UnOp::Ref, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Un(UnOp::Deref, Box::new(self.parse_unary()?)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, String> {
        let mut e = self.parse_primary()?;
        loop {
            if self.at_punct(".") && !self.peek_at(1).is_some_and(|t| t.is_punct(".")) {
                let line = self.line();
                self.pos += 1;
                let name = match self.bump() {
                    Some(t) if t.kind == Kind::Ident || t.kind == Kind::Int => t.text,
                    other => {
                        return Err(format!(
                            "bad member access at line {}",
                            other.map_or(0, |t| t.line)
                        ))
                    }
                };
                if self.at_punct("(") {
                    self.pos += 1;
                    let args = self.parse_args()?;
                    e = Expr::Method {
                        recv: Box::new(e),
                        name,
                        args,
                        line,
                    };
                } else {
                    let _ = name;
                    e = Expr::Field(Box::new(e));
                }
                continue;
            }
            if self.at_punct("(") {
                if let Expr::Path(path) = e {
                    let line = self.line();
                    self.pos += 1;
                    let args = self.parse_args()?;
                    let site = self.declare_site(&path, line);
                    e = Expr::Call {
                        path,
                        args,
                        site,
                        line,
                    };
                    continue;
                }
                return Err(format!("call on a non-path at line {}", self.line()));
            }
            if self.at_punct("[") {
                let line = self.line();
                self.pos += 1;
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    recv: Box::new(e),
                    idx: Box::new(idx),
                    line,
                };
                continue;
            }
            if self.at_ident("as") {
                self.pos += 1;
                let mut is_ptr = false;
                let mut last_ident = String::new();
                if self.eat_punct("*") {
                    is_ptr = true;
                    if !self.eat_ident("mut") {
                        self.eat_ident("const");
                    }
                }
                while let Some(t) = self.peek() {
                    if t.kind == Kind::Ident && !t.is_ident("as") {
                        last_ident = t.text.clone();
                        self.pos += 1;
                        if self.eat_punct("::") {
                            continue;
                        }
                    }
                    break;
                }
                if last_ident.is_empty() {
                    return Err(format!("bad cast at line {}", self.line()));
                }
                e = Expr::Cast {
                    inner: Box::new(e),
                    to_f64_ptr: is_ptr && last_ident == "f64",
                };
                continue;
            }
            return Ok(e);
        }
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>, String> {
        let mut args = Vec::new();
        loop {
            if self.eat_punct(")") {
                return Ok(args);
            }
            args.push(self.parse_expr()?);
            if !self.eat_punct(",") && !self.at_punct(")") {
                return Err(format!("bad argument list at line {}", self.line()));
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, String> {
        let t = match self.peek().cloned() {
            Some(t) => t,
            None => return Err("unexpected end of input".to_string()),
        };
        match t.kind {
            Kind::Int => {
                self.pos += 1;
                Ok(Expr::Int(i64::try_from(t.int).unwrap_or(i64::MAX)))
            }
            Kind::Float => {
                self.pos += 1;
                Ok(Expr::Float)
            }
            Kind::Str => {
                self.pos += 1;
                Ok(Expr::Str)
            }
            Kind::Ident if t.text == "true" || t.text == "false" => {
                self.pos += 1;
                Ok(Expr::Bool(t.text == "true"))
            }
            Kind::Ident => {
                let mut path = vec![t.text.clone()];
                self.pos += 1;
                while self.at_punct("::") {
                    self.pos += 1;
                    match self.bump() {
                        Some(seg) if seg.kind == Kind::Ident => path.push(seg.text),
                        other => {
                            return Err(format!(
                                "bad path segment at line {}",
                                other.map_or(0, |t| t.line)
                            ))
                        }
                    }
                }
                if self.at_punct("!") {
                    // Macro invocation: skip the delimited body, but
                    // refuse if it hides pointer-sensitive tokens.
                    self.pos += 1;
                    let start = self.pos;
                    if self.at_punct("(") {
                        self.skip_balanced("(", ")");
                    } else if self.at_punct("[") {
                        self.skip_balanced("[", "]");
                    } else if self.at_punct("{") {
                        self.skip_balanced("{", "}");
                    } else {
                        return Err(format!("bad macro call at line {}", t.line));
                    }
                    for tok in &self.toks[start..self.pos] {
                        if tok.kind == Kind::Ident && sensitive_ident(&tok.text) {
                            return Err(format!(
                                "macro at line {} hides pointer-sensitive token `{}`",
                                t.line, tok.text
                            ));
                        }
                    }
                    return Ok(Expr::MacroCall);
                }
                Ok(Expr::Path(path))
            }
            Kind::Punct if t.text == "(" => {
                self.pos += 1;
                if self.eat_punct(")") {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let first = self.parse_expr()?;
                if self.eat_punct(")") {
                    return Ok(first);
                }
                let mut items = vec![first];
                while self.eat_punct(",") {
                    if self.at_punct(")") {
                        break;
                    }
                    items.push(self.parse_expr()?);
                }
                self.expect_punct(")")?;
                Ok(Expr::Tuple(items))
            }
            Kind::Punct if t.text == "[" => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    if self.eat_punct("]") {
                        return Ok(Expr::Array(items));
                    }
                    items.push(self.parse_expr()?);
                    if !self.eat_punct(",") && !self.at_punct("]") {
                        return Err(format!("bad array literal at line {}", self.line()));
                    }
                }
            }
            _ => Err(format!("unexpected token `{}` at line {}", t.text, t.line)),
        }
    }

    /// Registers an intrinsic call site for the path being called.
    fn declare_site(&mut self, path: &[String], line: usize) -> Option<usize> {
        let name = path.last().map(String::as_str).unwrap_or("");
        if BANNED_INTRINSICS.contains(&name) {
            self.banned.push((name.to_string(), line));
            return None;
        }
        let (lanes, is_store) = mem_intrinsic(name)?;
        let id = self.sites.len();
        self.sites.push(SiteDecl {
            id,
            intrinsic: name.to_string(),
            lanes,
            is_store,
            line,
            kernel: String::new(),
            module: String::new(),
        });
        Some(id)
    }
}

/// Parses scrubbed `arch.rs` source into the miniature IR.
fn parse_arch(source: &str) -> Result<ParsedFile, String> {
    let toks = tok::tokenize(&lint::scrub(source));
    let mut p = Parser {
        toks,
        pos: 0,
        sites: Vec::new(),
        banned: Vec::new(),
        module: String::new(),
    };
    let fns = p.parse_file()?;
    Ok(ParsedFile {
        fns,
        sites: p.sites,
        banned: p.banned,
    })
}

// ---------------------------------------------------------------------
// Concrete interpreter
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum Value {
    Int(i64),
    Bool(bool),
    /// A raw pointer into `region`, `off` in `f64` units from its base;
    /// `unit` is the stride of `.add(1)` in `f64`s (1 after a cast to a
    /// `f64` pointer, the element width before).
    Ptr {
        region: usize,
        off: i64,
        unit: i64,
    },
    Slice(usize),
    Unit,
}

#[derive(Clone, Debug)]
struct RegionInst {
    name: String,
    /// Region length in `f64` units.
    f64_len: i64,
    /// `f64`s per logical element (2 for `Complex64`).
    elem_f64s: i64,
    writable: bool,
}

/// One recorded memory access, in `f64` units for pointer accesses and
/// element units (flagged) for safe slice indexing.
#[derive(Clone, Debug)]
struct AccessRec {
    site: Option<usize>,
    region: usize,
    index: i64,
    lanes: i64,
    is_store: bool,
    line: usize,
}

enum Flow {
    Normal,
    Return,
}

struct Exec<'a> {
    regions: Vec<RegionInst>,
    scopes: Vec<Vec<(String, Value)>>,
    ptr_accesses: Vec<AccessRec>,
    slice_accesses: Vec<AccessRec>,
    mutation: Option<PtrMutation>,
    sites: &'a [SiteDecl],
    steps: u64,
}

const STEP_BUDGET: u64 = 20_000_000;

impl<'a> Exec<'a> {
    fn new(regions: Vec<RegionInst>, mutation: Option<PtrMutation>, sites: &'a [SiteDecl]) -> Self {
        Exec {
            regions,
            scopes: vec![Vec::new()],
            ptr_accesses: Vec::new(),
            slice_accesses: Vec::new(),
            mutation,
            sites,
            steps: 0,
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            for (n, v) in scope.iter().rev() {
                if n == name {
                    return Some(*v);
                }
            }
        }
        None
    }

    fn bind(&mut self, name: &str, v: Value) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.push((name.to_string(), v));
        }
    }

    fn set(&mut self, name: &str, v: Value) -> Result<(), String> {
        for scope in self.scopes.iter_mut().rev() {
            for (n, slot) in scope.iter_mut().rev() {
                if n == name {
                    *slot = v;
                    return Ok(());
                }
            }
        }
        Err(format!("assignment to unbound variable `{name}`"))
    }

    fn tick(&mut self) -> Result<(), String> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            return Err("interpreter step budget exceeded".to_string());
        }
        Ok(())
    }

    fn exec_block(&mut self, body: &[Stmt]) -> Result<Flow, String> {
        self.scopes.push(Vec::new());
        let mut flow = Flow::Normal;
        for s in body {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                Flow::Return => {
                    flow = Flow::Return;
                    break;
                }
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, String> {
        self.tick()?;
        match s {
            Stmt::Let { name, init } => {
                // Local array literals (`let sign: [f64; 2] = [...]`)
                // become fresh read-only regions so `as_ptr` on them is
                // certifiable.
                if let Expr::Array(items) = init {
                    for item in items {
                        let v = self.eval(item)?;
                        if matches!(v, Value::Ptr { .. }) {
                            return Err("pointer stored in array literal".to_string());
                        }
                    }
                    let region = self.regions.len();
                    self.regions.push(RegionInst {
                        name: name.clone(),
                        f64_len: items.len() as i64,
                        elem_f64s: 1,
                        writable: false,
                    });
                    self.bind(name, Value::Slice(region));
                    return Ok(Flow::Normal);
                }
                let v = self.eval(init)?;
                if name != "_" {
                    self.bind(name, v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                target,
                op,
                value,
                line,
            } => {
                match target {
                    Expr::Path(path) if path.len() == 1 => {
                        let name = &path[0];
                        let rhs = self.eval(value)?;
                        let new = match op {
                            AssignOp::Set => rhs,
                            _ => {
                                let old = self
                                    .lookup(name)
                                    .ok_or_else(|| format!("unbound variable `{name}`"))?;
                                match (old, rhs) {
                                    (Value::Int(a), Value::Int(b)) => Value::Int(
                                        match op {
                                            AssignOp::AddAssign => a.checked_add(b),
                                            AssignOp::SubAssign => a.checked_sub(b),
                                            AssignOp::MulAssign => a.checked_mul(b),
                                            AssignOp::Set => Some(b),
                                        }
                                        .ok_or("integer overflow")?,
                                    ),
                                    _ => {
                                        return Err(format!(
                                            "compound assignment on non-integer at line {line}"
                                        ))
                                    }
                                }
                            }
                        };
                        self.set(name, new)?;
                    }
                    Expr::Index { recv, idx, line } => {
                        let rv = self.eval(recv)?;
                        let iv = self.eval(idx)?;
                        let region = match rv {
                            Value::Slice(r) => r,
                            _ => return Err(format!("indexed store on non-slice at line {line}")),
                        };
                        let i = match iv {
                            Value::Int(i) => i,
                            _ => return Err(format!("non-integer index at line {line}")),
                        };
                        // Compound ops (`buf[i] *= ...`) read then write.
                        if *op != AssignOp::Set {
                            self.slice_accesses.push(AccessRec {
                                site: None,
                                region,
                                index: i,
                                lanes: 1,
                                is_store: false,
                                line: *line,
                            });
                        }
                        self.slice_accesses.push(AccessRec {
                            site: None,
                            region,
                            index: i,
                            lanes: 1,
                            is_store: true,
                            line: *line,
                        });
                        let rhs = self.eval(value)?;
                        if matches!(rhs, Value::Ptr { .. }) {
                            return Err("pointer stored through slice index".to_string());
                        }
                    }
                    _ => return Err(format!("unsupported assignment target at line {line}")),
                }
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then, alt } => {
                let c = self.eval(cond)?;
                match c {
                    Value::Bool(true) => self.exec_block(then),
                    Value::Bool(false) => self.exec_block(alt),
                    _ => Err("branch condition did not evaluate to a boolean".to_string()),
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.tick()?;
                    match self.eval(cond)? {
                        Value::Bool(true) => {}
                        Value::Bool(false) => break,
                        _ => return Err("loop condition did not evaluate to a boolean".to_string()),
                    }
                    if let Flow::Return = self.exec_block(body)? {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForRange {
                var,
                start,
                end,
                body,
            } => {
                let s = match self.eval(start)? {
                    Value::Int(v) => v,
                    _ => return Err("non-integer range start".to_string()),
                };
                let e = match self.eval(end)? {
                    Value::Int(v) => v,
                    _ => return Err("non-integer range end".to_string()),
                };
                let mut i = s;
                while i < e {
                    self.tick()?;
                    self.scopes.push(vec![(var.clone(), Value::Int(i))]);
                    let flow = self.exec_block(body)?;
                    self.scopes.pop();
                    if let Flow::Return = flow {
                        return Ok(Flow::Return);
                    }
                    i += 1;
                }
                Ok(Flow::Normal)
            }
            Stmt::Return => Ok(Flow::Return),
            Stmt::Expr(e) => {
                let _ = self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(body) => self.exec_block(body),
            Stmt::Opaque {
                line,
                sensitive,
                text,
            } => {
                if *sensitive {
                    Err(format!(
                        "unmodeled pointer-sensitive statement at line {line}: `{text}`"
                    ))
                } else {
                    Ok(Flow::Normal)
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, String> {
        self.tick()?;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float | Expr::Str | Expr::MacroCall => Ok(Value::Unit),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Array(items) | Expr::Tuple(items) => {
                for item in items {
                    let _ = self.eval(item)?;
                }
                Ok(Value::Unit)
            }
            Expr::Path(path) => {
                if path.len() == 1 {
                    self.lookup(&path[0])
                        .ok_or_else(|| format!("unbound variable `{}`", path[0]))
                } else {
                    Ok(Value::Unit)
                }
            }
            Expr::Un(op, inner) => {
                let v = self.eval(inner)?;
                Ok(match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => {
                        Value::Int(i.checked_neg().ok_or("integer overflow")?)
                    }
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::Ref, v) => v,
                    (UnOp::Deref, Value::Ptr { .. }) => {
                        return Err("raw pointer dereference outside an intrinsic".to_string())
                    }
                    _ => Value::Unit,
                })
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.eval_bin(*op, va, vb)
            }
            Expr::Field(recv) => {
                let _ = self.eval(recv)?;
                Ok(Value::Unit)
            }
            Expr::Index { recv, idx, line } => {
                let rv = self.eval(recv)?;
                let iv = self.eval(idx)?;
                match (rv, iv) {
                    (Value::Slice(region), Value::Int(i)) => {
                        self.slice_accesses.push(AccessRec {
                            site: None,
                            region,
                            index: i,
                            lanes: 1,
                            is_store: false,
                            line: *line,
                        });
                        Ok(Value::Unit)
                    }
                    (Value::Slice(_), _) => Err(format!("non-integer index at line {line}")),
                    _ => Err(format!("index on a non-slice at line {line}")),
                }
            }
            Expr::Cast { inner, to_f64_ptr } => {
                let v = self.eval(inner)?;
                match (v, to_f64_ptr) {
                    (Value::Ptr { region, off, .. }, true) => Ok(Value::Ptr {
                        region,
                        off,
                        unit: 1,
                    }),
                    (Value::Ptr { .. }, false) => Err("pointer cast to a non-f64 type".to_string()),
                    (v, _) => Ok(v),
                }
            }
            Expr::Method {
                recv,
                name,
                args,
                line,
            } => self.eval_method(recv, name, args, *line),
            Expr::Call {
                path,
                args,
                site,
                line,
            } => self.eval_call(path, args, *site, *line),
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value, String> {
        if let (Value::Int(x), Value::Int(y)) = (a, b) {
            return Ok(match op {
                BinOp::Add => Value::Int(x.checked_add(y).ok_or("integer overflow")?),
                BinOp::Sub => Value::Int(x.checked_sub(y).ok_or("integer overflow")?),
                BinOp::Mul => Value::Int(x.checked_mul(y).ok_or("integer overflow")?),
                BinOp::Div => Value::Int(x.checked_div(y).ok_or("division by zero")?),
                BinOp::Rem => Value::Int(x.checked_rem(y).ok_or("division by zero")?),
                BinOp::Eq => Value::Bool(x == y),
                BinOp::Ne => Value::Bool(x != y),
                BinOp::Lt => Value::Bool(x < y),
                BinOp::Le => Value::Bool(x <= y),
                BinOp::Gt => Value::Bool(x > y),
                BinOp::Ge => Value::Bool(x >= y),
                BinOp::And | BinOp::Or | BinOp::Range => Value::Unit,
            });
        }
        if let (Value::Bool(x), Value::Bool(y)) = (a, b) {
            return Ok(match op {
                BinOp::And => Value::Bool(x && y),
                BinOp::Or => Value::Bool(x || y),
                BinOp::Eq => Value::Bool(x == y),
                BinOp::Ne => Value::Bool(x != y),
                _ => Value::Unit,
            });
        }
        if matches!(a, Value::Ptr { .. }) || matches!(b, Value::Ptr { .. }) {
            return Err("raw pointer used in arithmetic outside `.add`".to_string());
        }
        Ok(Value::Unit)
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<Value, String> {
        let rv = self.eval(recv)?;
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        match (rv, name) {
            (Value::Slice(r), "len") => {
                let reg = &self.regions[r];
                Ok(Value::Int(reg.f64_len / reg.elem_f64s))
            }
            (Value::Slice(r), "as_ptr") => Ok(Value::Ptr {
                region: r,
                off: 0,
                unit: self.regions[r].elem_f64s,
            }),
            (Value::Slice(r), "as_mut_ptr") => {
                if !self.regions[r].writable {
                    return Err(format!(
                        "as_mut_ptr on read-only region `{}` at line {line}",
                        self.regions[r].name
                    ));
                }
                Ok(Value::Ptr {
                    region: r,
                    off: 0,
                    unit: self.regions[r].elem_f64s,
                })
            }
            (Value::Ptr { region, off, unit }, "add") => match argv.first() {
                Some(Value::Int(k)) => Ok(Value::Ptr {
                    region,
                    off: off
                        .checked_add(k.checked_mul(unit).ok_or("integer overflow")?)
                        .ok_or("integer overflow")?,
                    unit,
                }),
                _ => Err(format!("non-integer pointer advance at line {line}")),
            },
            (Value::Ptr { .. }, other) => Err(format!(
                "unmodeled pointer method `.{other}` at line {line}"
            )),
            (Value::Slice(r), other) => Err(format!(
                "unmodeled slice method `.{other}` on `{}` at line {line}",
                self.regions[r].name
            )),
            _ => {
                if argv.iter().any(|v| matches!(v, Value::Ptr { .. })) {
                    return Err(format!("pointer escapes into `.{name}` at line {line}"));
                }
                Ok(Value::Unit)
            }
        }
    }

    fn eval_call(
        &mut self,
        path: &[String],
        args: &[Expr],
        site: Option<usize>,
        line: usize,
    ) -> Result<Value, String> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        if let Some(site_id) = site {
            let decl = &self.sites[site_id];
            let (mut lanes, is_store) = (decl.lanes as i64, decl.is_store);
            let ptr = match argv.first() {
                Some(Value::Ptr { region, off, unit }) => (*region, *off, *unit),
                _ => {
                    return Err(format!(
                        "`{}` at line {line} called without a tracked pointer",
                        decl.intrinsic
                    ))
                }
            };
            if ptr.2 != 1 {
                return Err(format!(
                    "`{}` at line {line} on a pointer not cast to f64",
                    decl.intrinsic
                ));
            }
            let (mut region, mut index) = (ptr.0, ptr.1);
            if let Some(m) = self.mutation {
                if m.site == site_id {
                    match m.kind {
                        MutationKind::OffsetByOne => index += 1,
                        MutationKind::WidenVector => lanes *= 2,
                        MutationKind::SwapBase => {
                            region = (region + 1) % self.regions.len();
                        }
                    }
                }
            }
            // Non-pointer operands (the stored vector) must be clean.
            for v in argv.iter().skip(1) {
                if matches!(v, Value::Ptr { .. }) {
                    return Err(format!(
                        "extra pointer operand to `{}` at line {line}",
                        decl.intrinsic
                    ));
                }
            }
            self.ptr_accesses.push(AccessRec {
                site: Some(site_id),
                region,
                index,
                lanes,
                is_store,
                line,
            });
            return Ok(Value::Unit);
        }
        // Any other callee: pointers must not escape.
        if argv.iter().any(|v| matches!(v, Value::Ptr { .. })) {
            return Err(format!(
                "pointer escapes into `{}` at line {line}",
                path.join("::")
            ));
        }
        Ok(Value::Unit)
    }
}

// ---------------------------------------------------------------------
// Harness: execute every kernel over every certified shape
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct SiteStat {
    region: String,
    min_index: i64,
    max_end: i64,
    region_len_at_max: i64,
    all_even: bool,
    elem_f64s: i64,
    executions: u64,
}

#[derive(Clone, Debug, Default)]
struct ExecutionSummary {
    /// Interpreter failures (unmodeled construct, pointer escape, ...).
    errors: Vec<String>,
    /// Out-of-bounds / writability violations.
    violations: Vec<String>,
    /// Coverage mismatches against the `access` stride families.
    coverage: Vec<String>,
    /// FNV-1a over the sorted access trace.
    fingerprint: u64,
    /// Per-site aggregates, keyed by site id.
    stats: std::collections::BTreeMap<usize, SiteStat>,
    /// `module::kernel` names that were executed.
    kernels: Vec<String>,
}

fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn enumerate_set(set: &AccessSet) -> BTreeSet<i64> {
    (0..set.len as i64)
        .map(|k| set.base as i64 + k * set.stride as i64)
        .collect()
}

/// Expected complex-index coverage for one kernel at one shape:
/// `(data_reads, data_writes, tw_reads)` as stride families.
fn expected_coverage(kind: KernelKind, module: &str, a: usize, _b: usize) -> CoverageSpec {
    match kind {
        KernelKind::Dft => {
            let n = a;
            let data = AccessSet::new(Region::Data, 0, 1, if n >= 2 { n } else { 0 });
            // The x86 path fuses stages 1–2 into in-register constants:
            // tw[0..2] are implicit, tw[2] seeds the fused sign vector,
            // and the general stages stream tw[3..n-1]. NEON walks the
            // whole table.
            let tw = if module == "x86" {
                AccessSet::new(Region::Twiddle, 2, 1, if n >= 4 { n - 3 } else { 0 })
            } else {
                AccessSet::new(Region::Twiddle, 0, 1, n.saturating_sub(1))
            };
            CoverageSpec {
                data_reads: data,
                data_writes: data,
                tw_reads: tw,
                tw_exact: true,
            }
        }
        KernelKind::Twiddle => {
            let m = a;
            let data = AccessSet::new(Region::Data, 0, 1, m);
            CoverageSpec {
                data_reads: data,
                data_writes: data,
                tw_reads: AccessSet::new(Region::Twiddle, 0, 1, m),
                tw_exact: true,
            }
        }
    }
}

struct CoverageSpec {
    data_reads: AccessSet,
    data_writes: AccessSet,
    tw_reads: AccessSet,
    tw_exact: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KernelKind {
    Dft,
    Twiddle,
}

fn classify(f: &FnDef) -> Option<KernelKind> {
    if f.name.contains("dft_inplace") {
        Some(KernelKind::Dft)
    } else if f.name.contains("twiddles") {
        Some(KernelKind::Twiddle)
    } else {
        None
    }
}

/// Runs one kernel once at one shape, merging the trace into `summary`.
#[allow(clippy::too_many_arguments)]
fn run_kernel(
    f: &FnDef,
    parsed: &ParsedFile,
    elems: &[i64],
    shape: &str,
    kind: KernelKind,
    cover: Option<(usize, usize)>,
    mutation: Option<PtrMutation>,
    lines: &mut Vec<String>,
    summary: &mut ExecutionSummary,
) {
    let qual = format!("{}::{}", f.module, f.name);
    let mut regions = Vec::new();
    for (i, p) in f.params.iter().enumerate() {
        let Some(elem_f64s) = p.elem_f64s else {
            summary
                .errors
                .push(format!("{qual}: non-slice parameter `{}`", p.name));
            return;
        };
        let elem_count = elems.get(i).copied().unwrap_or(0);
        regions.push(RegionInst {
            name: p.name.clone(),
            f64_len: elem_count * elem_f64s,
            elem_f64s,
            writable: p.writable,
        });
    }
    let param_count = regions.len();
    let mut exec = Exec::new(regions, mutation, &parsed.sites);
    for (i, p) in f.params.iter().enumerate() {
        exec.bind(&p.name, Value::Slice(i));
    }
    if let Err(e) = exec.exec_block(&f.body) {
        summary.errors.push(format!("{qual} [{shape}]: {e}"));
        return;
    }
    // Bounds and writability over the full trace.
    let mut data_reads: BTreeSet<i64> = BTreeSet::new();
    let mut data_writes: BTreeSet<i64> = BTreeSet::new();
    let mut tw_reads: BTreeSet<i64> = BTreeSet::new();
    let mut tw_writes: BTreeSet<i64> = BTreeSet::new();
    for rec in exec.ptr_accesses.iter().chain(exec.slice_accesses.iter()) {
        let region = &exec.regions[rec.region];
        // Slice accesses are in element units; pointer accesses in f64s.
        let (f64_idx, f64_lanes) = if rec.site.is_some() {
            (rec.index, rec.lanes)
        } else {
            (rec.index * region.elem_f64s, rec.lanes * region.elem_f64s)
        };
        let end = f64_idx + f64_lanes;
        if f64_idx < 0 || end > region.f64_len {
            summary.violations.push(format!(
                "{qual} [{shape}] line {}: access [{f64_idx}, {end}) outside region `{}` of {} f64s",
                rec.line, region.name, region.f64_len
            ));
        }
        if rec.is_store && !region.writable {
            summary.violations.push(format!(
                "{qual} [{shape}] line {}: store to read-only region `{}`",
                rec.line, region.name
            ));
        }
        let kind_ch = if rec.is_store { 'S' } else { 'L' };
        lines.push(format!(
            "{qual}|{shape}|{:?}|{}|{f64_idx}|{f64_lanes}|{kind_ch}",
            rec.site, region.name
        ));
        if let Some(site) = rec.site {
            let stat = summary.stats.entry(site).or_insert_with(|| SiteStat {
                region: region.name.clone(),
                min_index: i64::MAX,
                max_end: i64::MIN,
                region_len_at_max: 0,
                all_even: true,
                elem_f64s: region.elem_f64s,
                executions: 0,
            });
            stat.min_index = stat.min_index.min(f64_idx);
            if end > stat.max_end {
                stat.max_end = end;
                stat.region_len_at_max = region.f64_len;
            }
            if f64_idx % 2 != 0 {
                stat.all_even = false;
            }
            stat.executions += 1;
        }
        // Complex-unit coverage for the two parameter regions.
        if rec.region < param_count && region.elem_f64s == 2 {
            let lo = f64_idx.div_euclid(2);
            let hi = (end + 1).div_euclid(2);
            let set = match (rec.region, rec.is_store) {
                (0, false) => &mut data_reads,
                (0, true) => &mut data_writes,
                (1, false) => &mut tw_reads,
                (1, true) => &mut tw_writes,
                _ => continue,
            };
            for c in lo..hi {
                set.insert(c);
            }
        }
    }
    // Cross-check against the plan-level stride families.
    if let Some((a, b)) = cover {
        let spec = expected_coverage(kind, &f.module, a, b);
        let mut demand = |label: &str, got: &BTreeSet<i64>, want: &AccessSet, exact: bool| {
            let want_set = enumerate_set(want);
            let ok = if exact {
                *got == want_set
            } else {
                got.is_subset(&want_set)
            };
            if !ok {
                summary.coverage.push(format!(
                    "{qual} [{shape}]: {label} coverage {:?} does not match the \
                     stride family base={} stride={} len={}",
                    got, want.base, want.stride, want.len
                ));
            }
        };
        demand("data read", &data_reads, &spec.data_reads, true);
        demand("data write", &data_writes, &spec.data_writes, true);
        demand("twiddle read", &tw_reads, &spec.tw_reads, spec.tw_exact);
        if !tw_writes.is_empty() {
            summary.coverage.push(format!(
                "{qual} [{shape}]: writes to the twiddle region: {tw_writes:?}"
            ));
        }
    }
}

/// Executes every kernel with intrinsic sites over every certified
/// shape. `check_coverage` is disabled for mutated runs (a seeded fault
/// changes coverage by design; only bounds and fingerprint matter).
fn execute_all(
    parsed: &ParsedFile,
    mutation: Option<PtrMutation>,
    check_coverage: bool,
) -> ExecutionSummary {
    let mut summary = ExecutionSummary::default();
    let mut lines = Vec::new();
    for f in &parsed.fns {
        if f.sites.is_empty() {
            continue;
        }
        let Some(kind) = classify(f) else {
            summary.errors.push(format!(
                "{}::{} contains intrinsic sites but matches no known kernel shape \
                 (expected a `dft_inplace*` or `*twiddles*` name)",
                f.module, f.name
            ));
            continue;
        };
        summary.kernels.push(format!("{}::{}", f.module, f.name));
        match kind {
            KernelKind::Dft => {
                for n in leaf_sizes() {
                    let n_i = n as i64;
                    run_kernel(
                        f,
                        parsed,
                        &[n_i, n_i - 1],
                        &format!("n={n}"),
                        kind,
                        if check_coverage { Some((n, 0)) } else { None },
                        mutation,
                        &mut lines,
                        &mut summary,
                    );
                }
            }
            KernelKind::Twiddle => {
                for (m, blen) in twiddle_shapes() {
                    run_kernel(
                        f,
                        parsed,
                        &[blen as i64, m as i64],
                        &format!("m={m},b={blen}"),
                        kind,
                        if check_coverage {
                            Some((m, blen))
                        } else {
                            None
                        },
                        mutation,
                        &mut lines,
                        &mut summary,
                    );
                }
            }
        }
    }
    lines.sort();
    summary.fingerprint = fnv1a(&lines);
    summary
}

/// Recursively collects sensitive opaque statements anywhere in a
/// function body (including functions the harness never executes, such
/// as the safe wrappers): drift in unparsed pointer code is fatal.
fn sensitive_opaques(body: &[Stmt], out: &mut Vec<(usize, String)>) {
    for s in body {
        match s {
            Stmt::Opaque {
                line,
                sensitive: true,
                text,
            } => out.push((*line, text.clone())),
            Stmt::If { then, alt, .. } => {
                sensitive_opaques(then, out);
                sensitive_opaques(alt, out);
            }
            Stmt::While { body, .. } | Stmt::ForRange { body, .. } | Stmt::Block(body) => {
                sensitive_opaques(body, out);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Verifies `source` (the text of `arch.rs`) and returns the pointer
/// certificate. `label` is the path used in findings. Pushes an error
/// finding for every reason the certificate cannot be issued; returns
/// `None` in that case.
pub fn verify_arch_text(
    label: &str,
    source: &str,
    report: &mut AnalysisReport,
) -> Option<PtrCertificate> {
    report.subject();
    let parsed = match parse_arch(source) {
        Ok(p) => p,
        Err(e) => {
            report.push(
                RULE_PTR,
                Severity::Error,
                label,
                format!("parse failure: {e}"),
            );
            return None;
        }
    };
    let mut ok = true;
    for (name, line) in &parsed.banned {
        ok = false;
        report.push(
            RULE_PTR,
            Severity::Error,
            &format!("{label}:{line}"),
            format!(
                "aligned/streaming intrinsic `{name}`: the certificate only proves 8-byte \
                 alignment — use the unaligned variant"
            ),
        );
    }
    let mut opaques = Vec::new();
    for f in &parsed.fns {
        sensitive_opaques(&f.body, &mut opaques);
    }
    for (line, text) in &opaques {
        ok = false;
        report.push(
            RULE_PTR,
            Severity::Error,
            &format!("{label}:{line}"),
            format!("unmodeled pointer-sensitive statement: `{text}`"),
        );
    }
    let summary = execute_all(&parsed, None, true);
    for e in summary
        .errors
        .iter()
        .chain(summary.violations.iter())
        .chain(summary.coverage.iter())
    {
        ok = false;
        report.push(RULE_PTR, Severity::Error, label, e.clone());
    }
    for site in &parsed.sites {
        report.check();
        if !summary.stats.contains_key(&site.id) {
            ok = false;
            report.push(
                RULE_PTR,
                Severity::Error,
                &format!("{label}:{}", site.line),
                format!(
                    "intrinsic site `{}` was never executed at any certified shape",
                    site.intrinsic
                ),
            );
        }
    }
    if !ok {
        return None;
    }
    let sites = parsed
        .sites
        .iter()
        .filter_map(|decl| {
            let stat = summary.stats.get(&decl.id)?;
            Some(SiteCert {
                id: decl.id,
                kernel: decl.kernel.clone(),
                module: decl.module.clone(),
                line: decl.line,
                intrinsic: decl.intrinsic.clone(),
                is_store: decl.is_store,
                region: stat.region.clone(),
                lanes: decl.lanes,
                min_index: stat.min_index,
                max_end: stat.max_end,
                region_len_at_max: stat.region_len_at_max,
                align_bytes: if stat.all_even && stat.elem_f64s == 2 {
                    16
                } else {
                    8
                },
                executions: stat.executions,
            })
        })
        .collect();
    Some(PtrCertificate {
        file: PTR_TARGET.to_string(),
        sizes: leaf_sizes(),
        kernels: summary.kernels,
        sites,
        fingerprint: summary.fingerprint,
    })
}

/// Reads and verifies the audited module under the workspace `root`.
pub fn verify_arch(root: &Path, report: &mut AnalysisReport) -> Option<PtrCertificate> {
    let path = root.join(PTR_TARGET);
    match std::fs::read_to_string(&path) {
        Ok(source) => verify_arch_text(PTR_TARGET, &source, report),
        Err(e) => {
            report.push(
                RULE_PTR,
                Severity::Error,
                PTR_TARGET,
                format!("cannot read audited module: {e}"),
            );
            None
        }
    }
}

/// Runs the seeded-mutation self-test: every `(site, fault)` pair must
/// be noticed, either as a hard bounds/writability violation or as a
/// changed access fingerprint. Pushes an error finding per escaped
/// mutation; returns `None` if the unmutated baseline is not clean.
pub fn mutation_sweep(
    label: &str,
    source: &str,
    report: &mut AnalysisReport,
) -> Option<MutationSummary> {
    let parsed = match parse_arch(source) {
        Ok(p) => p,
        Err(e) => {
            report.push(
                RULE_PTR,
                Severity::Error,
                label,
                format!("parse failure: {e}"),
            );
            return None;
        }
    };
    let baseline = execute_all(&parsed, None, true);
    if !baseline.errors.is_empty() || !baseline.violations.is_empty() {
        report.push(
            RULE_PTR,
            Severity::Error,
            label,
            "mutation sweep requires a clean baseline".to_string(),
        );
        return None;
    }
    let mut out = MutationSummary::default();
    for site in 0..parsed.sites.len() {
        for kind in [
            MutationKind::OffsetByOne,
            MutationKind::WidenVector,
            MutationKind::SwapBase,
        ] {
            report.check();
            out.applied += 1;
            let mutated = execute_all(&parsed, Some(PtrMutation { site, kind }), false);
            let hard = !mutated.violations.is_empty() || !mutated.errors.is_empty();
            let caught = hard || mutated.fingerprint != baseline.fingerprint;
            if hard {
                out.hard_violations += 1;
            }
            if caught {
                out.caught += 1;
            } else {
                report.push(
                    RULE_PTR,
                    Severity::Error,
                    &format!("{label}:{}", parsed.sites[site].line),
                    format!(
                        "seeded mutation escaped: {kind} at site {site} \
                         (`{}`) produced no violation and an unchanged fingerprint",
                        parsed.sites[site].intrinsic
                    ),
                );
            }
        }
    }
    Some(out)
}

/// Applies [`PtrMutation`] semantics to verification for external
/// callers (the `--demo-mutation` CI gate): returns whether the fault
/// was noticed.
pub fn demo_mutation_caught(source: &str, mutation: PtrMutation) -> bool {
    let Ok(parsed) = parse_arch(source) else {
        return true; // unparseable counts as noticed
    };
    if mutation.site >= parsed.sites.len() {
        return false;
    }
    let baseline = execute_all(&parsed, None, false);
    let mutated = execute_all(&parsed, Some(mutation), false);
    !mutated.violations.is_empty()
        || !mutated.errors.is_empty()
        || mutated.fingerprint != baseline.fingerprint
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch_source() -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../backend-simd/src/arch.rs");
        std::fs::read_to_string(path).expect("read arch.rs")
    }

    #[test]
    fn leaf_sizes_match_backend_dispatch() {
        let sizes = leaf_sizes();
        assert_eq!(sizes, vec![1, 2, 4, 8, 16, 32, 64]);
        for n in &sizes {
            assert!(ddl_backend_simd::supported_size(*n));
        }
    }

    #[test]
    fn real_arch_module_certifies_clean() {
        let src = arch_source();
        let mut report = AnalysisReport::new();
        let cert = verify_arch_text(PTR_TARGET, &src, &mut report);
        assert!(report.passes(), "{:#?}", report.findings);
        let cert = cert.expect("certificate");
        // Both ISA paths: 14 x86 DFT + 3 x86 twiddle + 6 NEON DFT +
        // 4 NEON twiddle intrinsic sites.
        assert_eq!(cert.sites.len(), 27, "{:#?}", cert.sites);
        assert_eq!(cert.kernels.len(), 4);
        for site in &cert.sites {
            assert!(site.executions > 0, "{site:?}");
            assert!(site.min_index >= 0, "{site:?}");
            assert!(site.max_end <= site.region_len_at_max, "{site:?}");
            // Complex-region accesses are 16-byte aligned; the NEON
            // sign-vector loads from a local [f64; 2] are 8-byte.
            if site.region == "sign" {
                assert_eq!(site.align_bytes, 8, "{site:?}");
            } else {
                assert_eq!(site.align_bytes, 16, "{site:?}");
            }
        }
        // The twiddled butterfly loads are exact-fit: the proof is
        // tight, not slack.
        assert!(
            cert.sites
                .iter()
                .filter(|s| s.max_end == s.region_len_at_max)
                .count()
                >= 10,
            "{:#?}",
            cert.sites
        );
    }

    #[test]
    fn every_seeded_mutation_is_caught() {
        let src = arch_source();
        let mut report = AnalysisReport::new();
        let summary = mutation_sweep(PTR_TARGET, &src, &mut report).expect("sweep");
        assert!(report.passes(), "{:#?}", report.findings);
        assert_eq!(summary.applied, 27 * 3);
        assert_eq!(summary.caught, summary.applied);
        assert!(summary.hard_violations > 0);
    }

    #[test]
    fn off_by_one_on_exact_fit_sites_is_a_hard_violation() {
        // Fingerprint drift alone would also catch these, but the
        // exact-fit sites (access end == region end) must escalate to a
        // real out-of-bounds: this pins the arithmetic, not just the
        // hashing.
        let src = arch_source();
        let parsed = parse_arch(&src).expect("parse");
        let baseline = execute_all(&parsed, None, false);
        assert!(baseline.violations.is_empty(), "{:?}", baseline.violations);
        let exact_fit: Vec<usize> = baseline
            .stats
            .iter()
            .filter(|(_, s)| s.max_end == s.region_len_at_max)
            .map(|(id, _)| *id)
            .collect();
        assert!(exact_fit.len() >= 10, "{exact_fit:?}");
        for site in exact_fit {
            let mutated = execute_all(
                &parsed,
                Some(PtrMutation {
                    site,
                    kind: MutationKind::OffsetByOne,
                }),
                false,
            );
            assert!(
                !mutated.violations.is_empty(),
                "site {site} (+1) stayed in bounds"
            );
        }
    }

    #[test]
    fn textual_off_by_one_mutation_fails_verification() {
        let src = arch_source().replacen("2 * b + 4", "2 * b + 5", 1);
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("mutated.rs", &src, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == RULE_PTR && f.message.contains("outside region")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn coverage_gap_mutation_fails_verification() {
        // Start the NEON butterfly loop at j=1: still in-bounds, but
        // the kernel no longer touches every point — the stride-family
        // cross-check must notice.
        let src = arch_source().replacen("for j in 0..half", "for j in 1..half", 1);
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("mutated.rs", &src, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("coverage")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn swapped_base_textual_mutation_fails_verification() {
        // Point the twiddle-table pointer at the data buffer: the x86
        // twiddle coverage family no longer matches.
        let src = arch_source().replacen("let twp = tw.as_ptr()", "let twp = buf.as_ptr()", 1);
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("mutated.rs", &src, &mut report).is_none());
    }

    #[test]
    fn unmodeled_pointer_statement_is_fatal() {
        let src = "use ddl_num::Complex64;\n\
                   fn dft_inplace_x(buf: &mut [Complex64]) {\n\
                   let p = buf.as_mut_ptr() as *mut f64;\n\
                   helper(|| p.add(1));\n\
                   }\n";
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("drift.rs", src, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("pointer-sensitive")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn unknown_kernel_with_sites_is_fatal() {
        let src = "fn scramble(buf: &mut [Complex64]) {\n\
                   let v = _mm256_loadu_pd(buf.as_ptr() as *const f64);\n\
                   let _ = v;\n\
                   }\n";
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("drift.rs", src, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("no known kernel shape")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn aligned_intrinsics_are_rejected() {
        let src = "fn dft_inplace_x(buf: &mut [Complex64], tw: &[Complex64]) {\n\
                   let p = buf.as_mut_ptr() as *mut f64;\n\
                   let v = _mm256_load_pd(p.add(0));\n\
                   let _ = v;\n\
                   let _ = tw;\n\
                   }\n";
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("drift.rs", src, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("aligned/streaming")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn synthetic_off_by_one_kernel_is_rejected_end_to_end() {
        let src = "fn dft_inplace_bad(buf: &mut [Complex64], tw: &[Complex64]) {\n\
                   let n = buf.len();\n\
                   let p = buf.as_mut_ptr() as *mut f64;\n\
                   let _ = tw;\n\
                   let mut b = 0;\n\
                   while b < n {\n\
                   let v = _mm256_loadu_pd(p.add(2 * b + 1));\n\
                   _mm256_storeu_pd(p.add(2 * b), v);\n\
                   b += 2;\n\
                   }\n\
                   }\n";
        let mut report = AnalysisReport::new();
        assert!(verify_arch_text("bad.rs", src, &mut report).is_none());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("outside region")),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn demo_mutation_is_noticed() {
        let src = arch_source();
        assert!(demo_mutation_caught(
            &src,
            PtrMutation {
                site: 1,
                kind: MutationKind::OffsetByOne,
            }
        ));
        // A site id past the end is not a real mutation: not noticed.
        assert!(!demo_mutation_caught(
            &src,
            PtrMutation {
                site: 10_000,
                kind: MutationKind::OffsetByOne,
            }
        ));
    }
}
