//! The `ddl-cert` certificate: one versioned, machine-checkable
//! artifact binding together the three static-verification passes.
//!
//! A lint tells you the code *looks* fine; a certificate states *what
//! was proven* in a form another program can re-validate without
//! re-running the proofs:
//!
//! * `pointer` — the [`crate::ptr`] unsafe-pointer verification of
//!   every SIMD intrinsic access in `arch.rs` (per-site bounds,
//!   alignment, the access-trace fingerprint);
//! * `locks` — the [`crate::locks`] lock-order graph with its
//!   acyclicity verdict and topological order;
//! * `errbound` — the [`crate::errbound`] per-size static ulp bounds
//!   with the model constants that produced them;
//! * `mutations` — the seeded-mutation self-test: how many injected
//!   violations were applied to the pointer verifier and how many it
//!   caught (anything but 100% voids the certificate).
//!
//! The document is versioned (`schema: "ddl-cert", version: 1`) and
//! validated by [`check_cert_text`], which refuses newer versions and
//! re-checks the internal invariants (caught == applied, acyclic lock
//! graph, in-bounds sites, monotone bounds). `ddl_core::check_report`
//! routes the document here via its `Unknown`-schema escape hatch.

use crate::errbound;
use crate::findings::{AnalysisReport, Severity};
use crate::locks::{self, LockCertificate};
use crate::ptr::{self, MutationSummary, PtrCertificate};
use ddl_core::json::{self, Json};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema string of the certificate document.
pub const CERT_SCHEMA: &str = "ddl-cert";

/// Current certificate version; [`check_cert_text`] refuses newer.
pub const CERT_VERSION: u32 = 1;

/// Rule id for certificate-assembly findings.
pub const RULE_CERT: &str = "cert/emit";

/// Counts reported back by [`check_cert_text`] for display.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CertSummary {
    /// Certified pointer sites.
    pub sites: usize,
    /// Verified kernels.
    pub kernels: usize,
    /// Lock classes.
    pub classes: usize,
    /// Lock-order edges.
    pub edges: usize,
    /// Per-size error bounds recorded.
    pub bounds: usize,
    /// Seeded mutations applied (and necessarily caught).
    pub mutations: usize,
}

fn num(x: usize) -> Json {
    Json::Num(x as f64)
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    let mut m = BTreeMap::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Json::Obj(m)
}

fn pointer_json(cert: &PtrCertificate) -> Json {
    obj(vec![
        ("file", Json::Str(cert.file.clone())),
        (
            "sizes",
            Json::Arr(cert.sizes.iter().map(|&n| num(n)).collect()),
        ),
        (
            "kernels",
            Json::Arr(cert.kernels.iter().map(|k| Json::Str(k.clone())).collect()),
        ),
        (
            "fingerprint",
            Json::Str(format!("{:016x}", cert.fingerprint)),
        ),
        (
            "sites",
            Json::Arr(
                cert.sites
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("id", num(s.id)),
                            ("kernel", Json::Str(s.kernel.clone())),
                            ("module", Json::Str(s.module.clone())),
                            ("line", num(s.line)),
                            ("intrinsic", Json::Str(s.intrinsic.clone())),
                            ("is_store", Json::Bool(s.is_store)),
                            ("region", Json::Str(s.region.clone())),
                            ("lanes", num(s.lanes)),
                            ("min_index", Json::Num(s.min_index as f64)),
                            ("max_end", Json::Num(s.max_end as f64)),
                            ("region_len_at_max", Json::Num(s.region_len_at_max as f64)),
                            ("align_bytes", num(s.align_bytes as usize)),
                            ("executions", Json::Num(s.executions as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn locks_json(cert: &LockCertificate) -> Json {
    obj(vec![
        (
            "classes",
            Json::Arr(cert.classes.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        (
            "edges",
            Json::Arr(
                cert.edges
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("from", Json::Str(e.from.clone())),
                            ("to", Json::Str(e.to.clone())),
                            ("site", Json::Str(e.site.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("acyclic", Json::Bool(cert.acyclic)),
        (
            "order",
            Json::Arr(cert.order.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
    ])
}

fn errbound_json() -> Json {
    let mut bounds: Vec<Json> = errbound::bound_table()
        .iter()
        .map(|b| {
            obj(vec![
                ("n", num(b.n)),
                ("r_dag", Json::Num((b.r_dag * 1e6).round() / 1e6)),
                ("depth", num(b.depth)),
                ("ulps", Json::Num(b.ulps as f64)),
            ])
        })
        .collect();
    // Composed sizes above the largest codelet, through the largest
    // size the conformance suite sweeps.
    for lg in 7u32..=14 {
        let n = 1usize << lg;
        bounds.push(obj(vec![
            ("n", num(n)),
            ("ulps", Json::Num(errbound::static_ulp_bound(n) as f64)),
        ]));
    }
    obj(vec![
        (
            "model",
            obj(vec![
                ("kappa", Json::Num(errbound::KAPPA)),
                ("c_level", Json::Num(errbound::C_LEVEL)),
                ("c_dispatch", Json::Num(errbound::C_DISPATCH)),
                ("max_codelet", num(errbound::MAX_CODELET)),
            ]),
        ),
        ("bounds", Json::Arr(bounds)),
    ])
}

fn mutations_json(m: &MutationSummary) -> Json {
    obj(vec![
        ("applied", num(m.applied)),
        ("caught", num(m.caught)),
        ("hard_oob", num(m.hard_violations)),
    ])
}

/// Runs all three passes plus the mutation self-test against the
/// workspace at `root` and assembles the certificate document.
/// Returns `None` (with error findings in `report`) when any pass
/// fails — a failing workspace gets no certificate.
pub fn build_certificate(root: &Path, report: &mut AnalysisReport) -> Option<Json> {
    let arch_path = root.join(ptr::PTR_TARGET);
    let source = match std::fs::read_to_string(&arch_path) {
        Ok(s) => s,
        Err(e) => {
            report.push(
                RULE_CERT,
                Severity::Error,
                ptr::PTR_TARGET,
                format!("cannot read pointer-verification target: {e}"),
            );
            return None;
        }
    };
    let pointer = ptr::verify_arch_text(ptr::PTR_TARGET, &source, report)?;
    let mutations = ptr::mutation_sweep(ptr::PTR_TARGET, &source, report)?;
    if mutations.caught != mutations.applied {
        report.push(
            RULE_CERT,
            Severity::Error,
            ptr::PTR_TARGET,
            format!(
                "mutation self-test: only {}/{} seeded violations caught — verifier blind spot",
                mutations.caught, mutations.applied
            ),
        );
        return None;
    }
    let lock_cert = locks::analyze_locks(root, report)?;
    let golden_path = root.join(locks::LOCK_GOLDEN_FIXTURE);
    match std::fs::read_to_string(&golden_path) {
        Ok(golden) => {
            if !locks::check_golden(&lock_cert, &golden, report) {
                return None;
            }
        }
        Err(e) => {
            report.push(
                RULE_CERT,
                Severity::Error,
                locks::LOCK_GOLDEN_FIXTURE,
                format!("cannot read golden lock order: {e}"),
            );
            return None;
        }
    }
    if !errbound::verify_bounds(report) {
        return None;
    }
    let findings = obj(vec![
        ("errors", num(report.count(Severity::Error))),
        ("warnings", num(report.count(Severity::Warning))),
        ("checks", Json::Num(report.checks as f64)),
        ("subjects", Json::Num(report.subjects as f64)),
    ]);
    Some(obj(vec![
        ("schema", Json::Str(CERT_SCHEMA.into())),
        ("version", Json::Num(CERT_VERSION as f64)),
        ("pointer", pointer_json(&pointer)),
        ("locks", locks_json(&lock_cert)),
        ("errbound", errbound_json()),
        ("mutations", mutations_json(&mutations)),
        ("findings_summary", findings),
    ]))
}

fn get<'a>(m: &'a BTreeMap<String, Json>, k: &str) -> Result<&'a Json, String> {
    m.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

fn get_obj<'a>(
    m: &'a BTreeMap<String, Json>,
    k: &str,
) -> Result<&'a BTreeMap<String, Json>, String> {
    get(m, k)?
        .as_obj()
        .ok_or_else(|| format!("field `{k}` is not an object"))
}

fn get_arr<'a>(m: &'a BTreeMap<String, Json>, k: &str) -> Result<&'a [Json], String> {
    match get(m, k)? {
        Json::Arr(v) => Ok(v),
        _ => Err(format!("field `{k}` is not an array")),
    }
}

fn get_u64(m: &BTreeMap<String, Json>, k: &str) -> Result<u64, String> {
    get(m, k)?
        .as_u64()
        .ok_or_else(|| format!("field `{k}` is not a non-negative integer"))
}

/// Validates a certificate document and re-checks its internal
/// invariants. Returns display counts on success, a diagnostic on any
/// violation. Refuses documents with a newer version than this build
/// understands.
pub fn check_cert_text(text: &str) -> Result<CertSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let top = doc.as_obj().ok_or("top level is not an object")?;
    let schema = get(top, "schema")?
        .as_str()
        .ok_or("`schema` is not a string")?;
    if schema != CERT_SCHEMA {
        return Err(format!("schema is {schema:?}, not {CERT_SCHEMA:?}"));
    }
    let version = get_u64(top, "version")?;
    if version > CERT_VERSION as u64 {
        return Err(format!(
            "certificate version {version} is newer than supported version {CERT_VERSION}"
        ));
    }

    // Pointer certificate.
    let pointer = get_obj(top, "pointer")?;
    let file = get(pointer, "file")?
        .as_str()
        .ok_or("`pointer.file` is not a string")?;
    if file != ptr::PTR_TARGET {
        return Err(format!(
            "pointer certificate covers {file:?}, expected {:?}",
            ptr::PTR_TARGET
        ));
    }
    let fp = get(pointer, "fingerprint")?
        .as_str()
        .ok_or("`pointer.fingerprint` is not a string")?;
    if fp.len() != 16 || u64::from_str_radix(fp, 16).is_err() {
        return Err(format!(
            "`pointer.fingerprint` {fp:?} is not a 64-bit hex digest"
        ));
    }
    let kernels = get_arr(pointer, "kernels")?;
    let sites = get_arr(pointer, "sites")?;
    if sites.is_empty() {
        return Err("pointer certificate certifies zero sites".into());
    }
    for (i, s) in sites.iter().enumerate() {
        let s = s
            .as_obj()
            .ok_or_else(|| format!("pointer site {i} is not an object"))?;
        let max_end = get(s, "max_end")?
            .as_f64()
            .ok_or("site `max_end` is not numeric")?;
        let region_len = get(s, "region_len_at_max")?
            .as_f64()
            .ok_or("site `region_len_at_max` is not numeric")?;
        let min_index = get(s, "min_index")?
            .as_f64()
            .ok_or("site `min_index` is not numeric")?;
        if min_index < 0.0 || max_end > region_len {
            return Err(format!(
                "pointer site {i} records an out-of-bounds access window \
                 [{min_index}, {max_end}) in a region of {region_len}"
            ));
        }
        let lanes = get_u64(s, "lanes")?;
        if !(1..=8).contains(&lanes) {
            return Err(format!(
                "pointer site {i} has implausible lane count {lanes}"
            ));
        }
        let align = get_u64(s, "align_bytes")?;
        if align != 8 && align != 16 {
            return Err(format!(
                "pointer site {i} has implausible alignment {align}"
            ));
        }
        if get_u64(s, "executions")? == 0 {
            return Err(format!("pointer site {i} was never executed"));
        }
    }

    // Lock certificate.
    let locks_doc = get_obj(top, "locks")?;
    let acyclic = matches!(get(locks_doc, "acyclic")?, Json::Bool(true));
    if !acyclic {
        return Err("lock-order graph is not certified acyclic".into());
    }
    let classes = get_arr(locks_doc, "classes")?;
    let order = get_arr(locks_doc, "order")?;
    if classes.is_empty() {
        return Err("lock certificate names zero lock classes".into());
    }
    if order.len() != classes.len() {
        return Err(format!(
            "lock order covers {} of {} classes",
            order.len(),
            classes.len()
        ));
    }
    let class_set: Vec<&str> = classes.iter().filter_map(|c| c.as_str()).collect();
    let edges = get_arr(locks_doc, "edges")?;
    for (i, e) in edges.iter().enumerate() {
        let e = e
            .as_obj()
            .ok_or_else(|| format!("lock edge {i} is not an object"))?;
        for end in ["from", "to"] {
            let v = get(e, end)?
                .as_str()
                .ok_or("edge endpoint is not a string")?;
            if !class_set.contains(&v) {
                return Err(format!("lock edge {i} references unknown class {v:?}"));
            }
        }
    }

    // Error bounds: monotone, below the legacy flat bound.
    let errb = get_obj(top, "errbound")?;
    let bounds = get_arr(errb, "bounds")?;
    if bounds.is_empty() {
        return Err("error-bound certificate is empty".into());
    }
    let mut prev = (0u64, 0u64);
    for (i, b) in bounds.iter().enumerate() {
        let b = b
            .as_obj()
            .ok_or_else(|| format!("bound {i} is not an object"))?;
        let n = get_u64(b, "n")?;
        let ulps = get_u64(b, "ulps")?;
        if ulps >= 4096 {
            return Err(format!(
                "bound for n={n} is {ulps} ulps, not below the flat 4096"
            ));
        }
        if n > prev.0 && ulps < prev.1 {
            return Err(format!(
                "bounds not monotone: n={n} has {ulps} ulps after n={} with {}",
                prev.0, prev.1
            ));
        }
        prev = (n, ulps);
    }

    // Mutation self-test.
    let muts = get_obj(top, "mutations")?;
    let applied = get_u64(muts, "applied")?;
    let caught = get_u64(muts, "caught")?;
    if applied == 0 {
        return Err("mutation self-test applied zero mutations".into());
    }
    if caught != applied {
        return Err(format!(
            "mutation self-test caught {caught}/{applied} seeded violations"
        ));
    }
    if get_u64(muts, "hard_oob")? == 0 {
        return Err("mutation self-test produced no hard out-of-bounds demonstration".into());
    }

    Ok(CertSummary {
        sites: sites.len(),
        kernels: kernels.len(),
        classes: classes.len(),
        edges: edges.len(),
        bounds: bounds.len(),
        mutations: applied as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root")
    }

    #[test]
    fn workspace_certificate_builds_and_validates() {
        let mut report = AnalysisReport::new();
        let doc = build_certificate(&root(), &mut report)
            .unwrap_or_else(|| panic!("certificate: {:#?}", report.findings));
        assert!(report.passes(), "{:#?}", report.findings);
        let text = doc.pretty();
        let summary = check_cert_text(&text).expect("self-validation");
        assert!(summary.sites >= 20, "{summary:?}");
        assert_eq!(summary.kernels, 4);
        assert_eq!(summary.classes, 7);
        assert_eq!(summary.edges, 2);
        assert!(summary.bounds >= 10);
        assert!(summary.mutations >= 50);
    }

    #[test]
    fn core_report_checker_routes_cert_documents() {
        let mut report = AnalysisReport::new();
        let doc = build_certificate(&root(), &mut report).expect("certificate");
        match ddl_core::check_report_text(&doc.pretty()) {
            Ok(ddl_core::CheckedReport::Unknown { schema }) => {
                assert_eq!(schema, CERT_SCHEMA);
            }
            other => panic!("wrong dispatch: {other:?}"),
        }
    }

    #[test]
    fn newer_versions_are_refused() {
        let mut report = AnalysisReport::new();
        let doc = build_certificate(&root(), &mut report).expect("certificate");
        let text = doc.pretty().replace("\"version\": 1", "\"version\": 2");
        let err = check_cert_text(&text).expect_err("must refuse newer");
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn tampered_bounds_fail_validation() {
        let mut report = AnalysisReport::new();
        let doc = build_certificate(&root(), &mut report).expect("certificate");
        let text = doc.pretty().replace("\"ulps\": 96", "\"ulps\": 99999");
        let err = check_cert_text(&text).expect_err("must reject tampered bound");
        assert!(err.contains("4096"), "{err}");
    }

    #[test]
    fn tampered_mutation_counts_fail_validation() {
        let mut report = AnalysisReport::new();
        let doc = build_certificate(&root(), &mut report).expect("certificate");
        let text = doc.pretty().replace("\"caught\": 81", "\"caught\": 80");
        let err = check_cert_text(&text).expect_err("must reject partial catches");
        assert!(err.contains("81") || err.contains("caught"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = check_cert_text("{\"schema\": \"ddl-metrics\", \"version\": 1}")
            .expect_err("wrong schema");
        assert!(err.contains("ddl-cert"), "{err}");
    }
}
