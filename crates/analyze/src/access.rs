//! Static footprint analysis of planner-emitted trees.
//!
//! The executors in `ddl-core` walk a [`Tree`] recursively, deriving
//! every strided view from arithmetic on `(base, stride)` — the paper's
//! Property 1. This module re-derives those views *without executing*:
//! it walks the same recursion symbolically and, per node, proves
//!
//! * **in-bounds**: every strided view a stage touches fits its buffer
//!   (via [`ddl_layout::StridedView::try_new`], the same validator the
//!   runtime gather/scatter paths use);
//! * **non-aliasing**: within each primitive step (leaf codelet, gather,
//!   transpose, twiddle pass) the source and destination index sets are
//!   disjoint — exact arithmetic-progression intersection, not a range
//!   heuristic;
//! * **scratch discipline**: the `t`/`t2`/`rest` carving of the scratch
//!   buffer stays inside the plan's declared `scratch_len`, and the
//!   re-derived scratch/twiddle totals equal what the compiled plan
//!   reports.
//!
//! The walk visits each tree node once. A stage that executes a child
//! `k` times is checked through its *union footprint*: the union of the
//! `k` instance views is itself a strided set (the instances tile it
//! exactly), so one in-bounds proof and one disjointness proof cover
//! every instance. The per-instance recursion then descends through the
//! highest-base instance — the bounds-critical one. This makes the
//! analysis `O(nodes)` instead of `O(n log n)`, which is what lets CI
//! prove every plan at `2^1..2^16` statically.
//!
//! As a cross-check that the symbolic walk mirrors the real executor,
//! the analysis also computes the exact number of point accesses each
//! plan performs; `ddl-cachesim` traces must (and, per the tests, do)
//! count the same.

use crate::findings::{AnalysisReport, Severity};
use ddl_core::tree::Tree;
use ddl_layout::StridedView;

/// Which simulated buffer an access set lives in. Regions are disjoint
/// address ranges (the traced drivers lay them out page-aligned), so
/// sets in different regions never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// DFT input buffer `x`.
    Input,
    /// DFT output buffer `y`.
    Output,
    /// Scratch buffer (DFT intermediates / WHT reorganization buffer).
    Scratch,
    /// Twiddle-factor tables.
    Twiddle,
    /// The WHT's single in-place data buffer.
    Data,
}

impl Region {
    /// Stable lowercase name used in findings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Region::Input => "input",
            Region::Output => "output",
            Region::Scratch => "scratch",
            Region::Twiddle => "twiddle",
            Region::Data => "data",
        }
    }
}

/// An arithmetic progression of point indices within one region:
/// `{ base + i·stride : 0 <= i < len }`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct AccessSet {
    /// Buffer the indices refer to.
    pub region: Region,
    /// First point index.
    pub base: usize,
    /// Step between consecutive points.
    pub stride: usize,
    /// Number of points.
    pub len: usize,
}

impl AccessSet {
    /// A new access set.
    pub fn new(region: Region, base: usize, stride: usize, len: usize) -> AccessSet {
        AccessSet {
            region,
            base,
            stride,
            len,
        }
    }

    /// Exact intersection test: do the two index sets share any point?
    /// Sets in different regions never intersect.
    #[must_use]
    pub fn intersects(&self, other: &AccessSet) -> bool {
        if self.region != other.region {
            return false;
        }
        progressions_intersect(
            self.base,
            self.stride,
            self.len,
            other.base,
            other.stride,
            other.len,
        )
    }
}

/// Exact intersection of two finite arithmetic progressions
/// `{b1 + i·s1 : i < n1}` and `{b2 + j·s2 : j < n2}`, solved as a linear
/// Diophantine equation (no enumeration, no overflow: `i128` throughout).
#[must_use]
pub fn progressions_intersect(
    b1: usize,
    s1: usize,
    n1: usize,
    b2: usize,
    s2: usize,
    n2: usize,
) -> bool {
    if n1 == 0 || n2 == 0 {
        return false;
    }
    // Degenerate progressions (single point, or stride 0 which repeats
    // the base) reduce to membership tests.
    if n1 == 1 || s1 == 0 {
        return contains_point(b2, s2, n2, b1);
    }
    if n2 == 1 || s2 == 0 {
        return contains_point(b1, s1, n1, b2);
    }
    let (b1, s1, n1) = (b1 as i128, s1 as i128, n1 as i128);
    let (b2, s2, n2) = (b2 as i128, s2 as i128, n2 as i128);
    // Solve b1 + i*s1 = b2 + j*s2  =>  i*s1 - j*s2 = b2 - b1.
    let d = b2 - b1;
    let (g, x, _y) = egcd(s1, s2);
    if d % g != 0 {
        return false;
    }
    // One solution: i0 = x * (d/g); the full family is
    // i = i0 + (s2/g)*t, and j follows from the line equation.
    let i0 = x * (d / g);
    let step_i = s2 / g;
    // Clamp t so that 0 <= i < n1.
    let (t_lo_i, t_hi_i) = t_range(i0, step_i, n1);
    // j = (b1 + i*s1 - b2)/s2 = (i*s1 - d)/s2; as a function of t:
    // j = j0 + (s1/g)*t with j0 = (i0*s1 - d)/s2.
    let j0 = (i0 * s1 - d) / s2;
    let step_j = s1 / g;
    let (t_lo_j, t_hi_j) = t_range(j0, step_j, n2);
    t_lo_i.max(t_lo_j) <= t_hi_i.min(t_hi_j)
}

/// Is `p` a member of `{b + i·s : 0 <= i < n}`?
fn contains_point(b: usize, s: usize, n: usize, p: usize) -> bool {
    if n == 0 {
        return false;
    }
    if s == 0 || n == 1 {
        return p == b;
    }
    p >= b && (p - b).is_multiple_of(s) && (p - b) / s < n
}

/// Extended gcd: returns `(g, x, y)` with `a*x + b*y = g`, `g > 0`.
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Range of `t` with `0 <= v0 + step*t <= vmax - 1`, as inclusive bounds
/// (`step != 0`). Returns an empty range as `(1, 0)` when impossible.
fn t_range(v0: i128, step: i128, vmax: i128) -> (i128, i128) {
    let lo = -v0;
    let hi = vmax - 1 - v0;
    if step > 0 {
        (div_ceil(lo, step), div_floor(hi, step))
    } else {
        (div_ceil(hi, step), div_floor(lo, step))
    }
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// One leaf-stage access family: `calls` executions of an `n`-point
/// primitive whose representative instance reads `read` and writes
/// `write` (instances differ only by a base shift).
#[derive(Clone, Debug)]
#[must_use]
pub struct LeafFamily {
    /// Number of times this primitive executes in one plan run.
    pub calls: u64,
    /// Points per execution.
    pub n: usize,
    /// Representative read set.
    pub read: AccessSet,
    /// Representative write set.
    pub write: AccessSet,
    /// True for reorganization passes (gather/scatter/transpose), false
    /// for compute leaves.
    pub reorg: bool,
}

/// Result of statically analyzing one plan.
#[derive(Clone, Debug)]
#[must_use]
pub struct StaticAnalysis {
    /// Transform size.
    pub n: usize,
    /// Exact number of point accesses one execution performs — must
    /// match `ddl-cachesim`'s traced `accesses` counter.
    pub accesses: u64,
    /// Re-derived scratch requirement (points).
    pub scratch_points: usize,
    /// Re-derived twiddle-table requirement (points; zero for WHT).
    pub twiddle_points: usize,
    /// Every strided access family the plan's stages perform.
    pub leaves: Vec<LeafFamily>,
}

// ---------------------------------------------------------------------
// DFT
// ---------------------------------------------------------------------

/// Tile edge of the executor's reorganization transpose (mirror of
/// `ddl-core`'s `REORG_TILE`): the transpose walks 32-point tile rows.
const REORG_TILE: usize = 32;

/// Scratch requirement of a DFT subtree — the mirror of the executor's
/// `Compiled::build` accounting (reorg splits hold `t2` and `t` at once).
fn dft_need(tree: &Tree) -> usize {
    match tree {
        Tree::Leaf { n, reorg } => {
            if *reorg {
                *n
            } else {
                0
            }
        }
        Tree::Split { left, right, reorg } => {
            let n = tree.size();
            let own = if *reorg { 2 * n } else { n };
            own + dft_need(left).max(dft_need(right))
        }
    }
}

/// Total twiddle points of a DFT subtree (one `n`-point table per split).
fn dft_tw_points(tree: &Tree) -> usize {
    match tree {
        Tree::Leaf { .. } => 0,
        Tree::Split { left, right, .. } => tree.size() + dft_tw_points(left) + dft_tw_points(right),
    }
}

struct DftWalk<'a> {
    input_len: usize,
    output_len: usize,
    scratch_len: usize,
    twiddle_len: usize,
    subject: &'a str,
    report: &'a mut AnalysisReport,
    accesses: u64,
    leaves: Vec<LeafFamily>,
}

impl DftWalk<'_> {
    fn region_len(&self, region: Region) -> usize {
        match region {
            Region::Input => self.input_len,
            Region::Output => self.output_len,
            Region::Scratch => self.scratch_len,
            Region::Twiddle => self.twiddle_len,
            Region::Data => 0,
        }
    }

    /// Proves `set` fits its region, reusing the `ddl-layout` validator.
    fn prove_fits(&mut self, what: &str, set: AccessSet) {
        self.report.check();
        let buf_len = self.region_len(set.region);
        if let Err(e) = StridedView::try_new(set.base, set.stride.max(1), set.len, buf_len) {
            self.report.push(
                "plan/out-of-bounds",
                Severity::Error,
                self.subject,
                format!(
                    "{what}: view (base {}, stride {}, len {}) exceeds {} region of {} points: {e}",
                    set.base,
                    set.stride,
                    set.len,
                    set.region.label(),
                    buf_len
                ),
            );
        }
    }

    /// Proves a source/destination pair of one primitive step is
    /// alias-free.
    fn prove_disjoint(&mut self, what: &str, src: AccessSet, dst: AccessSet) {
        self.report.check();
        if src.intersects(&dst) {
            self.report.push(
                "plan/aliasing",
                Severity::Error,
                self.subject,
                format!(
                    "{what}: source (base {}, stride {}, len {} in {}) aliases destination \
                     (base {}, stride {}, len {} in {})",
                    src.base,
                    src.stride,
                    src.len,
                    src.region.label(),
                    dst.base,
                    dst.stride,
                    dst.len,
                    dst.region.label()
                ),
            );
        }
    }

    /// Proves a scratch interval `[off, off + len)` is inside the plan's
    /// declared scratch.
    fn prove_scratch(&mut self, what: &str, off: usize, len: usize) {
        self.report.check();
        if off.checked_add(len).map(|e| e > self.scratch_len) != Some(false) {
            self.report.push(
                "plan/scratch-overflow",
                Severity::Error,
                self.subject,
                format!(
                    "{what}: scratch interval [{off}, {off}+{len}) exceeds declared scratch of {} points",
                    self.scratch_len
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        node: &Tree,
        sv: AccessSet,
        dv: AccessSet,
        scr_off: usize,
        tw_cursor: usize,
        calls: u64,
    ) {
        let n = node.size();
        match node {
            Tree::Leaf { reorg, .. } => {
                if *reorg && sv.stride > 1 {
                    // Gather into contiguous scratch, then run the
                    // codelet at unit stride.
                    let gathered = AccessSet::new(Region::Scratch, scr_off, 1, n);
                    self.prove_scratch("leaf reorg gather", scr_off, n);
                    self.prove_fits("leaf reorg gather read", sv);
                    self.prove_disjoint("leaf reorg gather", sv, gathered);
                    self.leaves.push(LeafFamily {
                        calls,
                        n,
                        read: sv,
                        write: gathered,
                        reorg: true,
                    });
                    self.prove_fits("leaf write", dv);
                    self.prove_disjoint("leaf codelet", gathered, dv);
                    self.leaves.push(LeafFamily {
                        calls,
                        n,
                        read: gathered,
                        write: dv,
                        reorg: false,
                    });
                    self.accesses += calls * 4 * n as u64;
                } else {
                    self.prove_fits("leaf read", sv);
                    self.prove_fits("leaf write", dv);
                    self.prove_disjoint("leaf codelet", sv, dv);
                    self.leaves.push(LeafFamily {
                        calls,
                        n,
                        read: sv,
                        write: dv,
                        reorg: false,
                    });
                    self.accesses += calls * 2 * n as u64;
                }
            }
            Tree::Split { left, right, reorg } => {
                let n1 = left.size();
                let n2 = right.size();
                let own = if *reorg { 2 * n } else { n };
                self.prove_scratch("split intermediates", scr_off, own);
                let rest_off = scr_off + own;
                // reorg: t2 at scr_off, t at scr_off + n; else t at scr_off.
                let t_off = if *reorg { scr_off + n } else { scr_off };
                let stage1_dst_union = AccessSet::new(Region::Scratch, scr_off, 1, n);
                let t_union = AccessSet::new(Region::Scratch, t_off, 1, n);

                // Stage 1 union proofs: the n2 left-child instances read
                // {sv.base + (i1*n2 + i2)*sv.stride} — exactly this
                // node's input view — and tile t (or t2) exactly.
                self.prove_fits("stage 1 read union", sv);
                self.prove_disjoint("stage 1", sv, stage1_dst_union);

                // Twiddle tables are consumed in the executor's
                // post-order: left subtree, right subtree, then this
                // node's n-point table.
                let tw_left = tw_cursor;
                let tw_right = tw_left + dft_tw_points(left);
                let tw_own = tw_right + dft_tw_points(right);
                let table = AccessSet::new(Region::Twiddle, tw_own, 1, n);
                self.prove_fits("twiddle table", table);
                self.leaves.push(LeafFamily {
                    calls,
                    n,
                    read: table,
                    write: stage1_dst_union,
                    reorg: false,
                });
                self.accesses += calls * 3 * n as u64;

                if *reorg {
                    // Tiled transpose t2 -> t: adjacent scratch
                    // intervals, provably disjoint. The executor copies
                    // `dst[c·n2 + r] = src[r·n1 + c]` in 32-point tile
                    // rows, so the faithful access family is one
                    // contiguous read segment plus one stride-n2 write
                    // segment per tile row — the write side is what a
                    // conflict analysis must see, not a dense union.
                    let t2 = stage1_dst_union;
                    self.prove_disjoint("reorg transpose", t2, t_union);
                    let seg = REORG_TILE.min(n1);
                    self.leaves.push(LeafFamily {
                        calls: calls * (n / seg.max(1)) as u64,
                        n: seg,
                        read: AccessSet::new(Region::Scratch, scr_off, 1, seg),
                        write: AccessSet::new(Region::Scratch, t_off, n2, seg),
                        reorg: true,
                    });
                    self.accesses += calls * 2 * n as u64;
                }

                // Stage 2 union proofs: the n1 right-child instances
                // read t contiguously and write
                // {dv.base + (j1 + n1*j2)*dv.stride} — this node's
                // output view.
                self.prove_fits("stage 2 write union", dv);
                self.prove_disjoint("stage 2", t_union, dv);

                // Per-instance descent through the bounds-critical
                // (highest-base) instance of each stage.
                let i2 = n2 - 1;
                let child_sv =
                    AccessSet::new(sv.region, sv.base + i2 * sv.stride, n2 * sv.stride, n1);
                let child_dv = if *reorg {
                    AccessSet::new(Region::Scratch, scr_off + i2 * n1, 1, n1)
                } else {
                    AccessSet::new(Region::Scratch, scr_off + i2, n2, n1)
                };
                self.walk(
                    left,
                    child_sv,
                    child_dv,
                    rest_off,
                    tw_left,
                    calls * n2 as u64,
                );

                let j1 = n1 - 1;
                let child_sv = AccessSet::new(Region::Scratch, t_off + n2 * j1, 1, n2);
                let child_dv =
                    AccessSet::new(dv.region, dv.base + j1 * dv.stride, n1 * dv.stride, n2);
                self.walk(
                    right,
                    child_sv,
                    child_dv,
                    rest_off,
                    tw_right,
                    calls * n1 as u64,
                );
            }
        }
    }
}

/// Statically analyzes a DFT tree executed out of place with its input
/// read at `root_stride` (buffers sized to the minimal spans, the
/// tightest case). Emits findings into `report` under `subject` and
/// returns the footprint summary.
pub fn analyze_dft_tree(
    tree: &Tree,
    root_stride: usize,
    subject: &str,
    report: &mut AnalysisReport,
) -> StaticAnalysis {
    let n = tree.size();
    let scratch = dft_need(tree);
    let twiddle = dft_tw_points(tree);
    report.subject();
    let mut walk = DftWalk {
        input_len: (n - 1) * root_stride + 1,
        output_len: n,
        scratch_len: scratch,
        twiddle_len: twiddle,
        subject,
        report,
        accesses: 0,
        leaves: Vec::new(),
    };
    walk.walk(
        tree,
        AccessSet::new(Region::Input, 0, root_stride, n),
        AccessSet::new(Region::Output, 0, 1, n),
        0,
        0,
        1,
    );
    StaticAnalysis {
        n,
        accesses: walk.accesses,
        scratch_points: scratch,
        twiddle_points: twiddle,
        leaves: walk.leaves,
    }
}

/// [`analyze_dft_tree`] plus consistency proofs against the compiled
/// plan: the re-derived scratch and twiddle requirements must equal what
/// the executor's own accounting reports.
pub fn analyze_dft_plan(
    plan: &ddl_core::DftPlan,
    root_stride: usize,
    subject: &str,
    report: &mut AnalysisReport,
) -> StaticAnalysis {
    let analysis = analyze_dft_tree(plan.tree(), root_stride, subject, report);
    report.check();
    if analysis.scratch_points != plan.scratch_len() {
        report.push(
            "plan/scratch-mismatch",
            Severity::Error,
            subject,
            format!(
                "static scratch accounting ({} points) disagrees with compiled plan ({} points)",
                analysis.scratch_points,
                plan.scratch_len()
            ),
        );
    }
    report.check();
    if analysis.twiddle_points != plan.twiddle_points() {
        report.push(
            "plan/twiddle-mismatch",
            Severity::Error,
            subject,
            format!(
                "static twiddle accounting ({} points) disagrees with compiled plan ({} points)",
                analysis.twiddle_points,
                plan.twiddle_points()
            ),
        );
    }
    analysis
}

// ---------------------------------------------------------------------
// WHT
// ---------------------------------------------------------------------

/// Scratch requirement of a WHT subtree — mirror of the executor's
/// `scratch_need` (a reorg node reserves its size even when the runtime
/// stride turns out to be 1).
fn wht_need(tree: &Tree) -> usize {
    let own = if tree.reorg() { tree.size() } else { 0 };
    match tree {
        Tree::Leaf { .. } => own,
        Tree::Split { left, right, .. } => own + wht_need(left).max(wht_need(right)),
    }
}

struct WhtWalk<'a> {
    data_len: usize,
    scratch_len: usize,
    subject: &'a str,
    report: &'a mut AnalysisReport,
    accesses: u64,
    leaves: Vec<LeafFamily>,
}

impl WhtWalk<'_> {
    fn region_len(&self, region: Region) -> usize {
        match region {
            Region::Data => self.data_len,
            Region::Scratch => self.scratch_len,
            _ => 0,
        }
    }

    fn prove_fits(&mut self, what: &str, set: AccessSet) {
        self.report.check();
        let buf_len = self.region_len(set.region);
        if let Err(e) = StridedView::try_new(set.base, set.stride.max(1), set.len, buf_len) {
            self.report.push(
                "plan/out-of-bounds",
                Severity::Error,
                self.subject,
                format!(
                    "{what}: view (base {}, stride {}, len {}) exceeds {} region of {} points: {e}",
                    set.base,
                    set.stride,
                    set.len,
                    set.region.label(),
                    buf_len
                ),
            );
        }
    }

    fn walk(&mut self, node: &Tree, view: AccessSet, scr_off: usize, calls: u64) {
        let n = node.size();
        self.prove_fits("node view", view);
        if node.reorg() && view.stride > 1 {
            // Gather to unit-stride scratch, transform there, scatter
            // back — the in-place WHT's Dr.
            let gathered = AccessSet::new(Region::Scratch, scr_off, 1, n);
            self.report.check();
            if scr_off.checked_add(n).map(|e| e > self.scratch_len) != Some(false) {
                self.report.push(
                    "plan/scratch-overflow",
                    Severity::Error,
                    self.subject,
                    format!(
                        "wht reorg: scratch interval [{scr_off}, {scr_off}+{n}) exceeds declared \
                         scratch of {} points",
                        self.scratch_len
                    ),
                );
            }
            self.report.check();
            if view.intersects(&gathered) {
                self.report.push(
                    "plan/aliasing",
                    Severity::Error,
                    self.subject,
                    format!(
                        "wht reorg gather: view (base {}, stride {}, len {} in {}) aliases its \
                         scratch interval [{scr_off}, {scr_off}+{n})",
                        view.base,
                        view.stride,
                        view.len,
                        view.region.label()
                    ),
                );
            }
            self.leaves.push(LeafFamily {
                calls,
                n,
                read: view,
                write: gathered,
                reorg: true,
            });
            self.accesses += calls * 4 * n as u64;
            self.walk_body(node, gathered, scr_off + n, calls);
        } else {
            self.walk_body(node, view, scr_off, calls);
        }
    }

    fn walk_body(&mut self, node: &Tree, view: AccessSet, scr_off: usize, calls: u64) {
        match node {
            Tree::Leaf { n, .. } => {
                // In-place read-modify-write: src and dst coincide by
                // design, so only bounds matter (proved by the caller).
                self.leaves.push(LeafFamily {
                    calls,
                    n: *n,
                    read: view,
                    write: view,
                    reorg: false,
                });
                self.accesses += calls * 2 * *n as u64;
            }
            Tree::Split { left, right, .. } => {
                let n1 = left.size();
                let n2 = right.size();
                // Both stage unions equal this node's view (already
                // proved in-bounds), so descending through the
                // highest-base instance of each stage covers all.
                let i1 = n1 - 1;
                self.walk(
                    right,
                    AccessSet::new(
                        view.region,
                        view.base + i1 * n2 * view.stride,
                        view.stride,
                        n2,
                    ),
                    scr_off,
                    calls * n1 as u64,
                );
                let i2 = n2 - 1;
                self.walk(
                    left,
                    AccessSet::new(
                        view.region,
                        view.base + i2 * view.stride,
                        n2 * view.stride,
                        n1,
                    ),
                    scr_off,
                    calls * n2 as u64,
                );
            }
        }
    }
}

/// Statically analyzes a WHT tree executed in place on a view of
/// `root_stride`.
pub fn analyze_wht_tree(
    tree: &Tree,
    root_stride: usize,
    subject: &str,
    report: &mut AnalysisReport,
) -> StaticAnalysis {
    let n = tree.size();
    let scratch = wht_need(tree);
    report.subject();
    let mut walk = WhtWalk {
        data_len: (n - 1) * root_stride + 1,
        scratch_len: scratch,
        subject,
        report,
        accesses: 0,
        leaves: Vec::new(),
    };
    walk.walk(tree, AccessSet::new(Region::Data, 0, root_stride, n), 0, 1);
    StaticAnalysis {
        n,
        accesses: walk.accesses,
        scratch_points: scratch,
        twiddle_points: 0,
        leaves: walk.leaves,
    }
}

/// [`analyze_wht_tree`] plus the scratch-accounting proof against the
/// compiled plan.
pub fn analyze_wht_plan(
    plan: &ddl_core::WhtPlan,
    root_stride: usize,
    subject: &str,
    report: &mut AnalysisReport,
) -> StaticAnalysis {
    let analysis = analyze_wht_tree(plan.tree(), root_stride, subject, report);
    report.check();
    if analysis.scratch_points != plan.scratch_len() {
        report.push(
            "plan/scratch-mismatch",
            Severity::Error,
            subject,
            format!(
                "static scratch accounting ({} points) disagrees with compiled plan ({} points)",
                analysis.scratch_points,
                plan.scratch_len()
            ),
        );
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddl_core::grammar::parse;
    use ddl_core::{DftPlan, WhtPlan};
    use ddl_num::Direction;

    fn brute_intersect(b1: usize, s1: usize, n1: usize, b2: usize, s2: usize, n2: usize) -> bool {
        let a: std::collections::HashSet<usize> = (0..n1).map(|i| b1 + i * s1).collect();
        (0..n2).any(|j| a.contains(&(b2 + j * s2)))
    }

    #[test]
    fn progression_intersection_is_exact() {
        // Exhaustive small-parameter sweep against brute force.
        for b1 in 0..4 {
            for s1 in 0..5 {
                for n1 in 1..5 {
                    for b2 in 0..6 {
                        for s2 in 0..5 {
                            for n2 in 1..5 {
                                assert_eq!(
                                    progressions_intersect(b1, s1, n1, b2, s2, n2),
                                    brute_intersect(b1, s1, n1, b2, s2, n2),
                                    "({b1},{s1},{n1}) vs ({b2},{s2},{n2})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_progressions_do_not_intersect() {
        // Even indices vs odd indices, large and offset.
        assert!(!progressions_intersect(0, 2, 1000, 1, 2, 1000));
        assert!(progressions_intersect(0, 3, 100, 27, 9, 10));
        assert!(!progressions_intersect(0, 4, 100, 2, 4, 100));
    }

    #[test]
    fn golden_dft_trees_prove_clean() {
        for expr in [
            "ct(4,4)",
            "ct(2^5, 2^5)",
            "ctddl(ctddl(8, 8), ct(8, 8))",
            "ct(ddl(8), ct(8, 4))",
            "ct(ctddl(4, 8), ddl(8))",
        ] {
            let tree = parse(expr).unwrap();
            let plan = DftPlan::new(tree, Direction::Forward).unwrap();
            let mut report = AnalysisReport::new();
            for stride in [1usize, 2, 7] {
                let _ = analyze_dft_plan(&plan, stride, expr, &mut report);
            }
            assert!(report.passes(), "{expr}: {:?}", report.findings);
            assert!(report.checks > 0);
        }
    }

    #[test]
    fn access_counts_match_traced_simulation() {
        use ddl_cachesim::CacheConfig;
        for expr in ["ct(4,4)", "ct(ddl(4),4)", "ctddl(ctddl(8,8), ct(8,8))"] {
            let tree = parse(expr).unwrap();
            let plan = DftPlan::new(tree, Direction::Forward).unwrap();
            let mut report = AnalysisReport::new();
            let analysis = analyze_dft_plan(&plan, 1, expr, &mut report);
            let stats = ddl_core::traced::simulate_dft(&plan, CacheConfig::paper_default(64));
            assert_eq!(
                analysis.accesses, stats.accesses,
                "{expr}: static access count disagrees with the traced executor"
            );
        }
    }

    #[test]
    fn wht_access_counts_match_traced_simulation() {
        use ddl_cachesim::CacheConfig;
        for expr in ["split(8, 8)", "splitddl(splitddl(8, 8), split(4, 4))"] {
            let tree = parse(expr).unwrap();
            let plan = WhtPlan::new(tree).unwrap();
            let mut report = AnalysisReport::new();
            let analysis = analyze_wht_plan(&plan, 1, expr, &mut report);
            assert!(report.passes(), "{expr}: {:?}", report.findings);
            let stats = ddl_core::traced::simulate_wht(&plan, CacheConfig::paper_default(64));
            assert_eq!(analysis.accesses, stats.accesses, "{expr}");
        }
    }

    #[test]
    fn corrupt_tree_is_caught() {
        // A hand-built tree whose reorg-free split would be fine, but
        // analyzed at a stride so large the input view cannot fit the
        // minimal buffer for a *smaller* declared length: emulate by
        // analyzing the tree against a mismatching plan via the tree
        // API with an oversized stride on a short input. Easiest real
        // corruption: scratch accounting disagreement via a doctored
        // tree is not constructible through the public API, so check
        // the out-of-bounds detector directly instead.
        let mut report = AnalysisReport::new();
        let tree = parse("ct(4,4)").unwrap();
        // The analyzer sizes buffers from the tree itself, so a clean
        // tree proves clean; force a violation through the raw walk by
        // analyzing a view the executor would reject.
        let analysis = analyze_dft_tree(&tree, 3, "ok", &mut report);
        assert!(report.passes());
        assert_eq!(analysis.n, 16);
        // Aliasing detector fires on overlapping progressions.
        let a = AccessSet::new(Region::Scratch, 0, 2, 8);
        let b = AccessSet::new(Region::Scratch, 4, 3, 4);
        assert!(a.intersects(&b));
        let c = AccessSet::new(Region::Scratch, 1, 2, 8);
        assert!(!a.intersects(&c));
    }
}
