//! Closed-form cache-set conflict degrees for strided access families.
//!
//! The paper's Case III analysis is the heart of the DDL argument: an
//! `n`-point leaf reading at stride `s` touches line addresses
//! `base + i·s`, and when the stride is a multiple of the line size
//! those lines land in only `S / gcd(S, s/L)` of the cache's `S` sets.
//! Once the number of lines per set exceeds the associativity the leaf
//! thrashes — every iteration of the surrounding loop nest evicts the
//! lines the next one needs.
//!
//! This module computes that degree *statically and exactly* from the
//! cache geometry, in closed form for the two regimes that matter
//! (dense accesses, and line-aligned strides) with an exact enumeration
//! fallback for irregular geometries. It is the static counterpart to
//! `ddl-cachesim`: the tests in this crate check that ranking plans by
//! the static conflict summary agrees with ranking them by simulated
//! non-compulsory misses.

use crate::access::StaticAnalysis;
use crate::findings::{AnalysisReport, Severity};
use ddl_cachesim::CacheConfig;
use std::collections::{HashMap, HashSet};

/// Cache geometry the static analysis needs: line size, set count and
/// associativity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct CacheGeometry {
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Number of sets.
    pub sets: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheGeometry {
    /// Derives the geometry from a `ddl-cachesim` configuration, so the
    /// static analyzer and the simulator always describe the same cache.
    pub fn from_config(config: &CacheConfig) -> CacheGeometry {
        CacheGeometry {
            line_bytes: config.line_bytes,
            sets: config.sets(),
            associativity: config.associativity,
        }
    }
}

/// Conflict profile of one strided access family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct ConflictInfo {
    /// Distinct cache lines the family touches.
    pub lines: usize,
    /// Distinct sets those lines occupy.
    pub distinct_sets: usize,
    /// Maximum number of distinct lines mapping to one set — the
    /// family thrashes when this exceeds the associativity.
    pub degree: usize,
}

impl ConflictInfo {
    /// True when the family's layout — not its size — causes set
    /// conflicts (paper Case III).
    ///
    /// Touching `L` distinct lines on `S` sets forces a degree of at
    /// least `ceil(L/S)` no matter how the lines are laid out (a dense
    /// walk achieves exactly that packing bound, and its misses are
    /// plain capacity misses). A family is pathological only when its
    /// degree exceeds both that unavoidable bound and the
    /// associativity: the excess is line aliasing induced by the
    /// stride, the thrashing the DDL reorganizations exist to remove.
    #[must_use]
    pub fn is_pathological(&self, geom: &CacheGeometry) -> bool {
        let packing = self.lines.div_ceil(geom.sets.max(1)).max(1);
        self.degree > geom.associativity.max(packing)
    }
}

/// Computes the exact conflict profile of the access family
/// `{ base_bytes + i·stride_bytes : 0 <= i < n }`, each access
/// `point_bytes` wide.
///
/// Uses closed forms for the dense regime (`stride <= line`) and the
/// line-aligned strided regime (`stride % line == 0`, accesses not
/// straddling lines); falls back to exact enumeration otherwise. The
/// two paths provably agree (see the tests).
pub fn conflict_degree(
    geom: &CacheGeometry,
    base_bytes: usize,
    stride_bytes: usize,
    point_bytes: usize,
    n: usize,
) -> ConflictInfo {
    if n == 0 || point_bytes == 0 {
        return ConflictInfo {
            lines: 0,
            distinct_sets: 0,
            degree: 0,
        };
    }
    let line = geom.line_bytes;
    let sets = geom.sets;
    if stride_bytes <= line {
        // Dense regime: consecutive accesses advance by at most one
        // line, so every line between the first and last byte touched
        // is touched, and touched lines are consecutive. Consecutive
        // lines round-robin across sets.
        let first = base_bytes / line;
        let last = (base_bytes + (n - 1) * stride_bytes + point_bytes - 1) / line;
        let lines = last - first + 1;
        return ConflictInfo {
            lines,
            distinct_sets: lines.min(sets),
            degree: lines.div_ceil(sets),
        };
    }
    if stride_bytes.is_multiple_of(line) && (base_bytes % line) + point_bytes <= line {
        // Line-aligned strided regime (the paper's pathological case):
        // each access touches exactly one line, line indices form the
        // progression first + i·step with step = stride/line >= 1, so
        // the occupied sets are the residues of that progression —
        // `sets / gcd(step, sets)` of them, filled evenly.
        let step = stride_bytes / line;
        let period = sets / gcd(step % sets.max(1), sets).max(1);
        let period = period.max(1);
        return ConflictInfo {
            lines: n,
            distinct_sets: n.min(period),
            degree: n.div_ceil(period),
        };
    }
    enumerate_conflicts(geom, base_bytes, stride_bytes, point_bytes, n)
}

/// Exact enumeration of lines-per-set for irregular geometries.
fn enumerate_conflicts(
    geom: &CacheGeometry,
    base_bytes: usize,
    stride_bytes: usize,
    point_bytes: usize,
    n: usize,
) -> ConflictInfo {
    let mut per_set: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut all_lines: HashSet<usize> = HashSet::new();
    for i in 0..n {
        let lo = (base_bytes + i * stride_bytes) / geom.line_bytes;
        let hi = (base_bytes + i * stride_bytes + point_bytes - 1) / geom.line_bytes;
        for l in lo..=hi {
            all_lines.insert(l);
            per_set.entry(l % geom.sets).or_default().insert(l);
        }
    }
    ConflictInfo {
        lines: all_lines.len(),
        distinct_sets: per_set.len(),
        degree: per_set.values().map(HashSet::len).max().unwrap_or(0),
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The conflict-heaviest family of a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct WorstFamily {
    /// Points per execution.
    pub n: usize,
    /// Stride in points.
    pub stride: usize,
    /// Its conflict profile.
    pub info: ConflictInfo,
}

/// Plan-level conflict summary: the worst per-family degree plus an
/// access-weighted count of pathological traffic, the static analogue of
/// conflict misses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct ConflictSummary {
    /// Largest conflict degree over every access family.
    pub max_degree: usize,
    /// `Σ calls·n` over the read/write sets that are pathological
    /// (degree beyond both the associativity and the dense packing
    /// bound): the number of point accesses made through a thrashing
    /// pattern. Ranking plans by this weight matches ranking them by
    /// simulated non-compulsory misses.
    pub pathological_accesses: u64,
    /// The heaviest family: pathological families outrank benign ones,
    /// then higher degree wins. `None` only for plans with no families.
    pub worst: Option<WorstFamily>,
}

/// Computes the conflict summary of a statically analyzed plan under a
/// cache geometry.
///
/// Region base addresses are taken as 0: for line-multiple strides the
/// degree is invariant under shifting the whole family (all line indices
/// shift by a constant, permuting sets), so a representative base is
/// exact for the regimes that matter.
pub fn conflict_summary(
    analysis: &StaticAnalysis,
    geom: &CacheGeometry,
    point_bytes: usize,
) -> ConflictSummary {
    let mut summary = ConflictSummary::default();
    for family in &analysis.leaves {
        for set in [&family.read, &family.write] {
            let info = conflict_degree(
                geom,
                set.base * point_bytes,
                set.stride * point_bytes,
                point_bytes,
                set.len,
            );
            summary.max_degree = summary.max_degree.max(info.degree);
            let outranks = match summary.worst {
                None => true,
                Some(w) => {
                    (info.is_pathological(geom), info.degree)
                        > (w.info.is_pathological(geom), w.info.degree)
                }
            };
            if outranks {
                summary.worst = Some(WorstFamily {
                    n: family.n,
                    stride: set.stride,
                    info,
                });
            }
            if info.is_pathological(geom) {
                summary.pathological_accesses += family.calls * set.len as u64;
            }
        }
    }
    summary
}

/// [`conflict_summary`] that also reports pathological families as
/// `warning`-level findings (they are performance hazards, not
/// correctness errors, so they never gate CI).
pub fn conflict_findings(
    analysis: &StaticAnalysis,
    geom: &CacheGeometry,
    point_bytes: usize,
    subject: &str,
    report: &mut AnalysisReport,
) -> ConflictSummary {
    let summary = conflict_summary(analysis, geom, point_bytes);
    report.check();
    if let Some(worst) = summary.worst {
        if worst.info.is_pathological(geom) {
            report.push(
                "plan/cache-conflict",
                Severity::Warning,
                subject,
                format!(
                    "leaf family (n {}, stride {}) maps {} lines onto {} sets (degree {}, \
                     associativity {}): Case III thrashing; {} accesses through pathological \
                     patterns",
                    worst.n,
                    worst.stride,
                    worst.info.lines,
                    worst.info.distinct_sets,
                    worst.info.degree,
                    geom.associativity,
                    summary.pathological_accesses
                ),
            );
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(capacity: usize, line: usize, assoc: usize) -> CacheGeometry {
        CacheGeometry::from_config(&CacheConfig {
            capacity_bytes: capacity,
            line_bytes: line,
            associativity: assoc,
        })
    }

    #[test]
    fn closed_forms_match_enumeration() {
        let geometries = [
            geom(16 * 1024, 64, 1),
            geom(16 * 1024, 64, 2),
            geom(512 * 1024, 32, 1),
            geom(4 * 1024, 16, 4),
        ];
        for g in geometries {
            for &stride in &[8usize, 16, 32, 64, 96, 128, 256, 1024, 4096, 16384] {
                for &n in &[1usize, 2, 7, 16, 64, 257] {
                    for &base in &[0usize, 60, 64, 4096] {
                        let fast = conflict_degree(&g, base, stride, 16, n);
                        let slow = enumerate_conflicts(&g, base, stride, 16, n);
                        assert_eq!(fast, slow, "geom {g:?} base {base} stride {stride} n {n}");
                    }
                }
            }
        }
    }

    #[test]
    fn contiguous_access_is_benign() {
        // 16-byte points at unit stride in a 16KB direct-mapped cache:
        // 64 points span 16 lines over 256 sets — degree 1.
        let g = geom(16 * 1024, 64, 1);
        let info = conflict_degree(&g, 0, 16, 16, 64);
        assert_eq!(info.lines, 16);
        assert_eq!(info.degree, 1);
        assert!(!info.is_pathological(&g));
    }

    #[test]
    fn power_of_two_stride_is_pathological() {
        // The paper's Case III: stride 2^k points. 16KB direct-mapped,
        // 64B lines => 256 sets. Stride 1024 points = 16KB = exactly the
        // cache size: every access maps to the *same* set.
        let g = geom(16 * 1024, 64, 1);
        let info = conflict_degree(&g, 0, 1024 * 16, 16, 16);
        assert_eq!(info.distinct_sets, 1);
        assert_eq!(info.degree, 16);
        assert!(info.is_pathological(&g));
        // Associativity absorbs small degrees.
        let g8 = geom(16 * 1024 * 16, 64, 16);
        let info8 = conflict_degree(&g8, 0, 1024 * 16, 16, 16);
        assert!(!info8.is_pathological(&g8));
    }

    #[test]
    fn dense_capacity_wrap_is_not_pathological() {
        // A dense walk over 4x the cache touches 1024 consecutive lines
        // on 256 sets: degree 4, but that is the packing bound — pure
        // capacity traffic, not Case III conflicts.
        let g = geom(16 * 1024, 64, 1);
        let info = conflict_degree(&g, 0, 16, 16, 4096);
        assert_eq!(info.degree, 4);
        assert!(!info.is_pathological(&g));
        // The same degree from a *strided* family touching only 64
        // lines IS pathological: the packing bound there is 1.
        let strided = conflict_degree(&g, 0, 64 * 16, 16, 64);
        assert_eq!(strided.lines, 64);
        assert_eq!(strided.degree, 4);
        assert!(strided.is_pathological(&g));
    }

    #[test]
    fn degree_is_base_invariant_for_line_multiple_strides() {
        let g = geom(16 * 1024, 64, 1);
        for base in [0usize, 64, 128, 8192] {
            let info = conflict_degree(&g, base, 2048, 16, 64);
            assert_eq!(info.degree, conflict_degree(&g, 0, 2048, 16, 64).degree);
        }
    }
}
