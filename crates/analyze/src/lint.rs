//! Workspace source lints (`ddl-lint`).
//!
//! Repo invariants, enforced mechanically so they survive future PRs:
//!
//! * **`lint/no-panics`** — library code must not call
//!   `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
//!   outside `#[cfg(test)]` modules: fallible operations route through
//!   `DdlError` (the try-first rule). Documented panicking wrappers over
//!   `try_*` functions carry an explicit allow marker (below).
//! * **`lint/no-std-time`** — pure planning code (the planner, cost
//!   model, tree/grammar, wisdom, JSON, and all of `ddl-num`,
//!   `ddl-layout`, `ddl-cachesim`) must not read clocks: planning is a
//!   deterministic function of its inputs. Measurement lives in
//!   `measure.rs`/`parallel.rs`/`obs.rs`, which are exempt by design.
//! * **`lint/forbid-unsafe`** — every workspace crate root must carry
//!   `#![forbid(unsafe_code)]`.
//! * **`lint/no-bare-lock`** / **`lint/no-unbounded-queue`** — executor
//!   and scheduler hot paths (`parallel.rs`, `scheduler.rs`,
//!   `engine.rs`, `faultpoint.rs`, all of `ddl-serve`) must not unwrap
//!   lock results (one poisoned lock would cascade into a dead
//!   scheduler) and must not construct unbounded channels (overload
//!   must shed with `DdlError::Overloaded`, not grow memory).
//! * **`lint/dead-allow`** — suppressions must stay earned: an allow
//!   marker that no longer sits on or directly above a banned token, or
//!   that names an unknown rule, is itself an error, as is an
//!   [`UNSAFE_AUDITED`] entry whose file is gone or no longer contains
//!   `unsafe` code. Without this, allow-lists only ever grow.
//!
//! A finding is suppressed by a marker on the same line or the line
//! directly above:
//!
//! ```text
//! // ddl-lint: allow(no-panics): documented panicking wrapper over try_execute
//! ```
//!
//! The scanner is deliberately token-based — but it scrubs string/char
//! literals and comments with a tiny lexer first, so tokens inside
//! strings or docs never fire and `#[cfg(test)]` modules are excluded by
//! an accurate brace count. The point is an `O(source)` gate with zero
//! dependencies, not a parser.

use crate::findings::{AnalysisReport, Severity};
use std::fs;
use std::path::{Path, PathBuf};

/// Rule id for dead-suppression findings. Always on: a marker that
/// suppresses nothing is wrong in every file class.
pub const RULE_DEAD_ALLOW: &str = "lint/dead-allow";

/// Which rule families to apply to one source file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSet {
    /// Apply `lint/no-panics`.
    pub no_panics: bool,
    /// Apply `lint/no-std-time`.
    pub no_std_time: bool,
    /// Apply the executor hot-path rules `lint/no-bare-lock` and
    /// `lint/no-unbounded-queue`.
    pub exec_hot_path: bool,
    /// Apply `lint/no-unsafe`: off only for the audited SIMD module
    /// ([`UNSAFE_AUDITED`]).
    pub no_unsafe: bool,
}

/// Banned panic-family tokens, stored in halves so this file does not
/// flag itself when scanned.
fn panic_tokens() -> Vec<String> {
    [
        (".unw", "rap()"),
        (".exp", "ect(\""),
        ("pan", "ic!("),
        ("unreach", "able!"),
        ("to", "do!("),
        ("unimple", "mented!("),
    ]
    .iter()
    .map(|(a, b)| format!("{a}{b}"))
    .collect()
}

fn std_time_token() -> String {
    ["std::", "time"].concat()
}

/// The `unsafe` keyword, stored in halves so this file does not flag
/// itself. Matched whole-word, so the `unsafe_code` lint name inside
/// `#![deny(unsafe_code)]` / `#[allow(unsafe_code)]` attributes does not
/// fire.
fn unsafe_token() -> String {
    ["uns", "afe"].concat()
}

/// The explicit allow-list of audited modules permitted to contain
/// `unsafe`: exactly the SIMD backend's arch dispatch module. Everything
/// else in the workspace is scanned by `lint/no-unsafe` and every other
/// crate root must carry `#![forbid(unsafe_code)]`.
pub const UNSAFE_AUDITED: &[&str] = &["crates/backend-simd/src/arch.rs"];

/// Crate roots that deny rather than forbid `unsafe_code`: `forbid`
/// cannot be overridden per-module, so the one crate hosting an audited
/// unsafe module uses `deny` at the root plus a scoped `allow` on that
/// module. Pinned to exactly the SIMD backend.
pub const DENY_UNSAFE_ROOTS: &[&str] = &["crates/backend-simd/src/lib.rs"];

/// Whether `rel` (workspace-relative, `/`-separated) is on the audited
/// unsafe allow-list.
pub fn is_unsafe_audited(rel: &str) -> bool {
    UNSAFE_AUDITED.contains(&rel)
}

/// Whole-word occurrences of `tok` in `code` (neither neighbor is an
/// identifier character).
fn contains_word(code: &str, tok: &str) -> bool {
    let bytes = code.as_bytes();
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    code.match_indices(tok).any(|(pos, _)| {
        let before_ok = pos == 0 || !ident(bytes[pos - 1]);
        let after = pos + tok.len();
        let after_ok = after >= bytes.len() || !ident(bytes[after]);
        before_ok && after_ok
    })
}

/// Banned lock idioms in executor hot paths: a panicking worker poisons
/// the lock, and a bare unwrap turns the *next* worker's lock into a
/// second panic — one fault cascades into a dead scheduler. Hot paths
/// must recover poison (`unwrap_or_else(PoisonError::into_inner)`) or
/// route a typed error.
fn bare_lock_tokens() -> Vec<String> {
    [(".lock().unw", "rap()"), (".lock().exp", "ect(")]
        .iter()
        .map(|(a, b)| format!("{a}{b}"))
        .collect()
}

/// Banned queue constructors in executor hot paths: an unbounded channel
/// turns overload into unbounded memory growth instead of typed
/// backpressure (`DdlError::Overloaded`). Use `mpsc::sync_channel` or a
/// capacity-checked `VecDeque`.
fn unbounded_queue_tokens() -> Vec<String> {
    // No trailing paren: `mpsc::channel::<T>()` must match too. The
    // bounded `mpsc::sync_channel` never contains this substring.
    [("mpsc::chan", "nel"), ("::unbo", "unded(")]
        .iter()
        .map(|(a, b)| format!("{a}{b}"))
        .collect()
}

fn allow_marker(rule: &str) -> String {
    // rule is "lint/<name>"; the marker spells just the short name.
    let short = rule.rsplit('/').next().unwrap_or(rule);
    format!("ddl-lint: allow({short})")
}

/// The banned tokens a marker for `short` would suppress, plus whether
/// they match whole-word. `None` for rule names no marker can refer to
/// (including `forbid-unsafe`, whose crate-root check honors no
/// markers at all — an allow for it is dead by construction).
fn rule_tokens(short: &str) -> Option<(Vec<String>, bool)> {
    match short {
        "no-panics" => Some((panic_tokens(), false)),
        "no-std-time" => Some((vec![std_time_token()], false)),
        "no-bare-lock" => Some((bare_lock_tokens(), false)),
        "no-unbounded-queue" => Some((unbounded_queue_tokens(), false)),
        "no-unsafe" => Some((vec![unsafe_token()], true)),
        _ => None,
    }
}

/// Lexer state carried across lines while scrubbing.
enum ScrubState {
    Normal,
    Str,
    RawStr(usize),
    BlockComment(usize),
}

/// Returns the source line by line with string/char-literal contents and
/// comments blanked out: what remains is pure code text, safe for token
/// matching and brace counting. Shared with the certificate passes'
/// tokenizer ([`crate::tok`]).
pub(crate) fn scrub(source: &str) -> Vec<String> {
    scrub_and_comments(source).0
}

/// [`scrub`], but additionally captures each line's `//` line-comment
/// text (including the slashes, so callers can tell `//` from `///` and
/// `//!`; empty when the line has none). Only comments the lexer sees in
/// code position count — a `//` inside a string literal or block comment
/// is not a comment.
pub(crate) fn scrub_and_comments(source: &str) -> (Vec<String>, Vec<String>) {
    let mut state = ScrubState::Normal;
    let mut out = Vec::new();
    let mut comments = Vec::new();
    for line in source.lines() {
        let b = line.as_bytes();
        let mut res = String::with_capacity(b.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match state {
                ScrubState::Normal => {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'/') {
                        // Line comment: rest of line is prose. `//` is
                        // ASCII, so `i` is a char boundary.
                        comment = line.get(i..).unwrap_or("").to_string();
                        break;
                    }
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        state = ScrubState::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    // Raw string start: r"..." / r#"..."# (optionally
                    // after a b). The r must not continue an identifier.
                    if b[i] == b'r'
                        && !res
                            .chars()
                            .last()
                            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        let mut j = i + 1;
                        let mut hashes = 0;
                        while b.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&b'"') {
                            state = ScrubState::RawStr(hashes);
                            res.push('"');
                            i = j + 1;
                            continue;
                        }
                    }
                    if b[i] == b'"' {
                        state = ScrubState::Str;
                        res.push('"');
                        i += 1;
                        continue;
                    }
                    if b[i] == b'\'' {
                        // Char literal or lifetime.
                        if b.get(i + 1) == Some(&b'\\') {
                            // Escaped char: skip to the closing quote.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != b'\'' {
                                j += 1;
                            }
                            i = j + 1;
                            continue;
                        }
                        if b.get(i + 2) == Some(&b'\'') {
                            i += 3; // plain 'x'
                            continue;
                        }
                        res.push('\''); // lifetime
                        i += 1;
                        continue;
                    }
                    res.push(b[i] as char);
                    i += 1;
                }
                ScrubState::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        state = ScrubState::Normal;
                        res.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                ScrubState::RawStr(hashes) => {
                    if b[i] == b'"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&c| c == b'#')
                            .count()
                            == hashes
                    {
                        state = ScrubState::Normal;
                        res.push('"');
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                ScrubState::BlockComment(depth) => {
                    if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        state = if depth == 1 {
                            ScrubState::Normal
                        } else {
                            ScrubState::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        state = ScrubState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(res);
        comments.push(comment);
    }
    (out, comments)
}

/// Which lines belong to `#[cfg(test)]` items, determined by brace
/// counting over scrubbed code. Shared with the certificate passes so
/// they skip test-only code the same way the lints do.
pub(crate) fn test_module_lines(scrubbed: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; scrubbed.len()];
    let mut i = 0;
    while i < scrubbed.len() {
        if scrubbed[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut started = false;
            let mut j = i;
            while j < scrubbed.len() {
                in_test[j] = true;
                for c in scrubbed[j].bytes() {
                    match c {
                        b'{' => {
                            depth += 1;
                            started = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if started && depth <= 0 {
                    break;
                }
                // An attribute on a braceless item (`#[cfg(test)] use x;`)
                // ends at the semicolon.
                if !started && scrubbed[j].contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Lints one source file's content. `label` is the path reported in
/// findings; pure so tests can feed strings.
pub fn lint_source(label: &str, source: &str, rules: RuleSet, report: &mut AnalysisReport) {
    report.subject();
    let (scrubbed, comments) = scrub_and_comments(source);
    let in_test = test_module_lines(&scrubbed);
    let panic_toks = panic_tokens();
    let time_tok = std_time_token();
    let unsafe_tok = unsafe_token();
    let lock_toks = bare_lock_tokens();
    let queue_toks = unbounded_queue_tokens();
    let raw: Vec<&str> = source.lines().collect();
    for (idx, code) in scrubbed.iter().enumerate() {
        report.check();
        if in_test[idx] {
            continue;
        }
        // Allow markers live in comments, so they are matched against
        // the raw line (same line or the one directly above).
        let allowed = |rule: &str| {
            let marker = allow_marker(rule);
            raw[idx].contains(&marker) || (idx > 0 && raw[idx - 1].contains(&marker))
        };
        if rules.no_panics {
            for tok in &panic_toks {
                if code.contains(tok.as_str()) && !allowed("lint/no-panics") {
                    report.push(
                        "lint/no-panics",
                        Severity::Error,
                        &format!("{label}:{}", idx + 1),
                        format!(
                            "banned token `{tok}` in library code: route errors through \
                             DdlError (try-first rule), or add `// {}: <reason>`",
                            allow_marker("lint/no-panics")
                        ),
                    );
                }
            }
        }
        if rules.exec_hot_path {
            for tok in &lock_toks {
                if code.contains(tok.as_str()) && !allowed("lint/no-bare-lock") {
                    report.push(
                        "lint/no-bare-lock",
                        Severity::Error,
                        &format!("{label}:{}", idx + 1),
                        format!(
                            "`{tok}` in an executor hot path: one poisoned lock must not \
                             cascade — recover with unwrap_or_else(PoisonError::into_inner) \
                             or route a typed error, or add `// {}: <reason>`",
                            allow_marker("lint/no-bare-lock")
                        ),
                    );
                }
            }
            for tok in &queue_toks {
                if code.contains(tok.as_str()) && !allowed("lint/no-unbounded-queue") {
                    report.push(
                        "lint/no-unbounded-queue",
                        Severity::Error,
                        &format!("{label}:{}", idx + 1),
                        format!(
                            "`{tok}` in an executor hot path: unbounded queues turn overload \
                             into memory growth — use a bounded queue that sheds with \
                             DdlError::Overloaded, or add `// {}: <reason>`",
                            allow_marker("lint/no-unbounded-queue")
                        ),
                    );
                }
            }
        }
        if rules.no_unsafe && contains_word(code, unsafe_tok.as_str()) && !allowed("lint/no-unsafe")
        {
            report.push(
                "lint/no-unsafe",
                Severity::Error,
                &format!("{label}:{}", idx + 1),
                format!(
                    "`{unsafe_tok}` outside the audited SIMD module: all unsafe code \
                     lives in {} (see DESIGN.md §11)",
                    UNSAFE_AUDITED.join(", ")
                ),
            );
        }
        if rules.no_std_time && code.contains(time_tok.as_str()) && !allowed("lint/no-std-time") {
            report.push(
                "lint/no-std-time",
                Severity::Error,
                &format!("{label}:{}", idx + 1),
                format!(
                    "`{time_tok}` in pure planning code: plans must be a deterministic \
                     function of their inputs"
                ),
            );
        }
        // lint/dead-allow (always on): every allow marker in a real
        // `//` comment must still suppress something. Doc comments
        // (`///`, `//!`) and string literals are prose — markers there
        // never suppressed anything, so they are not checked either.
        let comment = comments[idx].as_str();
        if !comment.starts_with("///") && !comment.starts_with("//!") {
            let prefix = ["ddl-lint: ", "allow("].concat();
            for (pos, _) in comment.match_indices(&prefix) {
                let rest = &comment[pos + prefix.len()..];
                let Some(end) = rest.find(')') else {
                    continue;
                };
                let short = &rest[..end];
                let Some((toks, whole_word)) = rule_tokens(short) else {
                    report.push(
                        RULE_DEAD_ALLOW,
                        Severity::Error,
                        &format!("{label}:{}", idx + 1),
                        format!(
                            "allow marker names unknown rule `{short}`: it suppresses \
                             nothing and will rot silently"
                        ),
                    );
                    continue;
                };
                let live = [idx, idx + 1].iter().any(|&j| {
                    j < scrubbed.len()
                        && !in_test[j]
                        && toks.iter().any(|t| {
                            if whole_word {
                                contains_word(&scrubbed[j], t)
                            } else {
                                scrubbed[j].contains(t.as_str())
                            }
                        })
                });
                if !live {
                    report.push(
                        RULE_DEAD_ALLOW,
                        Severity::Error,
                        &format!("{label}:{}", idx + 1),
                        format!(
                            "dead allow marker for `{short}`: no banned token on this \
                             line or the one below — delete the marker"
                        ),
                    );
                }
            }
        }
    }
}

/// Checks one crate root for `#![forbid(unsafe_code)]`.
///
/// The roots pinned in [`DENY_UNSAFE_ROOTS`] (exactly the SIMD backend)
/// may use `#![deny(unsafe_code)]` instead: `forbid` cannot be
/// overridden, and that crate scopes an `#[allow(unsafe_code)]` onto its
/// single audited module.
pub fn lint_crate_root(label: &str, source: &str, report: &mut AnalysisReport) {
    report.subject();
    report.check();
    if DENY_UNSAFE_ROOTS.contains(&label) {
        if !source.contains("#![deny(unsafe_code)]") {
            report.push(
                "lint/forbid-unsafe",
                Severity::Error,
                label,
                "audited-unsafe crate root is missing #![deny(unsafe_code)]".to_string(),
            );
        }
        return;
    }
    if !source.contains("#![forbid(unsafe_code)]") {
        report.push(
            "lint/forbid-unsafe",
            Severity::Error,
            label,
            "crate root is missing #![forbid(unsafe_code)]".to_string(),
        );
    }
}

/// Path suffixes (relative to the workspace root, `/`-separated) of the
/// pure-planning files subject to `lint/no-std-time`.
const PURE_PLANNING: &[&str] = &[
    "crates/core/src/planner.rs",
    "crates/core/src/model.rs",
    "crates/core/src/tree.rs",
    "crates/core/src/grammar.rs",
    "crates/core/src/wisdom.rs",
    "crates/core/src/json.rs",
];

/// Crates whose entire source tree is subject to `lint/no-std-time`.
const PURE_PLANNING_CRATES: &[&str] = &["crates/num", "crates/layout", "crates/cachesim"];

fn is_pure_planning(rel: &str) -> bool {
    PURE_PLANNING.contains(&rel)
        || PURE_PLANNING_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("{c}/")))
}

/// Path suffixes of the executor/scheduler hot-path files subject to
/// `lint/no-bare-lock` and `lint/no-unbounded-queue`: code that keeps
/// running after a worker panics and that faces unbounded request
/// arrival.
const EXEC_HOT_PATH: &[&str] = &[
    "crates/core/src/parallel.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/faultpoint.rs",
];

/// Crates whose entire library source is an executor hot path.
const EXEC_HOT_PATH_CRATES: &[&str] = &["crates/serve"];

fn is_exec_hot_path(rel: &str) -> bool {
    EXEC_HOT_PATH.contains(&rel)
        || EXEC_HOT_PATH_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("{c}/")))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints the whole workspace rooted at `root`:
///
/// * `lint/no-panics` over every library source under `crates/*/src`
///   and `src/` (binaries under `bin/`, the machine-generated
///   `generated.rs`, and the vendored stand-ins are out of scope);
/// * `lint/no-std-time` over the pure-planning subset;
/// * `lint/forbid-unsafe` over every workspace crate root, vendored
///   stand-ins included.
pub fn lint_workspace(root: &Path, report: &mut AnalysisReport) -> std::io::Result<()> {
    // Library sources.
    let mut lib_dirs: Vec<PathBuf> = vec![root.join("src")];
    for entry in fs::read_dir(root.join("crates"))? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            lib_dirs.push(src);
        }
    }
    lib_dirs.sort();
    for dir in &lib_dirs {
        let mut files = Vec::new();
        collect_rs_files(dir, &mut files)?;
        for path in files {
            let rel = rel_label(root, &path);
            if rel.contains("/bin/") || rel.ends_with("generated.rs") {
                continue;
            }
            let source = fs::read_to_string(&path)?;
            let rules = RuleSet {
                no_panics: true,
                no_std_time: is_pure_planning(&rel),
                exec_hot_path: is_exec_hot_path(&rel),
                no_unsafe: !is_unsafe_audited(&rel),
            };
            lint_source(&rel, &source, rules, report);
        }
    }

    // Crate roots (including vendor: they are workspace members).
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for base in ["crates", "vendor"] {
        for entry in fs::read_dir(root.join(base))? {
            let lib = entry?.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    for path in roots {
        let rel = rel_label(root, &path);
        let source = fs::read_to_string(&path)?;
        lint_crate_root(&rel, &source, report);
    }

    // The unsafe allow-lists must stay earned too: an audited path that
    // vanished, or that no longer contains any real `unsafe` code, is a
    // dead suppression that would silently exempt a future rewrite.
    let tok = unsafe_token();
    for rel in UNSAFE_AUDITED {
        report.subject();
        report.check();
        match fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                let code = scrub(&src).join("\n");
                if !contains_word(&code, &tok) {
                    report.push(
                        RULE_DEAD_ALLOW,
                        Severity::Error,
                        rel,
                        format!(
                            "UNSAFE_AUDITED entry no longer contains any `{tok}` code: \
                             remove it from the allow-list"
                        ),
                    );
                }
            }
            Err(_) => report.push(
                RULE_DEAD_ALLOW,
                Severity::Error,
                rel,
                "UNSAFE_AUDITED entry does not exist on disk".to_string(),
            ),
        }
    }
    for rel in DENY_UNSAFE_ROOTS {
        report.subject();
        report.check();
        if !root.join(rel).is_file() {
            report.push(
                RULE_DEAD_ALLOW,
                Severity::Error,
                rel,
                "DENY_UNSAFE_ROOTS entry does not exist on disk".to_string(),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: RuleSet = RuleSet {
        no_panics: true,
        no_std_time: true,
        exec_hot_path: true,
        no_unsafe: true,
    };

    #[test]
    fn flags_panic_family_tokens() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].rule, "lint/no-panics");
        assert_eq!(report.findings[0].subject, "a.rs:2");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { Some(1).unwrap(); panic!(\"x\"); }\n\
                   }\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn code_after_test_module_is_still_linted() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].subject, "a.rs:5");
    }

    #[test]
    fn unbalanced_braces_in_test_strings_do_not_confuse_the_scanner() {
        // A test module full of unbalanced braces inside string and char
        // literals (as in the JSON parser's tests) must still end where
        // its real braces end.
        let src = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn t() { parse(\"{\\\"a\\\":\"); p(b'{'); q(r#\"}}}\"#); x.unwrap(); }\n\
                   }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert_eq!(report.error_count(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].subject, "a.rs:6");
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_previous_line() {
        let marker = allow_marker("lint/no-panics");
        let src = format!(
            "fn f() {{\n\
             \x20   // {marker}: documented wrapper\n\
             \x20   Some(1).unwrap();\n\
             \x20   panic!(\"boom\"); // {marker}: also fine\n\
             }}\n"
        );
        let mut report = AnalysisReport::new();
        lint_source("a.rs", &src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn comments_strings_and_docs_are_exempt() {
        let src = "//! Call .unwrap() at your peril; std::time is evil.\n\
                   /// let x = foo().unwrap();\n\
                   fn f() {} // panic!(\"not code\")\n\
                   fn g() -> &'static str { \".unwrap() and std::time inside a string\" }\n\
                   /* block comment: panic!(\"nope\") */\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn std_time_flagged_only_when_rule_enabled() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let mut report = AnalysisReport::new();
        lint_source(
            "crates/core/src/measure.rs",
            src,
            RuleSet {
                no_panics: true,
                no_std_time: false,
                exec_hot_path: false,
                no_unsafe: true,
            },
            &mut report,
        );
        assert!(report.passes());
        let mut report = AnalysisReport::new();
        lint_source("crates/core/src/planner.rs", src, ALL, &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].rule, "lint/no-std-time");
    }

    #[test]
    fn parser_expect_method_is_not_flagged() {
        // json.rs has a parser method literally named `expect`; the
        // token requires a string-literal argument so it stays exempt.
        let src = "fn f(p: &mut P) -> R {\n    p.expect(b'{')\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn crate_root_lint_requires_forbid_unsafe() {
        let mut report = AnalysisReport::new();
        lint_crate_root(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\n",
            &mut report,
        );
        assert!(report.passes());
        lint_crate_root("crates/y/src/lib.rs", "pub mod a;\n", &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].rule, "lint/forbid-unsafe");
    }

    #[test]
    fn deny_unsafe_root_carve_out_is_pinned_to_the_simd_backend() {
        // The audited crate root satisfies the rule with deny.
        let deny = "#![deny(unsafe_code)]\npub mod arch;\n";
        let mut report = AnalysisReport::new();
        lint_crate_root("crates/backend-simd/src/lib.rs", deny, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
        // ...and fails without it.
        let mut report = AnalysisReport::new();
        lint_crate_root(
            "crates/backend-simd/src/lib.rs",
            "pub mod arch;\n",
            &mut report,
        );
        assert_eq!(report.error_count(), 1);
        // Any other crate root with deny instead of forbid still fails:
        // the carve-out does not generalize.
        let mut report = AnalysisReport::new();
        lint_crate_root("crates/core/src/lib.rs", deny, &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].rule, "lint/forbid-unsafe");
    }

    #[test]
    fn unsafe_token_flagged_outside_the_audited_module() {
        let tok = unsafe_token();
        let src = format!("fn f(p: *const u8) -> u8 {{\n    {tok} {{ *p }}\n}}\n");
        let mut report = AnalysisReport::new();
        lint_source("crates/core/src/dft.rs", &src, ALL, &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].rule, "lint/no-unsafe");
        assert_eq!(report.findings[0].subject, "crates/core/src/dft.rs:2");
    }

    #[test]
    fn unsafe_allow_list_is_exactly_the_arch_module() {
        assert!(is_unsafe_audited("crates/backend-simd/src/arch.rs"));
        assert!(!is_unsafe_audited("crates/backend-simd/src/lib.rs"));
        assert!(!is_unsafe_audited("crates/core/src/dft.rs"));
        assert_eq!(UNSAFE_AUDITED.len(), 1);
        // The workspace walk disables the rule for exactly that file.
        let tok = unsafe_token();
        let src = format!("fn f(p: *const u8) -> u8 {{\n    {tok} {{ *p }}\n}}\n");
        let rules = RuleSet {
            no_panics: true,
            no_std_time: false,
            exec_hot_path: false,
            no_unsafe: !is_unsafe_audited("crates/backend-simd/src/arch.rs"),
        };
        let mut report = AnalysisReport::new();
        lint_source("crates/backend-simd/src/arch.rs", &src, rules, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn unsafe_code_attribute_spelling_is_not_flagged() {
        // `#![deny(unsafe_code)]` / `#[allow(unsafe_code)]` contain the
        // keyword only as a prefix of the lint name; whole-word matching
        // must not fire on them.
        let tok = unsafe_token();
        let src = format!("#![deny({tok}_code)]\n#[allow({tok}_code)]\nmod arch;\n");
        let mut report = AnalysisReport::new();
        lint_source("crates/backend-simd/src/lib.rs", &src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn bare_lock_flagged_in_hot_paths() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 {\n    *m.lock().unwrap()\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("crates/core/src/scheduler.rs", src, ALL, &mut report);
        // Both the hot-path rule and no-panics fire on the same token.
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "lint/no-bare-lock" && f.subject.ends_with(":2")));
        // Outside hot paths the dedicated rule stays silent.
        let mut report = AnalysisReport::new();
        lint_source(
            "crates/core/src/obs.rs",
            src,
            RuleSet {
                no_panics: false,
                no_std_time: false,
                exec_hot_path: false,
                no_unsafe: true,
            },
            &mut report,
        );
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn poison_recovering_lock_is_clean() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 {\n    \
                   *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("crates/serve/src/lib.rs", src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn unbounded_channel_flagged_in_hot_paths() {
        let src = "fn f() {\n    let (_tx, _rx) = std::sync::mpsc::channel::<u8>();\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("crates/serve/src/lib.rs", src, ALL, &mut report);
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.findings[0].rule, "lint/no-unbounded-queue");
        // The bounded constructor is the sanctioned alternative.
        let src = "fn f() {\n    let (_tx, _rx) = std::sync::mpsc::sync_channel::<u8>(1);\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("crates/serve/src/lib.rs", src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn hot_path_rules_honor_allow_markers() {
        let src = "fn f() {\n    \
                   // ddl-lint: allow(no-unbounded-queue): drained by the caller each turn\n    \
                   let (_tx, _rx) = std::sync::mpsc::channel::<u8>();\n}\n";
        let mut report = AnalysisReport::new();
        lint_source("crates/serve/src/lib.rs", src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn dead_allow_marker_is_flagged() {
        let marker = allow_marker("lint/no-panics");
        // The unwrap was removed in a refactor; the marker stayed.
        let src = format!(
            "fn f(x: Option<u8>) -> u8 {{\n\
             \x20   // {marker}: documented wrapper\n\
             \x20   x.unwrap_or(0)\n\
             }}\n"
        );
        let mut report = AnalysisReport::new();
        lint_source("a.rs", &src, ALL, &mut report);
        assert_eq!(report.error_count(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, RULE_DEAD_ALLOW);
        assert_eq!(report.findings[0].subject, "a.rs:2");
    }

    #[test]
    fn unknown_rule_in_allow_marker_is_flagged() {
        let src = "fn f() {\n\
                   \x20   // ddl-lint: allow(no-panix): typo'd rule name\n\
                   \x20   let _ = 1;\n\
                   }\n";
        let mut report = AnalysisReport::new();
        lint_source("a.rs", src, ALL, &mut report);
        assert_eq!(report.error_count(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, RULE_DEAD_ALLOW);
        assert!(report.findings[0].message.contains("no-panix"));
    }

    #[test]
    fn markers_in_docs_and_strings_are_not_dead_allows() {
        let marker = allow_marker("lint/no-panics");
        // Doc comments and string literals mention markers as prose —
        // they never suppressed anything, so they cannot be dead.
        let src = format!(
            "//! Suppress with `// {marker}: reason`.\n\
             /// Example: `// {marker}: reason`.\n\
             fn f() -> String {{\n\
             \x20   format!(\"{marker}\")\n\
             }}\n"
        );
        let mut report = AnalysisReport::new();
        lint_source("a.rs", &src, ALL, &mut report);
        assert!(report.passes(), "{:?}", report.findings);
    }

    #[test]
    fn live_unsafe_marker_requires_a_whole_word_match() {
        let tok = unsafe_token();
        let marker = allow_marker("lint/no-unsafe");
        // `unsafe_code` in an attribute is not the keyword: a marker
        // "covering" only that spelling is dead.
        let src = format!(
            "// {marker}: stale\n\
             #[allow({tok}_code)]\n\
             mod arch;\n"
        );
        let mut report = AnalysisReport::new();
        let rules = RuleSet {
            no_panics: true,
            no_std_time: false,
            exec_hot_path: false,
            no_unsafe: true,
        };
        lint_source("a.rs", &src, rules, &mut report);
        assert_eq!(report.error_count(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, RULE_DEAD_ALLOW);
    }

    #[test]
    fn exec_hot_path_scope_is_exact() {
        assert!(is_exec_hot_path("crates/core/src/scheduler.rs"));
        assert!(is_exec_hot_path("crates/core/src/parallel.rs"));
        assert!(is_exec_hot_path("crates/core/src/engine.rs"));
        assert!(is_exec_hot_path("crates/serve/src/lib.rs"));
        assert!(!is_exec_hot_path("crates/core/src/planner.rs"));
        assert!(!is_exec_hot_path("crates/core/src/obs.rs"));
    }

    #[test]
    fn pure_planning_scope_is_exact() {
        assert!(is_pure_planning("crates/core/src/planner.rs"));
        assert!(is_pure_planning("crates/num/src/twiddle.rs"));
        assert!(is_pure_planning("crates/cachesim/src/cache.rs"));
        assert!(!is_pure_planning("crates/core/src/measure.rs"));
        assert!(!is_pure_planning("crates/core/src/parallel.rs"));
        assert!(!is_pure_planning("crates/core/src/obs.rs"));
    }

    #[test]
    fn fixture_corpus_covers_every_rule() {
        // Every rule ships a positive (`.flag.rs`, must trip exactly
        // that rule) and a negative (`.ok.rs`, must be fully clean
        // under every rule) snippet, and the corpus directory contains
        // nothing else.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/lint");
        let rules = [
            "no-panics",
            "no-std-time",
            "no-bare-lock",
            "no-unbounded-queue",
            "no-unsafe",
            "dead-allow",
            "forbid-unsafe",
        ];
        for rule in rules {
            for (suffix, want_clean) in [("ok", true), ("flag", false)] {
                let path = dir.join(format!("{rule}.{suffix}.rs"));
                let source =
                    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                let mut report = AnalysisReport::new();
                if rule == "forbid-unsafe" {
                    lint_crate_root("crates/x/src/lib.rs", &source, &mut report);
                } else {
                    lint_source("fixture.rs", &source, ALL, &mut report);
                }
                if want_clean {
                    assert!(report.passes(), "{rule}.{suffix}: {:#?}", report.findings);
                } else {
                    assert!(
                        report
                            .findings
                            .iter()
                            .any(|f| f.severity == Severity::Error
                                && f.rule == format!("lint/{rule}")),
                        "{rule}.{suffix} did not trip lint/{rule}: {:#?}",
                        report.findings
                    );
                }
            }
        }
        let entries = fs::read_dir(&dir).expect("fixture dir").count();
        assert_eq!(entries, rules.len() * 2, "stray files in fixtures/lint");
    }

    #[test]
    fn whole_workspace_is_lint_clean() {
        // The real gate: the repository's own sources must pass. Walk up
        // from this crate's manifest dir to the workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let mut report = AnalysisReport::new();
        lint_workspace(root, &mut report).expect("lint walk");
        let errors: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "lint errors: {errors:#?}");
        assert!(report.subjects > 40, "suspiciously few files scanned");
    }
}
