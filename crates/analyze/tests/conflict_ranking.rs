//! Satellite check: the analyzer's *static* conflict ranking must agree
//! with `ddl-cachesim`'s *simulated* conflict-miss ordering.
//!
//! The paper's Case III argument is that a node whose stage-1 writes
//! interleave at a power-of-two stride thrashes a direct-mapped cache,
//! and that the DDL reorganization (contiguous stage-1 writes plus a
//! tiled transpose) removes exactly those access families. The static
//! analyzer re-derives that claim in closed form (`conflict_summary`);
//! these tests pin it against the trace-driven simulator.
//!
//! Methodology: each comparison is a *golden pair* — the same
//! decomposition with and without reorganization — so the two plans
//! differ only in the access families the reorganization is supposed to
//! fix. Simulated conflict misses are the standard three-C split
//! (direct-mapped misses minus a fully-associative twin's misses). The
//! invariant under test: **whenever the static score is decisive, the
//! simulator orders the pair the same way.** Ties are checked loosely —
//! the per-family static model deliberately ignores cross-region set
//! phasing, which can move simulated counts at equal static scores.
//!
//! Geometry: the paper-default 512 KB cache holds every size in range,
//! which would make the comparison vacuous, so the tests shrink the
//! cache (4/8/16 KB direct-mapped) — the same scaling trick the seed's
//! cachesim tests use.

use ddl_analyze::{analyze_dft_plan, conflict_summary, AnalysisReport, CacheGeometry};
use ddl_cachesim::CacheConfig;
use ddl_core::planner::{try_plan_dft, PlannerConfig, Strategy};
use ddl_core::traced::simulate_dft_at_stride;
use ddl_core::{DftPlan, Tree};
use ddl_num::Direction;

/// Complex point size in bytes.
const POINT_BYTES: usize = 16;

/// Root stride for the strided-view comparison: a power-of-two stride
/// large enough that input reads alias in every test geometry.
const ROOT_STRIDE: usize = 64;

fn small_cache(capacity_kb: usize) -> CacheConfig {
    CacheConfig {
        capacity_bytes: capacity_kb * 1024,
        line_bytes: 64,
        associativity: 1,
    }
}

fn to_plan(tree: Tree) -> DftPlan {
    DftPlan::new(tree, Direction::Forward).expect("golden plan construction failed")
}

/// Static score: accesses flowing through pathological (degree beyond
/// both associativity and the packing bound) families, per the
/// closed-form analysis.
fn static_score(plan: &DftPlan, stride: usize, cache: &CacheConfig) -> u64 {
    let mut report = AnalysisReport::new();
    let analysis = analyze_dft_plan(plan, stride, "rank", &mut report);
    assert!(
        report.passes(),
        "analysis must prove the plan clean before ranking: {:?}",
        report.findings
    );
    let geom = CacheGeometry::from_config(cache);
    conflict_summary(&analysis, &geom, POINT_BYTES).pathological_accesses
}

/// Simulated *conflict* misses: the direct-mapped miss count minus the
/// misses of a fully-associative twin of equal capacity (the standard
/// three-C split, as `Cache::with_conflict_split` defines it). Capacity
/// traffic is excluded deliberately — the static pathological-access
/// score models set aliasing, not working-set size.
fn simulated_score(plan: &DftPlan, stride: usize, cache: &CacheConfig) -> u64 {
    let dm = simulate_dft_at_stride(plan, stride, *cache);
    let fa = simulate_dft_at_stride(
        plan,
        stride,
        CacheConfig {
            capacity_bytes: cache.capacity_bytes,
            line_bytes: cache.line_bytes,
            associativity: cache.capacity_bytes / cache.line_bytes,
        },
    );
    dm.misses.saturating_sub(fa.misses)
}

/// Property sweep: every single-split golden pair over a grid of leaf
/// sizes and cache geometries. Single splits are the canonical Case III
/// shape — the two plans differ *only* in the stage-1 write family and
/// the transpose — so a decisive static ordering must be confirmed by
/// the simulator, with no nested-scratch noise to excuse a miss.
#[test]
fn static_ranking_matches_simulated_conflict_ordering() {
    let mut decisive = 0usize;
    for capacity_kb in [8usize, 16, 32] {
        let cache = small_cache(capacity_kb);
        for n1 in [4usize, 8, 16, 32, 64] {
            for n2 in [4usize, 8, 16, 32, 64] {
                let natural = to_plan(Tree::split(Tree::leaf(n1), Tree::leaf(n2)));
                let reorg = to_plan(Tree::split_ddl(Tree::leaf(n1), Tree::leaf(n2)));
                let st = (
                    static_score(&natural, ROOT_STRIDE, &cache),
                    static_score(&reorg, ROOT_STRIDE, &cache),
                );
                let decisive_here =
                    st.0 as f64 > st.1 as f64 * 1.2 || st.1 as f64 > st.0 as f64 * 1.2;
                if !decisive_here {
                    continue;
                }
                let sim = (
                    simulated_score(&natural, ROOT_STRIDE, &cache),
                    simulated_score(&reorg, ROOT_STRIDE, &cache),
                );
                println!(
                    "{capacity_kb}KB ({n1},{n2}): static {}/{} sim {}/{}",
                    st.0, st.1, sim.0, sim.1
                );
                assert_eq!(
                    st.0 > st.1,
                    sim.0 > sim.1,
                    "{capacity_kb}KB ct({n1},{n2}): static order ({} vs {}) contradicts \
                     simulated conflict misses ({} vs {})",
                    st.0,
                    st.1,
                    sim.0,
                    sim.1
                );
                decisive += 1;
            }
        }
    }
    // The grid must actually exercise the ordering claim, not skip it
    // through ties. (64,16)@8KB, (64,32)@16KB and (64,64)@32KB are
    // decisive by construction: the stage-1 interleaved write strides
    // through a 32-set period with 64 lines (degree 2) while the
    // 32-point transpose tiles stay at degree 1.
    assert!(
        decisive >= 3,
        "only {decisive} decisive pair(s); the ranking sweep is vacuous"
    );
}

/// Out-of-cache sizes (2^12..2^14): balanced 64-point chains, where the
/// transpose tiles alias exactly as hard as the interleaved writes they
/// replace. Static scores tie, and the simulator must confirm the tie.
#[test]
fn large_size_ties_agree_with_simulation() {
    fn chain(n: usize) -> Tree {
        if n <= 64 {
            Tree::leaf(n)
        } else {
            Tree::split(Tree::leaf(64), chain(n / 64))
        }
    }
    let cache = small_cache(16);
    for k in 12..=14u32 {
        let n = 1usize << k;
        let natural = to_plan(chain(n));
        let reorg = to_plan(match chain(n) {
            Tree::Split { left, right, .. } => Tree::split_ddl(*left, *right),
            leaf => leaf,
        });
        let st = (
            static_score(&natural, ROOT_STRIDE, &cache),
            static_score(&reorg, ROOT_STRIDE, &cache),
        );
        let sim = (
            simulated_score(&natural, ROOT_STRIDE, &cache),
            simulated_score(&reorg, ROOT_STRIDE, &cache),
        );
        println!("n=2^{k}: static {}/{} sim {}/{}", st.0, st.1, sim.0, sim.1);
        assert_eq!(st.0, st.1, "n=2^{k}: balanced chains must tie statically");
        let (lo, hi) = (sim.0.min(sim.1), sim.0.max(sim.1));
        assert!(
            hi as f64 <= lo as f64 * 1.2 + 64.0,
            "n=2^{k}: static tie but simulated conflict misses diverge ({} vs {})",
            sim.0,
            sim.1
        );
    }
}

/// Planner-emitted plans for both strategies across 2^4..2^14: wherever
/// the strategies emit different trees the orderings must agree, and
/// identical trees must score identically on both sides (a consistency
/// check on the analyzer itself).
#[test]
fn planner_plans_rank_consistently() {
    let cache = small_cache(16);
    for k in 4..=14u32 {
        let n = 1usize << k;
        let mut plans = Vec::new();
        for strategy in [Strategy::Sdl, Strategy::Ddl] {
            let mut cfg = match strategy {
                Strategy::Sdl => PlannerConfig::sdl_analytical(),
                Strategy::Ddl => PlannerConfig::ddl_analytical(),
            };
            cfg.cache_points = cache.capacity_bytes / POINT_BYTES;
            let outcome = try_plan_dft(n, &cfg).expect("planner failed");
            plans.push((format!("{}", outcome.tree), to_plan(outcome.tree)));
        }
        let (tree_sdl, plan_sdl) = &plans[0];
        let (tree_ddl, plan_ddl) = &plans[1];
        let st = (
            static_score(plan_sdl, ROOT_STRIDE, &cache),
            static_score(plan_ddl, ROOT_STRIDE, &cache),
        );
        let sim = (
            simulated_score(plan_sdl, ROOT_STRIDE, &cache),
            simulated_score(plan_ddl, ROOT_STRIDE, &cache),
        );
        if tree_sdl == tree_ddl {
            assert_eq!(st.0, st.1, "identical trees must score identically");
            assert_eq!(sim.0, sim.1, "identical trees must simulate identically");
        } else if st.0 as f64 > st.1 as f64 * 1.2 {
            assert!(
                sim.0 > sim.1,
                "n=2^{k}: static/simulated orderings disagree"
            );
        } else if st.1 as f64 > st.0 as f64 * 1.2 {
            assert!(
                sim.1 > sim.0,
                "n=2^{k}: static/simulated orderings disagree"
            );
        }
    }
}

/// The canonical Case III pair from the paper, written in the plan
/// grammar: reorganizing `ct(2^6, 2^5)` at the root must rank better
/// both statically and in simulation.
#[test]
fn golden_tree_ranking_matches_simulation() {
    let cache = small_cache(16);
    let exprs = ["ct(2^6, 2^5)", "ctddl(2^6, 2^5)"];
    let mut scores = Vec::new();
    for expr in exprs {
        let tree = ddl_core::grammar::parse(expr).expect("golden expr parses");
        let plan = to_plan(tree);
        scores.push((
            expr,
            static_score(&plan, ROOT_STRIDE, &cache),
            simulated_score(&plan, ROOT_STRIDE, &cache),
        ));
    }
    println!("{scores:?}");
    let (_, st_nat, sim_nat) = scores[0];
    let (_, st_ddl, sim_ddl) = scores[1];
    assert!(
        st_nat > st_ddl,
        "static: reorganizing at the root must reduce pathological accesses ({st_nat} vs {st_ddl})"
    );
    assert!(
        sim_nat > sim_ddl,
        "simulated: reorganizing at the root must reduce conflict misses ({sim_nat} vs {sim_ddl})"
    );
}
