//! Seeded lock-order inversion: two functions acquire `alpha` and
//! `beta` in opposite orders. The lock-order analyzer must report a
//! cycle for this file; `ddl_cert --demo-mutation lock-inversion` and a
//! unit test both gate on that.
//!
//! This file is a fixture, not compiled into any crate.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn ab(alpha: &Mutex<u64>, beta: &Mutex<u64>) -> u64 {
    let a = relock(alpha);
    let b = relock(beta);
    *a + *b
}

pub fn ba(alpha: &Mutex<u64>, beta: &Mutex<u64>) -> u64 {
    let b = relock(beta);
    let a = relock(alpha);
    *a - *b
}
