//! Fixture: pure planning code reading a clock.

fn plan_seed() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
