//! Fixture: an unbounded channel turns overload into memory growth.

use std::sync::mpsc;

fn feed() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}
