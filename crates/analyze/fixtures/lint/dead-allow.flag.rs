//! Fixture: a suppression that outlived its refactor, plus a marker
//! naming a rule that does not exist.

fn clamp_len(x: Option<u8>) -> u8 {
    // ddl-lint: allow(no-panics): was an unwrap before the refactor
    x.unwrap_or(0)
}

fn noop() {
    // ddl-lint: allow(no-panix): typo'd rule name suppresses nothing
    let _ = clamp_len(None);
}
