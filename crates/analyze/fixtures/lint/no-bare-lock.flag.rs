//! Fixture: a poisoned lock here would cascade into a dead scheduler.

use std::sync::Mutex;

fn drain(queue: &Mutex<Vec<u64>>) -> Vec<u64> {
    queue.lock().unwrap().split_off(0)
}
