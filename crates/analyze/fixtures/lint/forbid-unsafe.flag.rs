//! Fixture: a crate root with no `unsafe_code` forbid at all.

pub mod kernels;
