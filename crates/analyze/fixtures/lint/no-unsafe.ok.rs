//! Fixture: raw pointers may be carried as data; dereferencing them
//! belongs to the audited arch module alone.

fn addr_of_first(xs: &[u8]) -> usize {
    xs.as_ptr() as usize
}
