//! Fixture: planning stays a deterministic function of its inputs —
//! any timestamp arrives as data, never from a clock.

fn plan_seed(epoch_nanos: u64, n: usize) -> u64 {
    epoch_nanos ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
