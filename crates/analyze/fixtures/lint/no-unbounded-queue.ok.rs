//! Fixture: bounded queues shed overload with a typed error instead of
//! growing without bound.

use std::sync::mpsc;

fn feed(depth: usize) -> (mpsc::SyncSender<u64>, mpsc::Receiver<u64>) {
    mpsc::sync_channel(depth)
}
