//! Fixture: hot paths recover poison instead of cascading it.

use std::sync::{Mutex, PoisonError};

fn drain(queue: &Mutex<Vec<u64>>) -> Vec<u64> {
    queue
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .split_off(0)
}
