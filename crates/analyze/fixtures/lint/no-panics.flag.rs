//! Fixture: library code that panics instead of routing `DdlError`.

fn parse_len(s: &str) -> usize {
    s.parse().unwrap()
}
