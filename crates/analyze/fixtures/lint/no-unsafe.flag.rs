//! Fixture: unsafe code outside the audited arch module.

fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
