//! Fixture: a live suppression — the banned token sits directly below
//! the marker, so the allow is still earning its keep.

fn must_len(x: Option<u8>) -> u8 {
    // ddl-lint: allow(no-panics): documented panicking wrapper by design
    x.unwrap()
}
