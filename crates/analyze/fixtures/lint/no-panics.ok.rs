//! Fixture: the try-first rule — errors route through `Result`, and
//! `#[cfg(test)]` modules may still unwrap.

fn parse_len(s: &str) -> Result<usize, std::num::ParseIntError> {
    s.parse()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::parse_len("4").unwrap(), 4);
    }
}
