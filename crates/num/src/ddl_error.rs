//! The unified error type for the dynamic-data-layout workspace.
//!
//! Every fallible public operation across the crates — planning, tree
//! construction, grammar parsing, layout reorganization, wisdom
//! persistence, and batch execution — reports failures through
//! [`DdlError`]. The paper's system is an *offline planner + online
//! executor*: plans are persisted and reloaded by long-running services,
//! so a corrupt plan store, an infeasible size, or a poisoned worker
//! thread must surface as a recoverable error the caller can route
//! around, never as a process abort.
//!
//! Legacy panicking entry points are kept as thin wrappers that panic
//! with the error's [`Display`](std::fmt::Display) text, so existing
//! `should_panic` expectations (and callers who prefer the panicking
//! ergonomics) see unchanged messages.

use std::fmt;

/// Highest wisdom-file format version this library understands.
pub const WISDOM_FORMAT_VERSION: u32 = 2;

/// Unified error type for planning, execution, layout, and persistence.
#[derive(Clone, Debug, PartialEq)]
pub enum DdlError {
    /// A transform size is unusable: zero, not a power of two where one
    /// is required, or large enough to overflow addressing arithmetic.
    InvalidSize {
        /// Operation that rejected the size (e.g. `"plan_dft"`).
        context: &'static str,
        /// The offending size.
        n: usize,
        /// Human-readable reason.
        detail: String,
    },
    /// A strided view or layout descriptor does not fit its buffer.
    InvalidStride {
        /// Human-readable description including offset/stride/len.
        detail: String,
    },
    /// A factorization tree failed validation: leaf too small, product
    /// overflow, or structural inconsistency.
    InvalidTree(String),
    /// A layout descriptor is unusable: a non-permutation where a
    /// permutation is required, padding parameters that shrink rows, a
    /// zero tile, and similar.
    InvalidLayout {
        /// Human-readable description.
        detail: String,
    },
    /// A grammar expression failed to parse.
    Parse {
        /// Byte offset of the failure in the input.
        pos: usize,
        /// Parser diagnostic.
        msg: String,
    },
    /// Reading or writing a wisdom file failed at the I/O level.
    WisdomIo {
        /// Path of the wisdom file.
        path: String,
        /// Underlying I/O error text.
        detail: String,
    },
    /// A wisdom file is syntactically or structurally invalid
    /// (not JSON, wrong top-level shape, non-object entries...).
    WisdomFormat {
        /// Path of the wisdom file (empty when parsed from memory).
        path: String,
        /// What was wrong.
        detail: String,
    },
    /// A wisdom file declares a format version newer than this library.
    WisdomVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this library supports.
        supported: u32,
    },
    /// A wisdom entry exists but is corrupt: unparseable expression,
    /// invalid tree, or a tree inconsistent with its key.
    CorruptWisdomEntry {
        /// The wisdom key (e.g. `"dft:1024:ddl"`).
        key: String,
        /// Why the entry was rejected.
        detail: String,
    },
    /// Buffer lengths do not match what the plan or operation requires.
    ShapeMismatch {
        /// Operation and buffer being checked (e.g. `"execute: input"`).
        context: &'static str,
        /// Required length (or multiple).
        want: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// A worker thread panicked while executing one batch item; only the
    /// affected item failed.
    WorkerPanic {
        /// Index of the batch item whose execution panicked.
        item: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// An OS-level resource was unavailable (e.g. thread spawn failed).
    Resource(String),
    /// A service shed the request: its admission queue was at capacity.
    /// Overload is reported immediately — requests are never queued
    /// unboundedly or blocked indefinitely.
    Overloaded {
        /// Requests already queued when this one arrived.
        queued: usize,
        /// The bounded queue's capacity.
        capacity: usize,
    },
    /// A request's deadline expired before (or while) it executed.
    DeadlineExceeded {
        /// Where expiry was detected (e.g. `"scheduler: dequeue"`).
        context: &'static str,
        /// Nanoseconds the request was past its deadline when detected.
        late_ns: u64,
    },
    /// A request was cancelled through its cancellation token.
    Cancelled {
        /// Where cancellation was detected.
        context: &'static str,
    },
    /// A metrics report could not be written, read, or did not conform
    /// to the documented `ddl-metrics` JSON schema.
    Metrics {
        /// What was wrong (I/O error text or schema diagnostic).
        detail: String,
    },
}

impl DdlError {
    /// Convenience constructor for [`DdlError::InvalidSize`].
    pub fn invalid_size(context: &'static str, n: usize, detail: impl Into<String>) -> Self {
        DdlError::InvalidSize {
            context,
            n,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`DdlError::ShapeMismatch`].
    pub fn shape(context: &'static str, want: usize, got: usize) -> Self {
        DdlError::ShapeMismatch { context, want, got }
    }
}

impl fmt::Display for DdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdlError::InvalidSize { context, n, detail } => {
                write!(f, "{context}: invalid size {n}: {detail}")
            }
            DdlError::InvalidStride { detail } => write!(f, "{detail}"),
            DdlError::InvalidTree(msg) => write!(f, "invalid factorization tree: {msg}"),
            DdlError::InvalidLayout { detail } => write!(f, "{detail}"),
            DdlError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            DdlError::WisdomIo { path, detail } => {
                write!(f, "wisdom I/O error for {path}: {detail}")
            }
            DdlError::WisdomFormat { path, detail } => {
                if path.is_empty() {
                    write!(f, "wisdom format error: {detail}")
                } else {
                    write!(f, "wisdom format error in {path}: {detail}")
                }
            }
            DdlError::WisdomVersion { found, supported } => write!(
                f,
                "wisdom format version {found} is newer than supported version {supported}"
            ),
            DdlError::CorruptWisdomEntry { key, detail } => {
                write!(f, "corrupt wisdom entry {key:?}: {detail}")
            }
            DdlError::ShapeMismatch { context, want, got } => {
                write!(f, "{context}: need {want}, got {got}")
            }
            DdlError::WorkerPanic { item, payload } => {
                write!(f, "batch worker panicked on item {item}: {payload}")
            }
            DdlError::Resource(msg) => write!(f, "resource unavailable: {msg}"),
            DdlError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: admission queue at capacity ({queued} queued, capacity {capacity})"
            ),
            DdlError::DeadlineExceeded { context, late_ns } => {
                write!(f, "{context}: deadline exceeded by {late_ns} ns")
            }
            DdlError::Cancelled { context } => write!(f, "{context}: request cancelled"),
            DdlError::Metrics { detail } => write!(f, "metrics error: {detail}"),
        }
    }
}

impl std::error::Error for DdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DdlError::invalid_size("plan_dft", 0, "size must be at least 1");
        assert!(e.to_string().contains("plan_dft"));
        assert!(e.to_string().contains("size must be at least 1"));

        let e = DdlError::shape("execute: input", 64, 7);
        assert_eq!(e.to_string(), "execute: input: need 64, got 7");

        let e = DdlError::WisdomVersion {
            found: 9,
            supported: WISDOM_FORMAT_VERSION,
        };
        assert!(e.to_string().contains("version 9"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DdlError::Resource("no threads".into()));
    }
}
