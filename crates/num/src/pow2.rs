//! Power-of-two helpers.
//!
//! The paper assumes `N = 2^p` for illustration (its dynamic-programming
//! search does not require it, and neither does ours, but the stride
//! analysis of Section III-B is phrased for power-of-two strides, which are
//! also the pathological case for direct-mapped caches). The planner uses
//! these helpers to enumerate factorizations `2^p = 2^a * 2^(p-a)`.

/// True when `n` is a power of two (zero is not).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `log2(n)` for exact powers of two; `None` otherwise.
#[inline]
pub fn log2_exact(n: usize) -> Option<u32> {
    if is_pow2(n) {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

/// Largest `k` with `2^k <= n`. Panics on `n == 0`.
#[inline]
pub fn floor_log2(n: usize) -> u32 {
    assert!(n > 0, "floor_log2 of zero");
    usize::BITS - 1 - n.leading_zeros()
}

/// Smallest `k` with `2^k >= n`. Panics on `n == 0`.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0, "ceil_log2 of zero");
    if is_pow2(n) {
        n.trailing_zeros()
    } else {
        floor_log2(n) + 1
    }
}

/// All ordered two-way factorizations `n = a * b` with `a, b >= min_part`.
///
/// For power-of-two `n` these are exactly the splits the planner's search in
/// Fig. 8 of the paper enumerates. Works for general `n` too (trial
/// division), matching the paper's remark that Cooley–Tukey applies to any
/// composite size.
pub fn factor_pairs(n: usize, min_part: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut a = min_part.max(1);
    while a <= n / min_part.max(1) {
        if n.is_multiple_of(a) {
            let b = n / a;
            if b >= min_part {
                out.push((a, b));
            }
        }
        a += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_detection() {
        assert!(!is_pow2(0));
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(!is_pow2(3));
        assert!(is_pow2(1 << 20));
        assert!(!is_pow2((1 << 20) + 1));
    }

    #[test]
    fn log2_exact_only_on_powers() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(1024), Some(10));
        assert_eq!(log2_exact(1000), None);
        assert_eq!(log2_exact(0), None);
    }

    #[test]
    fn floor_and_ceil_bracket() {
        for n in 1..2000usize {
            let f = floor_log2(n);
            let c = ceil_log2(n);
            assert!(1usize << f <= n);
            assert!(n <= 1usize << c);
            assert!(c - f <= 1);
        }
    }

    #[test]
    fn factor_pairs_of_16() {
        let pairs = factor_pairs(16, 2);
        assert_eq!(pairs, vec![(2, 8), (4, 4), (8, 2)]);
    }

    #[test]
    fn factor_pairs_general_n() {
        let pairs = factor_pairs(12, 2);
        assert_eq!(pairs, vec![(2, 6), (3, 4), (4, 3), (6, 2)]);
    }

    #[test]
    fn factor_pairs_min_part_one_includes_trivial() {
        let pairs = factor_pairs(6, 1);
        assert_eq!(pairs, vec![(1, 6), (2, 3), (3, 2), (6, 1)]);
    }

    #[test]
    fn factor_pairs_prime_has_none_nontrivial() {
        assert!(factor_pairs(13, 2).is_empty());
    }
}
