//! Error metrics for comparing transform outputs.
//!
//! FFT implementations are validated against the `O(n^2)` reference DFT;
//! because floating-point summation order differs between factorizations,
//! exact equality is meaningless and tests instead bound the relative RMS
//! error, which for a well-implemented FFT grows like `O(sqrt(log n))·eps`.

use crate::complex::Complex64;
use crate::ddl_error::DdlError;

/// Fallible root-mean-square error between two complex sequences.
///
/// Returns [`DdlError::ShapeMismatch`] when the lengths differ; library
/// code comparing buffers whose lengths it does not control should use
/// this rather than the panicking [`rms_error`].
pub fn try_rms_error(a: &[Complex64], b: &[Complex64]) -> Result<f64, DdlError> {
    if a.len() != b.len() {
        return Err(DdlError::shape(
            "rms_error: length mismatch",
            a.len(),
            b.len(),
        ));
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).norm_sqr())
        .sum();
    Ok((sum / a.len() as f64).sqrt())
}

/// Root-mean-square error between two equal-length complex sequences.
///
/// Panics if the lengths differ; see [`try_rms_error`] for the fallible
/// form.
pub fn rms_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    match try_rms_error(a, b) {
        Ok(v) => v,
        // ddl-lint: allow(no-panics): panicking wrapper by design; use the try_ variant for a Result
        Err(e) => panic!("{e}"),
    }
}

/// RMS error normalized by the RMS magnitude of the reference `b`.
///
/// Returns the absolute RMS error when the reference is identically zero.
pub fn relative_rms_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    let abs = rms_error(a, b);
    if b.is_empty() {
        return abs;
    }
    let ref_sum: f64 = b.iter().map(|&y| y.norm_sqr()).sum();
    let ref_rms = (ref_sum / b.len() as f64).sqrt();
    if ref_rms == 0.0 {
        abs
    } else {
        abs / ref_rms
    }
}

/// Fallible largest pointwise absolute difference `max_i |a_i - b_i|`.
///
/// Returns [`DdlError::ShapeMismatch`] when the lengths differ.
pub fn try_linf_error(a: &[Complex64], b: &[Complex64]) -> Result<f64, DdlError> {
    if a.len() != b.len() {
        return Err(DdlError::shape(
            "linf_error: length mismatch",
            a.len(),
            b.len(),
        ));
    }
    Ok(a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// Largest pointwise absolute difference `max_i |a_i - b_i|`.
///
/// Panics if the lengths differ; see [`try_linf_error`] for the fallible
/// form.
pub fn linf_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    match try_linf_error(a, b) {
        Ok(v) => v,
        // ddl-lint: allow(no-panics): panicking wrapper by design; use the try_ variant for a Result
        Err(e) => panic!("{e}"),
    }
}

/// Largest modulus in a sequence.
pub fn max_abs(a: &[Complex64]) -> f64 {
    a.iter().map(|&x| x.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_inputs() {
        let v = vec![Complex64::new(1.0, -2.0); 7];
        assert_eq!(rms_error(&v, &v), 0.0);
        assert_eq!(linf_error(&v, &v), 0.0);
        assert_eq!(relative_rms_error(&v, &v), 0.0);
    }

    #[test]
    fn rms_of_constant_offset() {
        let a = vec![Complex64::ZERO; 4];
        let b = vec![Complex64::new(3.0, 4.0); 4]; // |diff| = 5 everywhere
        assert!((rms_error(&a, &b) - 5.0).abs() < 1e-12);
        assert!((linf_error(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_normalizes() {
        let a = vec![Complex64::from_re(1000.0); 3];
        let b = vec![Complex64::from_re(1001.0); 3];
        let rel = relative_rms_error(&a, &b);
        assert!((rel - 1.0 / 1001.0).abs() < 1e-9);
    }

    #[test]
    fn relative_error_zero_reference_falls_back_to_absolute() {
        let a = vec![Complex64::from_re(2.0); 2];
        let b = vec![Complex64::ZERO; 2];
        assert!((relative_rms_error(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequences_have_zero_error() {
        assert_eq!(rms_error(&[], &[]), 0.0);
        assert_eq!(relative_rms_error(&[], &[]), 0.0);
        assert_eq!(linf_error(&[], &[]), 0.0);
    }

    #[test]
    fn max_abs_picks_largest() {
        let v = [
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, -9.0),
            Complex64::new(2.0, 2.0),
        ];
        assert!((max_abs(&v) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = vec![Complex64::ZERO; 2];
        let b = vec![Complex64::ZERO; 3];
        let _ = rms_error(&a, &b);
    }

    #[test]
    fn try_variants_report_mismatch_as_error() {
        let a = vec![Complex64::ZERO; 2];
        let b = vec![Complex64::ZERO; 3];
        assert!(matches!(
            try_rms_error(&a, &b),
            Err(DdlError::ShapeMismatch {
                want: 2,
                got: 3,
                ..
            })
        ));
        assert!(matches!(
            try_linf_error(&a, &b),
            Err(DdlError::ShapeMismatch {
                want: 2,
                got: 3,
                ..
            })
        ));
        assert_eq!(try_rms_error(&a, &a), Ok(0.0));
        assert_eq!(try_linf_error(&b, &b), Ok(0.0));
    }
}
