//! Numeric foundations for the dynamic-data-layout transform library.
//!
//! This crate deliberately implements its own small complex type instead of
//! depending on an external numerics crate: the transform executors are
//! generic over memory abstractions (see `ddl-core`) and need a `Copy`,
//! `#[repr(C)]`, 16-byte complex value whose layout we fully control — one
//! data *point* in the paper's terminology is exactly one `Complex64`
//! (16 bytes), which is what the cache-behaviour analysis in Section III-B
//! of the paper is phrased in terms of.
//!
//! Modules:
//! * [`complex`] — the `Complex64` value type and arithmetic.
//! * [`twiddle`] — roots of unity and precomputed twiddle-factor tables for
//!   the Cooley–Tukey factorization.
//! * [`pow2`] — power-of-two helpers used throughout the planner.
//! * [`error`] — error metrics used by tests and examples to compare
//!   transform outputs against references.
//! * [`ddl_error`] — the unified [`DdlError`] type every fallible public
//!   operation in the workspace reports through.

#![forbid(unsafe_code)]

pub mod complex;
pub mod ddl_error;
pub mod error;
pub mod pow2;
pub mod twiddle;

pub use complex::Complex64;
pub use ddl_error::{DdlError, WISDOM_FORMAT_VERSION};
pub use error::{
    linf_error, max_abs, relative_rms_error, rms_error, try_linf_error, try_rms_error,
};
pub use pow2::{ceil_log2, factor_pairs, floor_log2, is_pow2, log2_exact};
pub use twiddle::{root_of_unity, Direction, TwiddleTable};
