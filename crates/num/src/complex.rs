//! A minimal double-precision complex number.
//!
//! One `Complex64` is one data *point* of the paper: 16 bytes, matching the
//! element size used in its cache simulations ("each data point is a
//! double-precision complex number (16 Bytes)", Section V-A).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// The layout is `#[repr(C)]` so that a slice of points has a predictable
/// address map — the cache simulator converts point indices to byte
/// addresses by multiplying with `size_of::<Complex64>()`.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its rectangular parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates `exp(i * theta) = cos(theta) + i sin(theta)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared modulus `re^2 + im^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by the imaginary unit: `i * z = (-im, re)`.
    ///
    /// Used by radix-4 codelets to avoid a full complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Complex64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplication by `-i`: `-i * z = (im, -re)`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Complex64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scales both parts by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Fused multiply-accumulate: `self + a * b`.
    ///
    /// Written out explicitly so the optimizer can keep everything in
    /// registers inside codelets.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Complex64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// The multiplicative inverse `1 / z`. Returns NaNs for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Complex64::new(re, im)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+e}{:+e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn layout_is_two_f64() {
        assert_eq!(core::mem::size_of::<Complex64>(), 16);
        assert_eq!(core::mem::align_of::<Complex64>(), 8);
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.25);
        let b = Complex64::new(-0.5, 3.0);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn recip_of_unit() {
        assert!(close(Complex64::ONE.recip(), Complex64::ONE));
        assert!(close(Complex64::I.recip(), -Complex64::I));
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let z = Complex64::new(0.3, -0.7);
        assert!(close(z.mul_i(), z * Complex64::I));
        assert!(close(z.mul_neg_i(), z * -Complex64::I));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * std::f64::consts::FRAC_PI_8);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(2.0, -5.0);
        assert_eq!(z.conj(), Complex64::new(2.0, 5.0));
        assert!(close(z * z.conj(), Complex64::from_re(z.norm_sqr())));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = Complex64::new(1.0, 1.0);
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 4.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex64::new(1.0, 0.0); 8];
        let s: Complex64 = v.iter().copied().sum();
        assert_eq!(s, Complex64::new(8.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
