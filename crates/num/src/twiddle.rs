//! Roots of unity and twiddle-factor tables.
//!
//! The Cooley–Tukey factorization `DFT_{n1 n2} = (DFT_{n1} ⊗ I_{n2}) T
//! (I_{n1} ⊗ DFT_{n2}) L` interposes a diagonal *twiddle* matrix `T` whose
//! entries are `w_N^{i2*j1}` with `w_N = exp(-2πi/N)`. Computing these with
//! `sin`/`cos` in the inner loop would dominate the runtime, so executors
//! precompute per-node [`TwiddleTable`]s once per plan and reuse them across
//! repeated executions — mirroring the "codelet + precomputed twiddles"
//! organization of the FFTW-derived packages the paper modifies.

use crate::complex::Complex64;

/// Transform direction.
///
/// The inverse transform uses conjugated twiddles; normalization by `1/N`
/// is the caller's choice (the executors expose it separately) so that
/// `forward ∘ inverse = N · identity` matches the usual FFT convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `w = exp(-2πi/N)` — the DFT.
    Forward,
    /// `w = exp(+2πi/N)` — the inverse DFT (unnormalized).
    Inverse,
}

impl Direction {
    /// The sign of the exponent: -1 for forward, +1 for inverse.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Returns `w_n^k = exp(sign * 2πi * k / n)` for the given direction.
///
/// Exact values are returned for the quadrant angles so that small codelets
/// built from these constants introduce no avoidable rounding error.
pub fn root_of_unity(n: usize, k: usize, dir: Direction) -> Complex64 {
    assert!(n > 0, "root_of_unity: n must be positive");
    let k = k % n;
    // Handle the four exact quadrant cases.
    if (4 * k).is_multiple_of(n) {
        let quarter = 4 * k / n; // 0..4
        let z = match quarter {
            0 => Complex64::ONE,
            1 => Complex64::new(0.0, -1.0),
            2 => Complex64::new(-1.0, 0.0),
            // `k % n < n` pins `4k/n` to `0..4`, so this arm is exactly
            // quarter 3.
            _ => Complex64::new(0.0, 1.0),
        };
        return match dir {
            Direction::Forward => z,
            Direction::Inverse => z.conj(),
        };
    }
    let theta = dir.sign() * core::f64::consts::TAU * (k as f64) / (n as f64);
    Complex64::cis(theta)
}

/// Precomputed twiddle factors for one factorized node `N = n1 * n2`.
///
/// Stores `w_N^{i2 * j1}` for `j1 in 0..n1`, `i2 in 0..n2`, laid out so that
/// the factors consumed together by one inner-stage output column are
/// contiguous: index `i2 * n1 + j1`.
#[derive(Clone, Debug)]
pub struct TwiddleTable {
    n1: usize,
    n2: usize,
    dir: Direction,
    /// `w[i2 * n1 + j1] = w_{n1*n2}^{i2 * j1}`.
    factors: Box<[Complex64]>,
}

impl TwiddleTable {
    /// Builds the table for `N = n1 * n2` in the given direction.
    pub fn new(n1: usize, n2: usize, dir: Direction) -> Self {
        let n = n1
            .checked_mul(n2)
            // ddl-lint: allow(no-panics): overflow here is a caller contract violation, not a recoverable state
            .expect("TwiddleTable: n1 * n2 overflows usize");
        let mut factors = Vec::with_capacity(n);
        for i2 in 0..n2 {
            for j1 in 0..n1 {
                factors.push(root_of_unity(n, i2 * j1, dir));
            }
        }
        TwiddleTable {
            n1,
            n2,
            dir,
            factors: factors.into_boxed_slice(),
        }
    }

    /// The row count `n1` (size of the first-stage DFT).
    #[inline]
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// The column count `n2` (size of the second-stage DFT).
    #[inline]
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// The direction the table was built for.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// The factor `w_N^{i2 * j1}`.
    #[inline(always)]
    pub fn get(&self, j1: usize, i2: usize) -> Complex64 {
        debug_assert!(j1 < self.n1 && i2 < self.n2);
        self.factors[i2 * self.n1 + j1]
    }

    /// The contiguous column of `n1` factors for a fixed `i2`:
    /// `[w^0, w^{i2}, w^{2 i2}, …]`.
    #[inline]
    pub fn column(&self, i2: usize) -> &[Complex64] {
        &self.factors[i2 * self.n1..(i2 + 1) * self.n1]
    }

    /// All factors as a flat slice, indexed `i2 * n1 + j1`.
    ///
    /// This matches the layout of the inter-stage scratch buffer in the
    /// executors (`t[j1 + n1*i2]`), so the twiddle stage is an elementwise
    /// multiply of two contiguous arrays.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.factors
    }

    /// Total number of stored factors (`n1 * n2`).
    #[inline]
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True when the table is empty (degenerate `0`-sized node).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_roots_are_exact() {
        assert_eq!(root_of_unity(4, 0, Direction::Forward), Complex64::ONE);
        assert_eq!(
            root_of_unity(4, 1, Direction::Forward),
            Complex64::new(0.0, -1.0)
        );
        assert_eq!(
            root_of_unity(4, 2, Direction::Forward),
            Complex64::new(-1.0, 0.0)
        );
        assert_eq!(
            root_of_unity(4, 3, Direction::Forward),
            Complex64::new(0.0, 1.0)
        );
        assert_eq!(
            root_of_unity(4, 1, Direction::Inverse),
            Complex64::new(0.0, 1.0)
        );
    }

    #[test]
    fn k_wraps_modulo_n() {
        let a = root_of_unity(8, 3, Direction::Forward);
        let b = root_of_unity(8, 11, Direction::Forward);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_and_inverse_are_conjugate() {
        for k in 0..16 {
            let f = root_of_unity(16, k, Direction::Forward);
            let i = root_of_unity(16, k, Direction::Inverse);
            assert!((f - i.conj()).abs() < 1e-15);
        }
    }

    #[test]
    fn roots_multiply_like_exponents() {
        let n = 12;
        for a in 0..n {
            for b in 0..n {
                let lhs = root_of_unity(n, a, Direction::Forward)
                    * root_of_unity(n, b, Direction::Forward);
                let rhs = root_of_unity(n, a + b, Direction::Forward);
                assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn table_matches_direct_formula() {
        let t = TwiddleTable::new(4, 8, Direction::Forward);
        assert_eq!(t.len(), 32);
        for j1 in 0..4 {
            for i2 in 0..8 {
                let want = root_of_unity(32, i2 * j1, Direction::Forward);
                assert!((t.get(j1, i2) - want).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn table_column_is_contiguous_view() {
        let t = TwiddleTable::new(3, 5, Direction::Inverse);
        for i2 in 0..5 {
            let col = t.column(i2);
            assert_eq!(col.len(), 3);
            for (j1, &w) in col.iter().enumerate() {
                assert_eq!(w, t.get(j1, i2));
            }
        }
    }

    #[test]
    fn first_row_and_column_are_one() {
        let t = TwiddleTable::new(8, 8, Direction::Forward);
        for j1 in 0..8 {
            assert_eq!(t.get(j1, 0), Complex64::ONE);
        }
        for i2 in 0..8 {
            assert_eq!(t.get(0, i2), Complex64::ONE);
        }
    }

    #[test]
    fn direction_flip_round_trips() {
        assert_eq!(Direction::Forward.flip(), Direction::Inverse);
        assert_eq!(Direction::Forward.flip().flip(), Direction::Forward);
        assert_eq!(Direction::Forward.sign(), -1.0);
        assert_eq!(Direction::Inverse.sign(), 1.0);
    }
}
