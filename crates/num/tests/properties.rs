//! Property-based tests for the numeric foundations.

use ddl_num::{
    is_pow2, linf_error, log2_exact, relative_rms_error, rms_error, root_of_unity, Complex64,
    Direction, TwiddleTable,
};
use proptest::prelude::*;

fn arb_complex() -> impl Strategy<Value = Complex64> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #[test]
    fn addition_commutes(a in arb_complex(), b in arb_complex()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn multiplication_commutes(a in arb_complex(), b in arb_complex()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() <= 1e-6 * ab.abs().max(1.0));
    }

    #[test]
    fn multiplication_distributes(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() <= 1e-4 * lhs.abs().max(1.0));
    }

    #[test]
    fn conjugation_is_involution(a in arb_complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn modulus_is_multiplicative(a in arb_complex(), b in arb_complex()) {
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn roots_of_unity_have_unit_modulus(n in 1usize..512, k in 0usize..4096) {
        let z = root_of_unity(n, k, Direction::Forward);
        prop_assert!((z.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn root_times_conjugate_root_is_one(n in 1usize..256, k in 0usize..256) {
        let f = root_of_unity(n, k, Direction::Forward);
        let i = root_of_unity(n, k, Direction::Inverse);
        prop_assert!((f * i - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn nth_power_of_primitive_root_is_one(n in 1usize..128) {
        let w = root_of_unity(n, 1, Direction::Forward);
        let mut acc = Complex64::ONE;
        for _ in 0..n {
            acc *= w;
        }
        prop_assert!((acc - Complex64::ONE).abs() < 1e-10);
    }

    #[test]
    fn twiddle_table_agrees_with_direct_roots(n1 in 1usize..12, n2 in 1usize..12) {
        let t = TwiddleTable::new(n1, n2, Direction::Forward);
        for j1 in 0..n1 {
            for i2 in 0..n2 {
                let want = root_of_unity(n1 * n2, i2 * j1, Direction::Forward);
                prop_assert!((t.get(j1, i2) - want).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn rms_error_is_symmetric(v in prop::collection::vec(arb_complex(), 0..64),
                              w in prop::collection::vec(arb_complex(), 0..64)) {
        let n = v.len().min(w.len());
        let a = &v[..n];
        let b = &w[..n];
        prop_assert_eq!(rms_error(a, b), rms_error(b, a));
        prop_assert!(rms_error(a, b) <= linf_error(a, b) + 1e-12);
    }

    #[test]
    fn relative_error_is_scale_invariant(v in prop::collection::vec(arb_complex(), 1..64),
                                         scale in 1e-3f64..1e3) {
        let w: Vec<_> = v.iter().map(|&z| z.scale(1.0 + 1e-6)).collect();
        let v2: Vec<_> = v.iter().map(|&z| z.scale(scale)).collect();
        let w2: Vec<_> = w.iter().map(|&z| z.scale(scale)).collect();
        let e1 = relative_rms_error(&w, &v);
        let e2 = relative_rms_error(&w2, &v2);
        prop_assert!((e1 - e2).abs() <= 1e-9 * e1.max(1e-12));
    }

    #[test]
    fn log2_exact_consistent_with_is_pow2(n in 1usize..1_000_000) {
        prop_assert_eq!(log2_exact(n).is_some(), is_pow2(n));
        if let Some(k) = log2_exact(n) {
            prop_assert_eq!(1usize << k, n);
        }
    }
}
