#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation and
# collects the outputs under results/. Runtime is dominated by the two
# measured dynamic-programming sweeps (fig11/table6 and fig15/table5).
#
# Usage: scripts/run_experiments.sh [MAX_LOG_N] [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_LOG_N="${1:-22}"
QUICK="${2:-}"

mkdir -p results
cargo build --release -p ddl-bench --bins

run() {
    local name="$1"; shift
    echo "== $name =="
    ./target/release/"$name" "$@" | tee "results/$name.txt"
    echo
}

run platform
run fig9   --max-log-n "$MAX_LOG_N" $QUICK
run table2 --max-log-n "$MAX_LOG_N" $QUICK
run fig10  $QUICK
run table1 --max-log-n 20 $QUICK
run fig11_fft --max-log-n "$MAX_LOG_N" $QUICK
run fig15_wht --max-log-n "$MAX_LOG_N" $QUICK
run table6 --max-log-n "$MAX_LOG_N" $QUICK
run table5 --max-log-n "$MAX_LOG_N" $QUICK
run assoc  $QUICK
run tlb_ablation $QUICK

echo "all results captured under results/"
