#!/usr/bin/env bash
# Full CI gate, runnable locally and offline (the workspace has no
# registry dependencies — rand/proptest/criterion are vendored path
# crates). This is the same sequence .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --workspace --release
run cargo test --workspace -q

# Chaos suite: the deterministic fault-injection harness under a pinned
# seed, re-run explicitly so it emits the JSONL fault report artifact
# (each test appends one line per injected fault class). The gate also
# checks the report covers at least five distinct fault classes, so a
# silently-skipped chaos test cannot pass unnoticed. The flight recorder
# routes its dumps to a shared artifact; the run must produce capsules
# for at least three distinct triggers, and the artifact must validate
# line by line as ddl-flight v1.
rm -f target/chaos-report.jsonl target/flight-chaos.jsonl
run env DDL_CHAOS_SEED=42 DDL_CHAOS_REPORT=target/chaos-report.jsonl \
    DDL_FLIGHT_OUT=target/flight-chaos.jsonl \
    cargo test -q --test chaos
echo
echo "==> chaos report fault-class coverage"
classes=$(grep -o '"class":"[^"]*"' target/chaos-report.jsonl | sort -u | tee /dev/stderr | wc -l)
if [ "$classes" -lt 5 ]; then
    echo "error: chaos report covers only $classes fault classes (need >= 5)"
    exit 1
fi
echo
echo "==> flight recorder trigger coverage"
triggers=$(grep -o '"trigger":"[^"]*"' target/flight-chaos.jsonl | sort -u | tee /dev/stderr | wc -l)
if [ "$triggers" -lt 3 ]; then
    echo "error: flight recorder covers only $triggers dump triggers (need >= 3)"
    exit 1
fi
run cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --check target/flight-chaos.jsonl

# Cross-backend conformance (DESIGN.md §11): the suite self-selects
# backends per test, then re-runs with each backend forced process-wide
# through DDL_BACKEND so the default-selection path (engine cache keys,
# DftPlan::new) is exercised under every lowering. Each checked case
# appends one JSONL line to the conformance report artifact; the gate
# requires all three backends to appear in it.
rm -f target/conformance-report.jsonl
for be in scalar simd interp; do
    run env DDL_BACKEND=$be DDL_CONFORMANCE_REPORT=target/conformance-report.jsonl \
        cargo test -q --test backend_conformance
done
echo
echo "==> conformance report backend coverage"
backends=$(grep -o '"backend":"[^"]*"' target/conformance-report.jsonl | sort -u | tee /dev/stderr | wc -l)
if [ "$backends" -lt 2 ]; then
    echo "error: conformance report covers only $backends non-scalar backends (need interp and simd)"
    exit 1
fi

# SIMD speedup floor at 2^16: a soft gate. The honest measured numbers
# (EXPERIMENTS.md) sit below the 1.5x floor on hosts where the run is
# already memory-bound, and CI machines vary; warn, don't fail.
echo
echo "==> simd-check (soft gate)"
cargo run --release -q -p ddl-bench --bin bench_suite -- --simd-check \
    || echo "warning: SIMD speedup below the 1.5x floor at 2^16 (soft gate, see EXPERIMENTS.md)"

# Observability smoke: emit a metrics report from an instrumented run,
# then validate the ddl-metrics schema and its structural invariants.
run cargo run --release -q -p ddl-bench --bin obs_smoke -- --metrics-out target/metrics-smoke.json
run cargo run --release -q -p ddl-bench --bin obs_smoke -- --check target/metrics-smoke.json

# Service telemetry smoke: drive a scripted mixed plan/exec session
# through the oneshot server with a worker panic and a slow dequeue
# injected, so the flight recorder dumps both a "panic" and a "deadline"
# capsule. The quiescent shutdown snapshot and the flight artifact are
# then schema-validated (the ddl-telemetry parser re-derives outcome
# conservation when quiesced), and the admitted-sample count in the
# snapshot must exactly equal the wire-level response tally.
echo
echo "==> ddl-serve telemetry smoke"
rm -f target/telemetry-serve.json target/flight-serve.jsonl
printf '%s\n' \
    "plan dft 1024 ddl" \
    "exec dft 1024 ddl" \
    "exec dft 256 sdl" \
    "exec wht 256 sdl" \
    "exec dft ct(16, 16)" \
    "exec dft 64 sdl deadline_ms=3600000" \
    "telemetry text" \
    "telemetry" \
    | cargo run --release -q -p ddl-serve --bin ddl-serve -- --oneshot --workers 2 \
        --faults "42:serve.worker.panic=once@1;serve.dequeue.slow=once@0" \
        --telemetry-out target/telemetry-serve.json \
        --flight-out target/flight-serve.jsonl \
    > target/serve-smoke.out
grep -q '"trigger":"panic"' target/flight-serve.jsonl
grep -q '"trigger":"deadline"' target/flight-serve.jsonl
grep -q '^ddl_serve_accepted' target/serve-smoke.out
telemetry_check=$(cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --check target/telemetry-serve.json --check target/flight-serve.jsonl)
echo "$telemetry_check"
echo "$telemetry_check" | grep -q 'quiesced=1'
# One response line per request, except `telemetry text`, whose response
# is the multi-line Prometheus body (counted as one more).
wire=$(grep -c '^ok \|^err ' target/serve-smoke.out)
wire=$((wire + 1))
if ! echo "$telemetry_check" | grep -q "${wire} admitted + 0 shed"; then
    echo "error: telemetry snapshot does not conserve the wire tally ($wire responses)"
    exit 1
fi

# Benchmark trajectory: quick suite emitting a ddl-bench report plus the
# cost-model calibration report, a Chrome trace of one instrumented run,
# the per-node L1/L2/d-TLB attribution report (DFT/WHT at 2^10 and
# 2^16, both strategies; ddl-attribution v2) and its per-plan hierarchy
# scorecard (ddl-scorecard v1). The run also appends one line to the
# longitudinal ledger. Every artifact is schema-validated, the
# self-comparison is a hard gate (it must always pass), and the committed
# baseline comparison is a soft gate: cross-host timing drift warns
# instead of failing the build.
run cargo run --release -q -p ddl-bench --bin bench_suite -- --quick --label ci \
    --out target/BENCH_ci.json --calibrate-out target/calibration-ci.json \
    --trace-out target/trace-ci.json --attribution-out target/attribution-ci.json \
    --hierarchy-out target/scorecard-ci.json \
    --ledger results/trajectory.jsonl
run cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --check target/BENCH_ci.json \
    --check target/calibration-ci.json \
    --check target/trace-ci.json \
    --check target/attribution-ci.json \
    --check target/scorecard-ci.json

# TLB ablation regeneration: emit the ddl-attribution v2 artifact for
# the table-sized plans (--quick: 2^14..2^16), validate it, render the
# table purely from the stored counters, and diff the overlapping rows
# against the committed results/tlb_ablation.txt. Soft gate: the
# committed table was produced by a full run; simulated counters are
# host-independent, so a mismatch means the attribution changed — warn
# loudly but let doc-only drift be fixed in-tree.
echo
echo "==> TLB ablation regeneration (soft gate)"
run cargo run --release -q -p ddl-bench --bin tlb_ablation -- --quick \
    --artifact target/tlb-ablation-ci.json --out target/tlb_ablation_ci.txt
run cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --check target/tlb-ablation-ci.json
# --quick renders 2^14..2^16: header (2 lines) + 3 rows = 5 overlapping
# lines with the committed full table.
if ! diff <(head -n 5 results/tlb_ablation.txt) \
          <(head -n 5 target/tlb_ablation_ci.txt); then
    echo "warning: regenerated TLB ablation rows differ from results/tlb_ablation.txt (soft gate)"
fi
run cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --compare target/BENCH_ci.json target/BENCH_ci.json

# Longitudinal ledger: every entry (including the one just appended) must
# parse, and no consecutive same-environment pair may have regressed. The
# rendered trend table is archived as a human-readable artifact.
run cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --ledger-check results/trajectory.jsonl
echo
echo "==> trajectory trend report"
cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --ledger-report results/trajectory.jsonl | tee target/trajectory-report.md | head -n 6

echo
echo "==> bench baseline comparison (soft gate)"
cargo run --release -q -p ddl-bench --bin bench_suite -- \
    --compare target/BENCH_ci.json results/bench_baseline.json \
    || echo "warning: benchmark trajectory drifted from results/bench_baseline.json (soft gate)"

# Static analysis gate: workspace lint (panic discipline, forbid(unsafe),
# timing hygiene, dead allow markers), then the plan/DAG analyzer over
# every golden plan and generated codelet. Both exit non-zero on any
# error-severity finding; the analyzer report is validated by
# round-tripping it through --check.
run cargo run --release -q -p ddl-analyze --bin ddl_lint -- --out target/lint-report.json
run cargo run --release -q -p ddl-analyze --bin ddl_analyze -- --out target/analyze-report.json
run cargo run --release -q -p ddl-analyze --bin ddl_analyze -- --check target/analyze-report.json

# Certificate gate (DESIGN.md §12): prove every SIMD intrinsic access
# in-bounds and aligned, the inter-procedural lock-order graph acyclic
# and matching the pinned golden, and the per-size ulp bounds derived
# and monotone; emit the versioned ddl-cert artifact and re-validate it
# through --check. Hard gate: any error-severity finding fails the
# build.
run cargo run --release -q -p ddl-analyze --bin ddl_cert -- --out target/cert-report.json
run cargo run --release -q -p ddl-analyze --bin ddl_cert -- --check target/cert-report.json

# The gate must be able to fail: seed one known violation of each class
# and require the verifier to catch it. Each demo exits zero only when
# the seeded defect IS caught, so a silently-weakened verifier breaks
# the build here.
run cargo run --release -q -p ddl-analyze --bin ddl_cert -- --demo-mutation ptr-off-by-one
run cargo run --release -q -p ddl-analyze --bin ddl_cert -- --demo-mutation lock-inversion

echo
echo "CI gate passed."
