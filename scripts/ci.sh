#!/usr/bin/env bash
# Full CI gate, runnable locally and offline (the workspace has no
# registry dependencies — rand/proptest/criterion are vendored path
# crates). This is the same sequence .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q

echo
echo "CI gate passed."
