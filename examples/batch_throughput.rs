//! Batched transforms and the parallel extension.
//!
//! Run with:
//! ```sh
//! cargo run --release --example batch_throughput [threads]
//! ```
//!
//! Processes a filter-bank-style batch (many independent FFTs of one
//! size) sequentially and with the scoped-thread parallel executor,
//! verifying identical results and reporting throughput. On a
//! single-core host the parallel path demonstrates correctness rather
//! than speedup; on multicore hosts it scales with the thread count.

use dynamic_data_layout::prelude::*;
use dynamic_data_layout::workloads::noise_complex;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let n = 1 << 14;
    let batch = 64;
    println!("== batched FFT: {batch} x {n}-point, {threads} thread(s) ==\n");

    let tree = plan_dft(n, &PlannerConfig::ddl_analytical()).tree;
    println!("per-signal tree: {}", print_dft(&tree));
    let plan = DftPlan::new(tree, Direction::Forward).unwrap();

    let inputs = noise_complex(batch * n, 1.0, 42);
    let mut seq = vec![Complex64::ZERO; batch * n];
    let mut par = vec![Complex64::ZERO; batch * n];

    let t_seq = time_per_call(|| execute_dft_batch(&plan, &inputs, &mut seq, 1), 0.3, 2);
    let t_par = time_per_call(
        || execute_dft_batch(&plan, &inputs, &mut par, threads),
        0.3,
        2,
    );
    assert_eq!(seq, par, "parallel batch diverged from sequential");

    let signals_per_sec = |t: f64| batch as f64 / t;
    println!(
        "sequential: {:8.2} ms/batch  ({:7.0} signals/s)",
        t_seq * 1e3,
        signals_per_sec(t_seq)
    );
    println!(
        "parallel:   {:8.2} ms/batch  ({:7.0} signals/s, {:.2}x)",
        t_par * 1e3,
        signals_per_sec(t_par),
        t_seq / t_par
    );
    println!("\nresults are bit-identical across both paths.");
}
