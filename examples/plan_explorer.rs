//! Explore the planner: optimal trees, strides and simulated cache
//! behaviour per size.
//!
//! Run with:
//! ```sh
//! cargo run --release --example plan_explorer [max_log_n]
//! ```
//!
//! For each size the explorer prints the SDL- and DDL-optimal trees in
//! the paper's grammar (compare the paper's Tables V/VI), the largest
//! leaf stride of each (the quantity that drives Case III conflicts), and
//! the simulated miss rate of both on the paper's 512 KB direct-mapped
//! cache — a compact view of everything the optimization does.

use dynamic_data_layout::prelude::*;

fn main() {
    let max_log: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let cache = CacheConfig::paper_default(64);

    println!("cache: 512 KB direct-mapped, 64 B lines (paper simulation config)");
    println!("DDL considered for working sets >= 2^15 complex points\n");
    println!(
        "{:>6} | {:>8} {:>8} | {:>9} {:>9} | {:>7} {:>7} | trees",
        "n", "sdl-strd", "ddl-strd", "sdl-miss%", "ddl-miss%", "reorgs", "states"
    );

    for log_n in (10..=max_log).step_by(2) {
        let n = 1usize << log_n;
        let sdl = plan_dft(n, &PlannerConfig::sdl_analytical());
        let ddl = plan_dft(n, &PlannerConfig::ddl_analytical());

        let sdl_plan = DftPlan::new(sdl.tree.clone(), Direction::Forward).unwrap();
        let ddl_plan = DftPlan::new(ddl.tree.clone(), Direction::Forward).unwrap();
        let sdl_stats = simulate_dft(&sdl_plan, cache);
        let ddl_stats = simulate_dft(&ddl_plan, cache);

        println!(
            "{:>6} | {:>8} {:>8} | {:>9.2} {:>9.2} | {:>7} {:>7} | sdl={} ddl={}",
            format!("2^{log_n}"),
            sdl.tree.max_leaf_stride(1),
            ddl.tree.max_leaf_stride(1),
            sdl_stats.miss_rate() * 100.0,
            ddl_stats.miss_rate() * 100.0,
            ddl.tree.reorg_count(),
            ddl.states,
            compress(&print_dft(&sdl.tree)),
            compress(&print_dft(&ddl.tree)),
        );
    }

    println!("\nreading the table:");
    println!("- below 2^15 points the two searches agree (no reorganizations);");
    println!("- above it, DDL trees cap the leaf stride and cut the simulated miss rate.");
}

/// Abbreviates long tree expressions for table display.
fn compress(expr: &str) -> String {
    if expr.len() <= 48 {
        expr.to_string()
    } else {
        format!("{}…{}", &expr[..30], &expr[expr.len() - 14..])
    }
}
