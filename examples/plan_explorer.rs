//! Explore the planner: optimal trees, strides and simulated cache
//! behaviour per size.
//!
//! Run with:
//! ```sh
//! cargo run --release --example plan_explorer [max_log_n] [--trace-out <path>]
//! ```
//!
//! For each size the explorer prints the SDL- and DDL-optimal trees in
//! the paper's grammar (compare the paper's Tables V/VI), the largest
//! leaf stride of each (the quantity that drives Case III conflicts), and
//! the simulated miss rate of both on the paper's 512 KB direct-mapped
//! cache — a compact view of everything the optimization does.
//!
//! After the table it profiles the largest DDL plan with the span
//! recorder and prints a per-node breakdown — which `(size, stride)`
//! invocations the execution time actually went to. With
//! `--trace-out <path>` the same timeline is exported as Chrome
//! trace-event JSON (open in Perfetto or chrome://tracing).
//!
//! Finally it renders the per-node hierarchy scorecard of the SDL and
//! DDL plans side by side: every node of the executed tree annotated
//! with its simulated (exclusive) misses, its exclusive L1/L2/d-TLB
//! miss rates from the simultaneous hierarchy attribution, and the
//! three independent Case III verdicts — empirical, analytical model,
//! static conflict analysis — so you can see *which* subtree the misses
//! live in, at *which* level of the memory hierarchy, and whether the
//! three methods agree on why.

use dynamic_data_layout::analyze::annotate_static;
use dynamic_data_layout::core::attrib::NodeAttribution;
use dynamic_data_layout::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let mut max_log: u32 = 20;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().expect("--trace-out needs a path"),
                ));
            }
            other => max_log = other.parse().expect("max_log_n must be an integer"),
        }
    }
    let cache = CacheConfig::paper_default(64);

    println!("cache: 512 KB direct-mapped, 64 B lines (paper simulation config)");
    println!("DDL considered for working sets >= 2^15 complex points\n");
    println!(
        "{:>6} | {:>8} {:>8} | {:>9} {:>9} | {:>7} {:>7} | trees",
        "n", "sdl-strd", "ddl-strd", "sdl-miss%", "ddl-miss%", "reorgs", "states"
    );

    for log_n in (10..=max_log).step_by(2) {
        let n = 1usize << log_n;
        let sdl = plan_dft(n, &PlannerConfig::sdl_analytical());
        let ddl = plan_dft(n, &PlannerConfig::ddl_analytical());

        let sdl_plan = DftPlan::new(sdl.tree.clone(), Direction::Forward).unwrap();
        let ddl_plan = DftPlan::new(ddl.tree.clone(), Direction::Forward).unwrap();
        let sdl_stats = simulate_dft(&sdl_plan, cache);
        let ddl_stats = simulate_dft(&ddl_plan, cache);

        println!(
            "{:>6} | {:>8} {:>8} | {:>9.2} {:>9.2} | {:>7} {:>7} | sdl={} ddl={}",
            format!("2^{log_n}"),
            sdl.tree.max_leaf_stride(1),
            ddl.tree.max_leaf_stride(1),
            sdl_stats.miss_rate() * 100.0,
            ddl_stats.miss_rate() * 100.0,
            ddl.tree.reorg_count(),
            ddl.states,
            compress(&print_dft(&sdl.tree)),
            compress(&print_dft(&ddl.tree)),
        );
    }

    println!("\nreading the table:");
    println!("- below 2^15 points the two searches agree (no reorganizations);");
    println!("- above it, DDL trees cap the leaf stride and cut the simulated miss rate.");

    span_breakdown(max_log.min(16), trace_out.as_deref());
    attribution_trees(max_log.min(16), cache);
}

/// Attributes simulated cache misses per plan node for the SDL and DDL
/// plans at `2^log_n` — simultaneously against the paper cache and a
/// typical L1/L2/d-TLB hierarchy — and renders the annotated trees as
/// hierarchy scorecards.
fn attribution_trees(log_n: u32, cache: CacheConfig) {
    let n = 1usize << log_n;
    for (name, cfg) in [
        ("sdl", PlannerConfig::sdl_analytical()),
        ("ddl", PlannerConfig::ddl_analytical()),
    ] {
        let plan = DftPlan::new(plan_dft(n, &cfg).tree, Direction::Forward).unwrap();
        let mut run = attribute_dft_hier(&plan, 1, cache, HierarchyConfig::typical(cache)).unwrap();
        annotate_static(&mut run);
        let h = run.hierarchy.as_ref().unwrap();
        println!(
            "\nper-node hierarchy scorecard ({name} plan at 2^{log_n}, paper cache; \
             total miss rate {:.2}%, L1 {:.2}%, L2 {:.2}%, TLB {:.2}%):",
            run.totals.miss_rate() * 100.0,
            h.totals.l1.miss_rate() * 100.0,
            h.totals.l2.miss_rate() * 100.0,
            h.totals.tlb.miss_rate() * 100.0
        );
        println!(
            "{:<32} {:>6} {:>12} {:>7} | {:>7} {:>7} {:>7} | {:>9} {:>9} {:>10}",
            "node",
            "calls",
            "self-misses",
            "miss%",
            "l1-m%",
            "l2-m%",
            "tlb-m%",
            "empirical",
            "model",
            "static"
        );
        for root in &run.roots {
            render_node(root, 0);
        }
    }
    println!(
        "\n(empirical: simulated exclusive miss rate; model: the paper's Case I/II vs III \
         closed form; static: conflict-degree analysis. Agreement across all three \
         corroborates the Case III diagnosis; `-` means the class does not apply. \
         l1/l2/tlb: exclusive per-node miss rates from the simultaneous hierarchy \
         attribution — the TLB is just a cache whose line is the 4 KiB page.)"
    );
}

/// Renders one attributed node (and its children) as an indented row.
fn render_node(node: &NodeAttribution, depth: usize) {
    let class = |c: Option<CaseClass>| c.map_or("-".to_string(), |c| c.to_string());
    let stat = match (node.static_pathological, node.static_degree) {
        (Some(true), Some(d)) => format!("conflict:{d}"),
        (Some(false), _) => "clean".to_string(),
        _ => "-".to_string(),
    };
    let level = |s: &CacheStats| {
        if s.line_lookups == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", s.miss_rate() * 100.0)
        }
    };
    let (l1, l2, tlb) = match &node.levels {
        Some(l) => (level(&l.l1), level(&l.l2), level(&l.tlb)),
        None => ("-".to_string(), "-".to_string(), "-".to_string()),
    };
    let name = format!(
        "{:indent$}{}:{}@{}{}",
        "",
        node.label,
        node.size,
        node.stride,
        if node.reorg { " [reorg]" } else { "" },
        indent = depth * 2
    );
    println!(
        "{name:<32} {:>6} {:>12} {:>7.2} | {l1:>7} {l2:>7} {tlb:>7} | {:>9} {:>9} {:>10}",
        node.calls,
        node.stats.misses,
        node.stats.miss_rate() * 100.0,
        class(node.empirical),
        class(node.model),
        stat
    );
    for child in &node.children {
        render_node(child, depth + 1);
    }
}

/// Profiles the DDL plan at `2^log_n` with the span recorder and prints
/// where the execution time went, node by node.
fn span_breakdown(log_n: u32, trace_out: Option<&std::path::Path>) {
    let n = 1usize << log_n;
    let ddl = plan_dft(n, &PlannerConfig::ddl_analytical());
    let plan = DftPlan::new(ddl.tree, Direction::Forward).unwrap();
    let input: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i % 7) as f64, (i % 3) as f64 * 0.5))
        .collect();
    let mut output = vec![Complex64::ZERO; n];
    let mut recorder = Recorder::new();
    plan.try_profile_with(&input, &mut output, &mut recorder)
        .unwrap();

    // Replay the balanced Begin/End timeline, aggregating inclusive time
    // per (size, stride, reorg) node shape.
    let mut stack: Vec<(SpanInfo, u64)> = Vec::new();
    let mut agg: BTreeMap<(usize, usize, bool), (u64, u64)> = BTreeMap::new();
    for event in recorder.trace_events() {
        match event {
            TraceEvent::Begin { info, ts_ns } => stack.push((*info, *ts_ns)),
            TraceEvent::End { ts_ns, .. } => {
                if let Some((info, t0)) = stack.pop() {
                    if matches!(info.kind, SpanKind::Node) {
                        let e = agg.entry((info.size, info.stride, info.reorg)).or_default();
                        e.0 += 1;
                        e.1 += ts_ns.saturating_sub(t0);
                    }
                }
            }
            TraceEvent::Stage { .. } => {}
        }
    }

    println!("\nper-node span breakdown of the DDL plan at 2^{log_n}:");
    println!(
        "{:>8} {:>8} {:>6} | {:>6} {:>14} {:>12}",
        "size", "stride", "reorg", "calls", "inclusive-ns", "ns/call"
    );
    for ((size, stride, reorg), (calls, total_ns)) in agg.iter().rev() {
        println!(
            "{size:>8} {stride:>8} {:>6} | {calls:>6} {total_ns:>14} {:>12.0}",
            if *reorg { "yes" } else { "" },
            *total_ns as f64 / (*calls).max(1) as f64
        );
    }
    println!("(inclusive time: children are counted inside their parents)");

    if let Some(path) = trace_out {
        write_chrome_trace(&recorder, path).unwrap();
        println!(
            "trace with {} events written to {} (load in Perfetto / chrome://tracing)",
            recorder.trace_events().len(),
            path.display()
        );
    }
}

/// Abbreviates long tree expressions for table display.
fn compress(expr: &str) -> String {
    if expr.len() <= 48 {
        expr.to_string()
    } else {
        format!("{}…{}", &expr[..30], &expr[expr.len() - 14..])
    }
}
