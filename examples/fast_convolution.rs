//! Fast circular convolution via DDL-planned FFTs.
//!
//! Run with:
//! ```sh
//! cargo run --release --example fast_convolution
//! ```
//!
//! Convolves a long signal with a filter using the convolution theorem
//! (`y = IDFT(DFT(x) · DFT(h)) / n`), verifies the result against the
//! direct `O(n^2)` reference on a prefix, and compares the throughput of
//! SDL-planned and DDL-planned pipelines — three large transforms per
//! convolution, so layout effects triple.

use dynamic_data_layout::prelude::*;
use dynamic_data_layout::workloads::{
    circular_convolution_direct, noise_complex, pointwise_product,
};

/// One fast convolution using the given pair of compiled plans.
fn fft_convolve(
    forward: &DftPlan,
    inverse: &DftPlan,
    x: &[Complex64],
    h: &[Complex64],
    scratch: &mut Vec<Complex64>,
) -> Vec<Complex64> {
    let n = x.len();
    let mut fx = vec![Complex64::ZERO; n];
    let mut fh = vec![Complex64::ZERO; n];
    forward.execute_with_scratch(x, &mut fx, scratch);
    forward.execute_with_scratch(h, &mut fh, scratch);
    let prod = pointwise_product(&fx, &fh);
    let mut y = vec![Complex64::ZERO; n];
    inverse.execute_with_scratch(&prod, &mut y, scratch);
    let scale = 1.0 / n as f64;
    for v in y.iter_mut() {
        *v = v.scale(scale);
    }
    y
}

fn main() {
    let n = 1 << 19;
    println!("== fast circular convolution, n = {n} ==\n");

    // Signal: noise; filter: a short exponentially-decaying kernel.
    let x = noise_complex(n, 1.0, 11);
    let mut h = vec![Complex64::ZERO; n];
    for (i, hi) in h.iter_mut().take(64).enumerate() {
        *hi = Complex64::from_re(0.8f64.powi(i as i32));
    }

    // Correctness first, on a small prefix problem.
    {
        let m = 512;
        let tree = plan_dft(m, &PlannerConfig::ddl_analytical()).tree;
        let fwd = DftPlan::new(tree.clone(), Direction::Forward).unwrap();
        let inv = DftPlan::new(tree, Direction::Inverse).unwrap();
        let xs = &x[..m];
        let hs: Vec<Complex64> = h[..64]
            .iter()
            .copied()
            .chain(std::iter::repeat(Complex64::ZERO))
            .take(m)
            .collect();
        let mut scratch = Vec::new();
        let fast = fft_convolve(&fwd, &inv, xs, &hs, &mut scratch);
        let direct = circular_convolution_direct(xs, &hs);
        let mut worst = 0.0f64;
        for i in 0..m {
            worst = worst.max((fast[i] - direct[i]).abs());
        }
        println!("verification vs direct O(n^2) convolution (n = {m}): max err {worst:.3e}");
        assert!(worst < 1e-9);
    }

    // Throughput: SDL vs DDL pipelines at full size.
    for (label, cfg) in [
        ("SDL", PlannerConfig::sdl_analytical()),
        ("DDL", PlannerConfig::ddl_analytical()),
    ] {
        let tree = plan_dft(n, &cfg).tree;
        let fwd = DftPlan::new(tree.clone(), Direction::Forward).unwrap();
        let inv = DftPlan::new(tree.clone(), Direction::Inverse).unwrap();
        let mut scratch = Vec::new();
        let mut sink = Complex64::ZERO;
        let t = time_per_call(
            || {
                let y = fft_convolve(&fwd, &inv, &x, &h, &mut scratch);
                sink += y[0];
            },
            0.4,
            2,
        );
        std::hint::black_box(sink);
        println!(
            "{label}: {:8.2} ms per convolution  (tree {})",
            t * 1e3,
            print_dft(&tree)
        );
    }
    println!("\n(speedups compound: each convolution runs three large transforms)");
}
