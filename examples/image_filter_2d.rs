//! 2-D frequency-domain filtering with the row–column FFT.
//!
//! Run with:
//! ```sh
//! cargo run --release --example image_filter_2d
//! ```
//!
//! Builds a synthetic 512x512 "image" (smooth gradient + periodic
//! interference pattern + noise), removes the interference with a notch
//! filter in the 2-D frequency domain, and verifies (a) the round trip is
//! exact without the filter and (b) the interference energy drops by
//! orders of magnitude with it. The column passes inside the 2-D plan
//! are exactly the strided workloads the paper's optimization targets.

use dynamic_data_layout::core::Dft2dPlan;
use dynamic_data_layout::prelude::*;
use dynamic_data_layout::workloads::noise_real;

const ROWS: usize = 512;
const COLS: usize = 512;

/// Synthetic scene: gradient + strong periodic interference at a known
/// spatial frequency + noise.
fn scene() -> (Vec<Complex64>, (usize, usize)) {
    let interference_freq = (ROWS / 8, COLS / 16);
    let noise = noise_real(ROWS * COLS, 0.05, 3);
    let mut img = Vec::with_capacity(ROWS * COLS);
    for r in 0..ROWS {
        for c in 0..COLS {
            let gradient = r as f64 / ROWS as f64 + c as f64 / COLS as f64;
            let phase = core::f64::consts::TAU
                * (interference_freq.0 as f64 * r as f64 / ROWS as f64
                    + interference_freq.1 as f64 * c as f64 / COLS as f64);
            let interference = 0.8 * phase.cos();
            img.push(Complex64::from_re(
                gradient + interference + noise[r * COLS + c],
            ));
        }
    }
    (img, interference_freq)
}

fn main() {
    println!("== 2-D notch filtering, {ROWS}x{COLS} ==\n");
    let cfg = PlannerConfig::ddl_analytical();
    let forward = Dft2dPlan::new(ROWS, COLS, Direction::Forward, &cfg).unwrap();
    let inverse = Dft2dPlan::new(ROWS, COLS, Direction::Inverse, &cfg).unwrap();

    let (img, (fr, fc)) = scene();
    let mut spectrum = vec![Complex64::ZERO; ROWS * COLS];
    forward.execute(&img, &mut spectrum);

    // Round-trip sanity first.
    let mut back = vec![Complex64::ZERO; ROWS * COLS];
    inverse.execute(&spectrum, &mut back);
    let scale = 1.0 / (ROWS * COLS) as f64;
    let mut rt_err = 0.0f64;
    for i in 0..ROWS * COLS {
        rt_err = rt_err.max((back[i].scale(scale) - img[i]).abs());
    }
    println!("2-D round-trip max error: {rt_err:.2e}");
    assert!(rt_err < 1e-9);

    // The interference shows up at (fr, fc) and its conjugate mirror.
    let peak = spectrum[fr * COLS + fc].abs();
    let dc = spectrum[0].abs();
    println!("interference peak |F[{fr},{fc}]| = {peak:.0} (DC = {dc:.0})");
    assert!(peak > 1e4, "interference peak not found");

    // Notch out the two mirrored bins (and a 1-bin neighbourhood).
    let mut filtered = spectrum.clone();
    for (r0, c0) in [(fr, fc), (ROWS - fr, COLS - fc)] {
        for dr in -1i64..=1 {
            for dc_ in -1i64..=1 {
                let r = (r0 as i64 + dr).rem_euclid(ROWS as i64) as usize;
                let c = (c0 as i64 + dc_).rem_euclid(COLS as i64) as usize;
                filtered[r * COLS + c] = Complex64::ZERO;
            }
        }
    }
    let mut cleaned = vec![Complex64::ZERO; ROWS * COLS];
    inverse.execute(&filtered, &mut cleaned);

    // Measure the residual interference by projecting onto the pattern.
    let project = |data: &[Complex64]| -> f64 {
        let mut acc = Complex64::ZERO;
        for r in 0..ROWS {
            for c in 0..COLS {
                let phase = core::f64::consts::TAU
                    * (fr as f64 * r as f64 / ROWS as f64 + fc as f64 * c as f64 / COLS as f64);
                acc += data[r * COLS + c] * Complex64::cis(-phase);
            }
        }
        acc.abs() / (ROWS * COLS) as f64
    };
    let before = project(&img);
    let cleaned_scaled: Vec<Complex64> = cleaned.iter().map(|v| v.scale(scale)).collect();
    let after = project(&cleaned_scaled);
    println!("interference amplitude: {before:.4} -> {after:.6}");
    assert!(
        after < before / 100.0,
        "notch filter failed: {after} vs {before}"
    );
    println!(
        "\ninterference suppressed by {:.0}x; gradient preserved.",
        before / after
    );
}
