//! Lossy signal compression with the Walsh–Hadamard transform.
//!
//! Run with:
//! ```sh
//! cargo run --release --example wht_compression
//! ```
//!
//! The WHT is the paper's second transform: same factorization machinery,
//! no twiddle factors, real data. This example runs a classic
//! transform-coding loop — forward WHT, keep only the largest
//! coefficients, inverse WHT — on a large piecewise-smooth signal, and
//! reports PSNR per retention rate. Both the forward and inverse
//! transforms use DDL-planned trees (the WHT is self-inverse up to `1/n`).

use dynamic_data_layout::prelude::*;
use dynamic_data_layout::workloads::{noise_real, psnr_db};

/// A piecewise-smooth test signal: steps + slow sinusoids + mild noise.
fn test_signal(n: usize) -> Vec<f64> {
    let noise = noise_real(n, 0.01, 99);
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let step = if t < 0.3 {
                1.0
            } else if t < 0.7 {
                -0.5
            } else {
                0.25
            };
            step + 0.3 * (12.0 * t).sin() + noise[i]
        })
        .collect()
}

fn main() {
    let n = 1 << 20;
    println!("== WHT transform coding, n = {n} ==\n");

    let wht_model = CacheModel::from_geometry(512 * 1024, 64, 8);
    let cfg = PlannerConfig {
        strategy: Strategy::Ddl,
        backend: CostBackend::Analytical(wht_model),
        max_leaf: 64,
        cache_points: wht_model.capacity_points,
    };
    let outcome = plan_wht(n, &cfg);
    println!("planned WHT tree: {}\n", print_wht(&outcome.tree));
    let plan = WhtPlan::new(outcome.tree).unwrap();

    let original = test_signal(n);
    let peak = original.iter().fold(0.0f64, |a, &b| a.max(b.abs()));

    // Forward transform (in place).
    let mut coeffs = original.clone();
    let t_fwd = {
        let mut work = original.clone();
        let plan = &plan;
        let original = &original;
        time_per_call(
            move || {
                work.copy_from_slice(original);
                plan.execute(&mut work);
                std::hint::black_box(&mut work);
            },
            0.3,
            2,
        )
    };
    plan.execute(&mut coeffs);
    println!(
        "forward WHT: {:.2} ms ({:.2} ns/point)\n",
        t_fwd * 1e3,
        time_per_point_ns(n, t_fwd)
    );

    // Keep the top fraction of coefficients by magnitude; zero the rest.
    println!("{:>10} {:>12} {:>10}", "kept", "PSNR (dB)", "nonzero");
    for keep_ratio in [0.5, 0.1, 0.02, 0.005] {
        let keep = ((n as f64) * keep_ratio) as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| coeffs[b].abs().total_cmp(&coeffs[a].abs()));
        let mut kept = vec![0.0f64; n];
        for &idx in order.iter().take(keep) {
            kept[idx] = coeffs[idx];
        }

        // Inverse: the WHT is its own inverse up to 1/n.
        plan.execute(&mut kept);
        for v in kept.iter_mut() {
            *v /= n as f64;
        }

        let psnr = psnr_db(&original, &kept, peak);
        println!("{:>9.1}% {:>12.2} {:>10}", keep_ratio * 100.0, psnr, keep);
        assert!(
            psnr > 20.0 || keep_ratio < 0.01,
            "reconstruction collapsed at {keep_ratio}"
        );
    }

    println!("\nhigher retention -> higher PSNR; the transform pipeline is lossless at 100%.");
}
