//! Spectral analysis of a long noisy recording.
//!
//! Run with:
//! ```sh
//! cargo run --release --example spectral_analysis
//! ```
//!
//! The motivating workload of the paper's introduction: a signal long
//! enough that its transform working set far exceeds the cache. We bury
//! a handful of weak tones and a chirp in noise, take one large FFT
//! (2^20 points), detect the tones from the spectrum, and then inverse
//! transform to confirm the round trip — all with a DDL-planned FFT.

use dynamic_data_layout::num::max_abs;
use dynamic_data_layout::prelude::*;
use dynamic_data_layout::workloads::{chirp, noise_complex, tone_mixture, Tone};

fn main() {
    let n = 1 << 20;
    println!("== spectral analysis of a {n}-point recording ==\n");

    // Compose the "recording": three weak tones + a chirp + strong noise.
    let hidden_bins = [123_456usize, 500_000, 987_654];
    let mut x = tone_mixture(
        n,
        &[
            Tone::at_bin(hidden_bins[0], n, 0.02),
            Tone::at_bin(hidden_bins[1], n, 0.015),
            Tone::at_bin(hidden_bins[2], n, 0.01),
        ],
    );
    let sweep = chirp(n, 0.05, 0.0502); // narrow chirp: spread energy
    let noise = noise_complex(n, 0.05, 2024);
    for i in 0..n {
        x[i] += sweep[i].scale(0.002) + noise[i];
    }

    // Plan with DDL and execute the forward transform.
    let outcome = plan_dft(n, &PlannerConfig::ddl_analytical());
    println!("planned tree: {}", print_dft(&outcome.tree));
    let forward = DftPlan::new(outcome.tree.clone(), Direction::Forward).unwrap();
    let mut spectrum = vec![Complex64::ZERO; n];
    let t = time_per_call(
        {
            let x = &x;
            let spectrum = &mut spectrum;
            let mut scratch = Vec::new();
            move || forward.execute_with_scratch(x, spectrum, &mut scratch)
        },
        0.3,
        3,
    );
    println!(
        "forward FFT: {:.2} ms ({:.0} pseudo-MFLOPS)\n",
        t * 1e3,
        fft_mflops(n, t)
    );

    // Peak detection: a bin is a detection when it towers over the local
    // median magnitude.
    let mags: Vec<f64> = spectrum.iter().map(|v| v.abs()).collect();
    let mean = mags.iter().sum::<f64>() / n as f64;
    let threshold = 40.0 * mean;
    let mut detections: Vec<(usize, f64)> = mags
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m > threshold)
        .map(|(i, &m)| (i, m))
        .collect();
    detections.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("detections above {threshold:.1} (mean |Y| = {mean:.2}):");
    for (bin, mag) in &detections {
        let expected = hidden_bins.contains(bin);
        println!(
            "  bin {bin:>7}  |Y| = {mag:10.1}  {}",
            if expected { "<- planted tone" } else { "" }
        );
    }
    for planted in hidden_bins {
        assert!(
            detections.iter().any(|&(b, _)| b == planted),
            "planted tone at bin {planted} was not detected"
        );
    }

    // Round trip: inverse transform and compare.
    let inverse = DftPlan::new(outcome.tree, Direction::Inverse).unwrap();
    let mut back = vec![Complex64::ZERO; n];
    inverse.execute(&spectrum, &mut back);
    let scale = 1.0 / n as f64;
    let mut worst = 0.0f64;
    for i in 0..n {
        worst = worst.max((back[i].scale(scale) - x[i]).abs());
    }
    println!(
        "\nround-trip max error: {worst:.3e} (signal peak {:.3})",
        max_abs(&x)
    );
    assert!(worst < 1e-9, "inverse FFT failed to reconstruct the signal");
    println!("all planted tones recovered; round trip verified.");
}
