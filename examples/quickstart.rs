//! Quickstart: plan, execute and verify an FFT with dynamic data layouts.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The example plans a 2^18-point FFT twice — once with the SDL
//! (static-layout, FFTW-style) search and once with the paper's DDL
//! search — prints both trees in the paper's grammar, verifies the DDL
//! plan against an independent FFT implementation, and times both.

use dynamic_data_layout::kernels::iterative::fft_radix2;
use dynamic_data_layout::num::relative_rms_error;
use dynamic_data_layout::prelude::*;
use dynamic_data_layout::workloads::{noise_complex, tone_mixture, Tone};

fn main() {
    let n = 1 << 18;
    println!("== dynamic-data-layout quickstart: {n}-point FFT ==\n");

    // 1. Plan. The analytical backend is instant and deterministic; swap
    //    in PlannerConfig::ddl_measured() to tune on real timings.
    let sdl = plan_dft(n, &PlannerConfig::sdl_analytical());
    let ddl = plan_dft(n, &PlannerConfig::ddl_analytical());
    println!("SDL tree: {}", print_dft(&sdl.tree));
    println!("DDL tree: {}", print_dft(&ddl.tree));
    println!(
        "DDL applies {} reorganization(s); max leaf stride {} -> {}\n",
        ddl.tree.reorg_count(),
        sdl.tree.max_leaf_stride(1),
        ddl.tree.max_leaf_stride(1),
    );

    // 2. Compile and execute on a three-tone signal plus noise.
    let plan = DftPlan::new(ddl.tree.clone(), Direction::Forward).expect("valid plan");
    let mut x = tone_mixture(
        n,
        &[
            Tone::at_bin(1000, n, 1.0),
            Tone::at_bin(20_000, n, 0.5),
            Tone::at_bin(77_777, n, 0.25),
        ],
    );
    for (xi, ni) in x.iter_mut().zip(noise_complex(n, 1e-3, 7)) {
        *xi += ni;
    }
    let mut y = vec![Complex64::ZERO; n];
    plan.execute(&x, &mut y);

    // 3. Verify against an independent implementation.
    let reference = fft_radix2(&x, Direction::Forward);
    let err = relative_rms_error(&y, &reference);
    println!("relative RMS error vs iterative radix-2 FFT: {err:.3e}");
    assert!(err < 1e-10, "DDL plan disagrees with the reference FFT");

    // The three tones dominate the spectrum.
    let mut bins: Vec<(usize, f64)> = y.iter().enumerate().map(|(i, v)| (i, v.abs())).collect();
    bins.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-3 spectral peaks (bin, |Y|):");
    for (bin, mag) in bins.iter().take(3) {
        println!("  bin {bin:>6}  |Y| = {mag:.1}");
    }

    // 4. Time SDL vs DDL trees on this machine.
    let time_tree = |tree: &Tree| {
        let p = DftPlan::new(tree.clone(), Direction::Forward).unwrap();
        let mut out = vec![Complex64::ZERO; n];
        let mut scratch = Vec::new();
        time_per_call(
            || p.execute_with_scratch(&x, &mut out, &mut scratch),
            0.2,
            3,
        )
    };
    let t_sdl = time_tree(&sdl.tree);
    let t_ddl = time_tree(&ddl.tree);
    println!(
        "\nSDL: {:8.3} ms  ({:7.1} pseudo-MFLOPS)",
        t_sdl * 1e3,
        fft_mflops(n, t_sdl)
    );
    println!(
        "DDL: {:8.3} ms  ({:7.1} pseudo-MFLOPS)",
        t_ddl * 1e3,
        fft_mflops(n, t_ddl)
    );
    println!("speedup: {:.2}x", t_sdl / t_ddl);
}
